//! The SDX controller runtime: route server + compiler + data plane.
//!
//! [`SdxController`] is the deployable object (Figure 3 of the paper): it
//! owns the route server and the compilation pipeline, processes BGP
//! updates and policy changes as events, and keeps a [`Fabric`] in sync —
//! flow table, ARP responder, and every participant border router's FIB.
//!
//! Update handling follows §4.3.2's two-stage scheme: `process_update`
//! runs the fast path and overlays delta rules immediately;
//! `reoptimize` runs the full pipeline (normally "in the background
//! between bursts" — here, whenever the harness calls it) and retires the
//! overlays.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sdx_bgp::msg::UpdateMessage;
use sdx_bgp::rib::AdjRibOut;
use sdx_bgp::route_server::{ExportPolicy, RouteServer, RouteServerEvent};
use sdx_net::{Ipv4Addr, ParticipantId, Prefix};
use sdx_openflow::border_router::BorderRouter;
use sdx_openflow::fabric::Fabric;
use sdx_policy::{Policy, PolicyDelta, PolicyOp, PolicyScope};
use sdx_telemetry::{Event, SharedRegistry};

use crate::compiler::{CompileReport, SdxCompiler};
use crate::error::SdxError;
use crate::faults::{FaultPlan, InjectionPoint};
use crate::incremental::DeltaResult;
use crate::participant::ParticipantConfig;
use crate::shard::Sharding;
use crate::transform::TransformError;
use crate::txn::{DeltaTxn, FabricTxn};
use crate::vnh::VnhAllocator;

/// Priority floor for delta overlays; the reconciled base table lives in
/// the band below this (see [`crate::reconcile`]). Successive overlays
/// stack monotonically above it (delta rules are mutually disjoint — each
/// carries a fresh VMAC — so only "above the base table" matters for
/// correctness; the monotonic cursor just keeps the bands tidy at any
/// overlay size).
pub(crate) use crate::reconcile::DELTA_BASE;

/// A duration as journal-friendly nanoseconds (saturating).
fn nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The assembled SDX controller.
#[derive(Debug)]
pub struct SdxController {
    /// The policy compiler and participant book.
    pub compiler: SdxCompiler,
    /// The embedded route server.
    pub rs: RouteServer,
    /// The VNH/VMAC allocator.
    pub vnh: VnhAllocator,
    /// The last full compilation, if any.
    pub report: Option<CompileReport>,
    /// The fault-injection plan threaded through every pipeline run.
    /// Disabled by default; test harnesses arm it to exercise rollback.
    pub faults: FaultPlan,
    /// The telemetry sink the whole stack shares: stage timers, counters,
    /// and the lifecycle event journal. The compiler and the deployed
    /// fabric emit into the same registry.
    pub telemetry: SharedRegistry,
    /// Monotone commit epoch: every flow-mod batch this controller emits
    /// (fast-path overlay or reconciliation patch) is stamped with a
    /// fresh epoch, so the journal orders data-plane generations. Never
    /// rolled back — an aborted commit leaves a gap, which is exactly the
    /// audit trail wanted.
    pub(crate) epoch: u64,
    /// Monotone counter of delta overlays currently installed.
    pub(crate) delta_layers: u32,
    /// Next free priority for an overlay (monotonic; reset on reoptimize).
    pub(crate) next_delta_priority: u32,
    /// FEC ids allocated by fast-path deltas since the last reoptimize —
    /// recycled (with the previous report's group ids) once background
    /// re-optimization replaces every rule and FIB entry that used them.
    pub(crate) live_delta_ids: Vec<crate::fec::FecId>,
    /// Pending (viewer, prefix, vnh) re-advertisements accumulated since
    /// the last fabric sync.
    pub(crate) pending_fib: Vec<(ParticipantId, Prefix, Option<Ipv4Addr>)>,
    /// Per-viewer Adj-RIB-Out: what the route server last advertised, so
    /// synchronization sends minimal BGP diffs rather than table dumps.
    pub(crate) rib_out: BTreeMap<ParticipantId, AdjRibOut>,
}

impl Default for SdxController {
    fn default() -> Self {
        Self::new()
    }
}

impl SdxController {
    /// An empty controller with a fresh telemetry registry.
    pub fn new() -> Self {
        Self::with_telemetry(SharedRegistry::new())
    }

    /// An empty controller emitting into `telemetry` (shared into the
    /// compiler here, and into any fabric built by
    /// [`deploy`](Self::deploy)).
    pub fn with_telemetry(telemetry: SharedRegistry) -> Self {
        let mut compiler = SdxCompiler::new();
        compiler.set_telemetry(telemetry.clone());
        let mut rs = RouteServer::new();
        rs.set_telemetry(telemetry.clone());
        SdxController {
            compiler,
            rs,
            vnh: VnhAllocator::default(),
            report: None,
            faults: FaultPlan::disabled(),
            telemetry,
            epoch: 0,
            delta_layers: 0,
            next_delta_priority: DELTA_BASE,
            pending_fib: Vec::new(),
            rib_out: BTreeMap::new(),
            live_delta_ids: Vec::new(),
        }
    }

    /// Journals a pipeline failure: the injected fault (if that's what
    /// fired) and the rollback that followed.
    fn note_failure(&self, stage: &str, e: &SdxError) {
        if let SdxError::Injected(point) = e {
            self.telemetry.record_event(Event::FaultInjected {
                point: point.to_string(),
            });
        }
        self.telemetry.record_event(Event::TxnRolledBack {
            stage: stage.to_string(),
            error: e.to_string(),
        });
        self.telemetry.inc("txn.rollback.count");
    }

    /// Under a sharded compile, attributes a reconcile patch back to
    /// shards: how many flow-mods each shard's slice produced, how many
    /// landed outside any shard (wildcard / MAC-learning rules), and how
    /// many shards produced any at all. A well-localized delta shows
    /// `touched` tracking `compile.shard.recompiled.count`.
    fn note_shard_attribution(
        &self,
        reg: &SharedRegistry,
        report: &CompileReport,
        batch: &sdx_openflow::flowmod::FlowModBatch,
    ) {
        if let Some(plan) = self.compiler.shard_plan() {
            let counts = crate::shard::mods_by_shard(plan, report, batch);
            let touched = counts[..plan.len()].iter().filter(|&&c| c > 0).count();
            let sharded: usize = counts[..plan.len()].iter().sum();
            reg.add("reconcile.shard.mods.count", sharded as u64);
            reg.add(
                "reconcile.shard.global_mods.count",
                counts[plan.len()] as u64,
            );
            reg.add("reconcile.shard.touched.count", touched as u64);
        }
    }

    /// Registers a participant with the compiler and the route server.
    pub fn add_participant(&mut self, cfg: ParticipantConfig, export: ExportPolicy) {
        self.rs.add_peer(cfg.route_source(), export);
        self.compiler.upsert_participant(cfg);
    }

    /// Installs (or clears) a participant's outbound policy. The change
    /// takes effect at the next [`reoptimize`](Self::reoptimize).
    pub fn set_outbound(&mut self, id: ParticipantId, policy: Option<Policy>) {
        self.compiler.set_outbound(id, policy);
    }

    /// Installs (or clears) a participant's inbound policy.
    pub fn set_inbound(&mut self, id: ParticipantId, policy: Option<Policy>) {
        self.compiler.set_inbound(id, policy);
    }

    /// Validates and stages a [`PolicyDelta`]: every operation is checked
    /// against the participant book first (unknown participants and
    /// unresolvable ports are rejected as typed
    /// [`SdxError::PolicyRejected`] with the book untouched), then the
    /// book mutates with per-participant version bumps — so the next
    /// compile invalidates only the touched viewers' shard units. Nothing
    /// recompiles here; follow with [`reoptimize`](Self::reoptimize) /
    /// [`prepare_scheduled`](Self::prepare_scheduled), or use the
    /// [`apply_policy_delta`](Self::apply_policy_delta) wrappers.
    pub fn stage_policy_delta(&mut self, delta: &PolicyDelta) -> Result<(), SdxError> {
        delta
            .validate(
                |p| self.compiler.participant(p).is_some(),
                |p, idx| {
                    self.compiler
                        .participant(p)
                        .is_some_and(|c| c.port_mac(idx).is_some())
                },
            )
            .map_err(SdxError::PolicyRejected)?;
        let (mut applied, mut retracted) = (0u64, 0u64);
        for op in &delta.ops {
            let policy = op.op.policy().cloned();
            match op.op {
                PolicyOp::Retract => retracted += 1,
                _ => applied += 1,
            }
            match op.scope {
                PolicyScope::Outbound => self.compiler.set_outbound(op.participant, policy),
                PolicyScope::Inbound => self.compiler.set_inbound(op.participant, policy),
            }
        }
        self.telemetry.add("policy.applied.count", applied);
        self.telemetry.add("policy.retracted.count", retracted);
        self.telemetry.record_event(Event::Custom {
            name: "policy.delta".to_string(),
            detail: format!(
                "{} op(s) staged ({applied} applied, {retracted} retracted), \
                 outbound footprint: {}",
                delta.ops.len(),
                delta.outbound_footprint(),
            ),
        });
        Ok(())
    }

    /// Applies a [`PolicyDelta`] end to end on the plain path: stage, then
    /// [`reoptimize`](Self::reoptimize). The policy change flows through
    /// the same incremental machinery as a route update — only the
    /// touched viewers' shard units recompile, untouched FECs keep their
    /// keyed VNH identity, and the data plane is patched by
    /// [`diff_base_table`](crate::reconcile::diff_base_table) rather than
    /// swapped.
    pub fn apply_policy_delta(
        &mut self,
        delta: &PolicyDelta,
        fabric: &mut Fabric,
    ) -> Result<&CompileReport, SdxError> {
        self.stage_policy_delta(delta)?;
        self.reoptimize(fabric)
    }

    /// Applies a [`PolicyDelta`] on the scheduled path: stage, then
    /// [`prepare_scheduled`](Self::prepare_scheduled). The returned
    /// [`PreparedUpdate`] drives dependency-ordered waves exactly as for
    /// route churn — drive it with
    /// [`commit_scheduled`](Self::commit_scheduled).
    pub fn apply_policy_delta_scheduled(
        &mut self,
        delta: &PolicyDelta,
        fabric: &mut Fabric,
    ) -> Result<PreparedUpdate, SdxError> {
        self.stage_policy_delta(delta)?;
        self.prepare_scheduled(fabric)
    }

    /// Selects the compile sharding mode for every subsequent
    /// [`reoptimize`](Self::reoptimize) (see
    /// [`CompileOptions::sharding`](crate::compiler::CompileOptions)).
    pub fn set_sharding(&mut self, sharding: Sharding) {
        self.compiler.options.sharding = sharding;
    }

    /// Pre-flight validation of an outbound policy, before installation:
    /// isolation + the unicast restriction (via the transform pipeline),
    /// plus advisory diagnostics — forwarding targets that are not
    /// registered participants, and clauses the participant's *existing*
    /// policy would shadow completely.
    pub fn validate_outbound(
        &self,
        writer: ParticipantId,
        policy: &Policy,
    ) -> Result<PolicyDiagnostics, TransformError> {
        let compiled = sdx_policy::compile(policy);
        let rules = crate::transform::outbound_fwd_rules(writer, &compiled)?;
        let mut unknown_targets = Vec::new();
        for r in &rules {
            if let Some(t) = r.target {
                let owner = t.participant();
                if self.compiler.participant(owner).is_none() && !unknown_targets.contains(&owner) {
                    unknown_targets.push(owner);
                }
            }
        }
        let shadowed_clauses = match self
            .compiler
            .participant(writer)
            .and_then(|c| c.outbound.as_ref())
        {
            Some(existing) => sdx_policy::analysis::shadowed_by(existing, policy).len(),
            None => 0,
        };
        Ok(PolicyDiagnostics {
            clauses: rules.len(),
            unknown_targets,
            shadowed_clauses,
        })
    }

    /// Deregisters a participant: its session resets (routes flushed), its
    /// policies are dropped, and the next re-optimization removes every
    /// rule referencing it. Returns false if the participant was unknown.
    pub fn remove_participant(&mut self, id: ParticipantId, fabric: &mut Fabric) -> bool {
        if self.compiler.participant(id).is_none() {
            return false;
        }
        self.rs.reset_session(id);
        self.compiler.remove_participant(id);
        self.compiler.clear_global_policies(id);
        self.rib_out.remove(&id);
        // Re-optimize so no rule forwards toward the vanished participant.
        let _ = self.reoptimize(fabric);
        true
    }

    /// Builds the border router for a participant port, ready to attach to
    /// a fabric.
    pub fn make_router(&self, id: ParticipantId, index: u8) -> Option<BorderRouter> {
        let cfg = self.compiler.participant(id)?;
        let port = cfg.ports.iter().find(|p| p.index == index)?;
        Some(BorderRouter::new(
            sdx_net::PortId::Phys(id, index),
            port.mac,
        ))
    }

    /// Processes one BGP update through the route server and the fast
    /// path, applying the delta overlay to `fabric` (switch rules, ARP
    /// bindings, and FIB re-advertisements).
    ///
    /// The fabric mutation is transactional: on any failure (policy
    /// transformation, VNH exhaustion, validation, injected fault) the
    /// installed fabric and the controller's bookkeeping roll back to the
    /// pre-call state, and the typed error is returned. The route server's
    /// RIB keeps the update — BGP knowledge is never discarded — so a
    /// later [`reoptimize`](Self::reoptimize) converges the data plane.
    pub fn process_update(
        &mut self,
        from: ParticipantId,
        update: &UpdateMessage,
        fabric: &mut Fabric,
    ) -> Result<DeltaResult, SdxError> {
        let events = self.rs.process_update(from, update);
        let changed: Vec<Prefix> = events
            .into_iter()
            .filter_map(|e| match e {
                RouteServerEvent::PrefixChanged(p) => Some(p),
                RouteServerEvent::SessionReset(_) => None,
            })
            .collect();
        self.telemetry.inc("controller.update.count");
        self.telemetry.record_event(Event::UpdateReceived {
            from: from.0,
            prefixes: changed.len(),
        });
        self.apply_changed_prefixes(&changed, fabric)
    }

    /// Runs the fast path for prefixes whose routes already changed in the
    /// route server (e.g. replayed withdrawals after a supervised session
    /// reset) and commits the delta transactionally, exactly like
    /// [`process_update`](Self::process_update).
    pub fn apply_changed_prefixes(
        &mut self,
        changed: &[Prefix],
        fabric: &mut Fabric,
    ) -> Result<DeltaResult, SdxError> {
        let reg = self.telemetry.clone();
        let t0 = Instant::now();
        let txn = DeltaTxn::begin(self);
        match self.fast_path_in_txn(changed, fabric) {
            Ok(delta) => {
                let elapsed = t0.elapsed();
                reg.observe_duration("fastpath.total", elapsed);
                reg.record_event(Event::DeltaApplied {
                    rules: delta.additional_rules(),
                    latency_ns: nanos(elapsed),
                });
                reg.set_gauge("controller.delta_layers", i64::from(self.delta_layers));
                Ok(delta)
            }
            Err(e) => {
                reg.observe_duration("fastpath.total", t0.elapsed());
                self.note_failure("fastpath", &e);
                reg.time("txn.rollback", || txn.rollback(self, fabric));
                Err(e)
            }
        }
    }

    /// The staged (validate, then mutate) portion of the fast path; runs
    /// inside a [`DeltaTxn`].
    fn fast_path_in_txn(
        &mut self,
        changed: &[Prefix],
        fabric: &mut Fabric,
    ) -> Result<DeltaResult, SdxError> {
        let reg = self.telemetry.clone();
        let delta = self.compiler.fast_update_burst_with_faults(
            &self.rs,
            &mut self.vnh,
            changed,
            &mut self.faults,
        )?;
        reg.time("txn.validate", || crate::txn::validate_delta(&delta))?;
        reg.time("fastpath.apply", || self.apply_delta(&delta, fabric))?;
        Ok(delta)
    }

    /// Installs a fast-path delta on the fabric.
    ///
    /// Direct callers get no rollback — the transactional entry points
    /// ([`process_update`](Self::process_update),
    /// [`apply_changed_prefixes`](Self::apply_changed_prefixes)) wrap this
    /// in a [`DeltaTxn`] and are what non-test code should use.
    pub fn apply_delta(
        &mut self,
        delta: &DeltaResult,
        fabric: &mut Fabric,
    ) -> Result<(), SdxError> {
        if !delta.rules.is_empty() {
            self.delta_layers += 1;
            let overlay = crate::incremental::delta_classifier(delta.rules.clone());
            // Install only the real rules; the overlay's synthetic
            // catch-all would blackhole the base table. The installs go
            // through the typed flow-mod protocol as one atomic,
            // epoch-tagged, cookie-stamped batch.
            let n = overlay.rules().len() as u32;
            let base = self.next_delta_priority;
            self.next_delta_priority = base.saturating_add(n + 1);
            self.epoch += 1;
            let mut batch = sdx_openflow::FlowModBatch::new(self.epoch);
            for (i, r) in overlay.rules().iter().enumerate() {
                if r.matches.is_wildcard() && r.is_drop() {
                    continue;
                }
                batch.push(sdx_openflow::FlowMod::Add(
                    sdx_openflow::table::FlowEntry::new(
                        base + n - i as u32,
                        r.matches,
                        r.actions.iter().map(|a| a.mods.clone()).collect(),
                    )
                    .with_cookie(crate::reconcile::cookie_of(&r.matches)),
                ));
            }
            let stats = fabric.apply_flowmods(&batch).map_err(|e| {
                SdxError::InvalidCommit(format!("fast-path flow-mod batch rejected: {e}"))
            })?;
            self.telemetry.record_event(Event::FlowModBatchApplied {
                epoch: self.epoch,
                adds: stats.adds,
                modifies: stats.modifies,
                deletes: stats.deletes,
            });
        }
        // Mid-commit fault point: overlay rules are staged on the switch
        // but ARP/FIB synchronization has not run — a firing here leaves
        // the fabric torn unless the enclosing transaction rolls back.
        self.faults.check(InjectionPoint::FabricCommit)?;
        for &(vnh, vmac) in &delta.arp_bindings {
            fabric.arp.bind(vnh, vmac);
            if let Some(id) = vmac.fec_id() {
                self.live_delta_ids.push(crate::fec::FecId(id));
            }
        }
        self.pending_fib.extend(delta.vnh_updates.iter().copied());
        self.flush_fib(fabric);
        Ok(())
    }

    /// Runs the full (background) pipeline and swaps the fabric state:
    /// fresh base table, fresh ARP bindings, FIB re-sync, overlays retired.
    ///
    /// The swap is transactional: the compiled result is validated before
    /// any mutation, and any failure (compilation, validation, injected
    /// fault) rolls the fabric and the controller bookkeeping back to the
    /// pre-call state byte-for-byte, returning the typed error.
    ///
    /// VNH recycling: the previous compilation's group ids and every
    /// fast-path delta id are released back to the pool here — by the end
    /// of this call no switch rule, FIB entry, or ARP cache references
    /// them (the table is replaced, the FIBs are reconciled to the new VNH
    /// map, and router ARP caches are flushed below), so a long-lived
    /// controller never exhausts the pool under sustained churn.
    pub fn reoptimize(&mut self, fabric: &mut Fabric) -> Result<&CompileReport, SdxError> {
        let reg = self.telemetry.clone();
        let overlays = self.delta_layers;
        let t0 = Instant::now();
        let txn = FabricTxn::begin(self, fabric);
        match self.reoptimize_in_txn(fabric) {
            Ok(()) => {
                let elapsed = t0.elapsed();
                reg.observe_duration("reoptimize.total", elapsed);
                if overlays > 0 {
                    reg.record_event(Event::OverlaysRetired { layers: overlays });
                }
                reg.set_gauge("controller.delta_layers", 0);
                match self.report.as_ref() {
                    Some(r) => {
                        reg.record_event(Event::ReoptimizeCompleted {
                            rules: r.stats.rule_count,
                            groups: r.stats.group_count,
                            latency_ns: nanos(elapsed),
                        });
                        reg.set_gauge("fabric.rules", r.stats.rule_count as i64);
                        Ok(r)
                    }
                    // Unreachable by construction: the txn body always sets
                    // the report on success.
                    None => Err(SdxError::InvalidCommit(
                        "reoptimize committed without a report".into(),
                    )),
                }
            }
            Err(e) => {
                reg.observe_duration("reoptimize.total", t0.elapsed());
                self.note_failure("reoptimize", &e);
                reg.time("txn.rollback", || txn.rollback(self, fabric));
                Err(e)
            }
        }
    }

    /// The staged (compile, validate, then mutate) portion of reoptimize;
    /// runs inside a [`FabricTxn`].
    fn reoptimize_in_txn(&mut self, fabric: &mut Fabric) -> Result<(), SdxError> {
        let reg = self.telemetry.clone();
        // Fast-path delta ids are keyless allocations: release them
        // *before* compiling so a pool exhausted by fast-path churn can
        // recover here. Safe under the transaction: the snapshot restores
        // the allocator on failure, and the overlay rules referencing them
        // are removed in this same commit.
        let delta_ids: Vec<crate::fec::FecId> = std::mem::take(&mut self.live_delta_ids);
        let mut retired_addrs: Vec<Ipv4Addr> =
            delta_ids.iter().map(|&id| self.vnh.vnh_of(id)).collect();
        for &id in &delta_ids {
            self.vnh.release(id);
        }
        // Take the old report: [`FabricTxn::begin`] already cloned it for
        // rollback, and the reconciliation below wants the old VNH map
        // without another deep copy. Keyed ids stay mapped through the
        // compile — that is exactly what keeps unchanged FEC groups on
        // their previous VNH/VMAC.
        let old_report = self.report.take();
        let report =
            self.compiler
                .compile_all_with_faults(&self.rs, &mut self.vnh, &mut self.faults)?;
        reg.time("txn.validate", || crate::txn::validate_report(&report))?;
        // Retire the fast-path overlay layers, then *patch* the base
        // table: the diff against the keyed-identity recompile touches
        // only the rules whose pattern, buckets, or cookie changed.
        fabric.switch.table_mut().remove_at_or_above(DELTA_BASE);
        self.epoch += 1;
        let diff = crate::reconcile::diff_base_table(
            fabric.switch.table(),
            &report.classifier,
            self.epoch,
        );
        let stats = fabric.apply_flowmods(&diff.batch).map_err(|e| {
            SdxError::InvalidCommit(format!("reoptimize flow-mod batch rejected: {e}"))
        })?;
        reg.add("reconcile.unchanged.count", diff.unchanged as u64);
        if diff.rebased {
            reg.inc("reconcile.rebase.count");
        }
        self.note_shard_attribution(&reg, &report, &diff.batch);
        reg.record_event(Event::FlowModBatchApplied {
            epoch: self.epoch,
            adds: stats.adds,
            modifies: stats.modifies,
            deletes: stats.deletes,
        });
        self.delta_layers = 0;
        self.next_delta_priority = DELTA_BASE;
        // Mid-commit fault point: the base table is already patched but
        // ARP and FIBs are not yet synchronized — the torn state a firing
        // here produces must be rolled back by the enclosing transaction.
        self.faults.check(InjectionPoint::FabricCommit)?;
        self.install_static_arp(fabric);
        for &(vnh, vmac) in &report.arp_bindings {
            fabric.arp.bind(vnh, vmac);
        }
        // Keyed identity keeps surviving groups on their exact VNH, so
        // only ids whose key vanished actually retire. Unbind those
        // addresses from the responder and invalidate them from router
        // ARP caches — selectively: an address was only ever cached by
        // the routers of the viewer that owned it, and every other cached
        // entry stays warm (the fixed vnh→vmac mapping means a surviving
        // entry can never be stale).
        let new_ids: std::collections::BTreeSet<u32> = report
            .groups
            .values()
            .flat_map(|gs| gs.iter().map(|g| g.id.0))
            .collect();
        let mut stale_ids: Vec<crate::fec::FecId> = Vec::new();
        if let Some(old) = &old_report {
            for g in old.groups.values().flatten() {
                if !new_ids.contains(&g.id.0) {
                    stale_ids.push(g.id);
                    retired_addrs.push(g.vnh);
                }
            }
        }
        let live: std::collections::BTreeSet<Ipv4Addr> =
            report.arp_bindings.iter().map(|(a, _)| *a).collect();
        let ports: Vec<_> = fabric.ports().collect();
        let mut invalidated = 0u64;
        for addr in retired_addrs {
            if live.contains(&addr) {
                continue;
            }
            fabric.arp.unbind(addr);
            for &port in &ports {
                if let Some(r) = fabric.router_mut(port) {
                    if r.invalidate_arp(addr) {
                        invalidated += 1;
                    }
                }
            }
        }
        reg.add("arp.invalidated.count", invalidated);
        // Stale keyed ids release only now: through the compile they were
        // still mapped, which is what kept live keys off their slots.
        for id in stale_ids {
            self.vnh.release(id);
        }
        self.report = Some(report);
        self.full_fib_sync(fabric, old_report.as_ref().map(|r| &r.vnh_of));
        Ok(())
    }

    /// Stages a *scheduled* re-optimization: compiles, validates, flips
    /// the control plane to the new configuration, and plans — but does
    /// not yet apply — the data-plane patch as dependency-ordered waves.
    ///
    /// Ordering is add-before-reference at the system level: ARP
    /// bindings for the new report are installed *alongside* the old
    /// ones (nothing is unbound yet) and the FIBs are synchronized to
    /// the new VNH map *before* any flow-mod lands, so every
    /// intermediate table produced by the subsequent waves is evaluated
    /// under one coherent control plane. The stale ARP/VNH state is
    /// retired only after [`commit_scheduled`](Self::commit_scheduled)
    /// lands the final wave.
    ///
    /// Failures here (compile, validation, an injected
    /// [`InjectionPoint::FabricCommit`]) roll the controller and fabric
    /// back to their pre-call state. After this returns `Ok`, failures
    /// *park* instead — see `commit_scheduled`.
    pub fn prepare_scheduled(&mut self, fabric: &mut Fabric) -> Result<PreparedUpdate, SdxError> {
        let txn = FabricTxn::begin(self, fabric);
        match self.prepare_scheduled_in_txn(fabric) {
            Ok(p) => Ok(p),
            Err(e) => {
                self.note_failure("prepare_scheduled", &e);
                let reg = self.telemetry.clone();
                reg.time("txn.rollback", || txn.rollback(self, fabric));
                Err(e)
            }
        }
    }

    fn prepare_scheduled_in_txn(
        &mut self,
        fabric: &mut Fabric,
    ) -> Result<PreparedUpdate, SdxError> {
        let reg = self.telemetry.clone();
        let overlays = self.delta_layers;
        let delta_ids: Vec<crate::fec::FecId> = std::mem::take(&mut self.live_delta_ids);
        let mut retired_addrs: Vec<Ipv4Addr> =
            delta_ids.iter().map(|&id| self.vnh.vnh_of(id)).collect();
        for &id in &delta_ids {
            self.vnh.release(id);
        }
        let old_report = self.report.take();
        let report =
            self.compiler
                .compile_all_with_faults(&self.rs, &mut self.vnh, &mut self.faults)?;
        reg.time("txn.validate", || crate::txn::validate_report(&report))?;
        // The overlay retirement is the one un-scheduled table mutation:
        // it happens before the diff, so the waves are planned against
        // (and verified from) the overlay-free base table.
        fabric.switch.table_mut().remove_at_or_above(DELTA_BASE);
        self.epoch += 1;
        let diff = crate::reconcile::diff_base_table(
            fabric.switch.table(),
            &report.classifier,
            self.epoch,
        );
        let plan = crate::schedule::plan(fabric.switch.table(), &diff.batch);
        reg.add("reconcile.unchanged.count", diff.unchanged as u64);
        if diff.rebased {
            reg.inc("reconcile.rebase.count");
        }
        self.note_shard_attribution(&reg, &report, &diff.batch);
        self.delta_layers = 0;
        self.next_delta_priority = DELTA_BASE;
        self.faults.check(InjectionPoint::FabricCommit)?;
        // Control-plane flip, new bindings first: the old VMACs stay
        // resolvable until the last wave retires their rules.
        self.install_static_arp(fabric);
        for &(vnh, vmac) in &report.arp_bindings {
            fabric.arp.bind(vnh, vmac);
        }
        let new_ids: std::collections::BTreeSet<u32> = report
            .groups
            .values()
            .flat_map(|gs| gs.iter().map(|g| g.id.0))
            .collect();
        let mut stale_ids: Vec<crate::fec::FecId> = Vec::new();
        if let Some(old) = &old_report {
            for g in old.groups.values().flatten() {
                if !new_ids.contains(&g.id.0) {
                    stale_ids.push(g.id);
                    retired_addrs.push(g.vnh);
                }
            }
        }
        self.report = Some(report);
        self.full_fib_sync(fabric, old_report.as_ref().map(|r| &r.vnh_of));
        Ok(PreparedUpdate {
            plan,
            unchanged: diff.unchanged,
            rebased: diff.rebased,
            overlays,
            stale_ids,
            retired_addrs,
        })
    }

    /// Drives a prepared update's waves through the fabric, verifying
    /// each intermediate state with `checker` (built by the oracle crate
    /// from the *new* report; pass `None` to skip verification), then
    /// retires the stale ARP/VNH state.
    ///
    /// Failure semantics differ from [`reoptimize`](Self::reoptimize):
    /// there is no rollback. A wave that exhausts its retry budget
    /// ([`SdxError::UpdateAborted`]) or fails verification
    /// ([`SdxError::UnsafeSchedule`]) leaves the fabric **parked** in
    /// the last verified-safe intermediate state, with the control plane
    /// already on the new configuration — recovery is a later plain
    /// [`reoptimize`](Self::reoptimize) (or another scheduled one),
    /// which recompiles under keyed identity and re-diffs from wherever
    /// the update stalled.
    pub fn commit_scheduled(
        &mut self,
        fabric: &mut Fabric,
        prepared: PreparedUpdate,
        opts: &crate::schedule::ScheduleOpts,
        checker: Option<&mut crate::schedule::WaveChecker<'_>>,
    ) -> Result<crate::schedule::ScheduleReport, SdxError> {
        let reg = self.telemetry.clone();
        let t0 = Instant::now();
        let outcome = crate::schedule::drive(
            &prepared.plan,
            fabric,
            &mut self.faults,
            &reg,
            opts,
            checker,
        );
        reg.observe_duration("reoptimize.scheduled.total", t0.elapsed());
        let schedule_report = match outcome {
            Ok(r) => r,
            Err(e) => {
                self.note_failure("commit_scheduled", &e);
                return Err(e);
            }
        };
        self.finish_scheduled(fabric, prepared, t0.elapsed());
        Ok(schedule_report)
    }

    /// The post-wave half of a scheduled commit: retires the stale
    /// ARP/VNH state the update replaced and journals the completion
    /// events. Called by [`commit_scheduled`](Self::commit_scheduled)
    /// after a successful drive; exposed so external harnesses that run
    /// [`crate::schedule::drive`] themselves (borrowing this controller's
    /// report for verification) can finish the update identically.
    pub fn finish_scheduled(
        &mut self,
        fabric: &mut Fabric,
        prepared: PreparedUpdate,
        latency: Duration,
    ) {
        let reg = self.telemetry.clone();
        let stats = prepared.plan.waves.iter().fold(
            sdx_openflow::flowmod::BatchStats::default(),
            |mut acc, w| {
                let s = w.stats();
                acc.adds += s.adds;
                acc.modifies += s.modifies;
                acc.deletes += s.deletes;
                acc
            },
        );
        reg.record_event(Event::FlowModBatchApplied {
            epoch: self.epoch,
            adds: stats.adds,
            modifies: stats.modifies,
            deletes: stats.deletes,
        });
        // The data plane is fully on the new rules: retire what nothing
        // references any more.
        let live: std::collections::BTreeSet<Ipv4Addr> = self
            .report
            .as_ref()
            .map(|r| r.arp_bindings.iter().map(|(a, _)| *a).collect())
            .unwrap_or_default();
        let ports: Vec<_> = fabric.ports().collect();
        let mut invalidated = 0u64;
        for addr in &prepared.retired_addrs {
            if live.contains(addr) {
                continue;
            }
            fabric.arp.unbind(*addr);
            for &port in &ports {
                if let Some(r) = fabric.router_mut(port) {
                    if r.invalidate_arp(*addr) {
                        invalidated += 1;
                    }
                }
            }
        }
        reg.add("arp.invalidated.count", invalidated);
        for id in prepared.stale_ids {
            self.vnh.release(id);
        }
        if prepared.overlays > 0 {
            reg.record_event(Event::OverlaysRetired {
                layers: prepared.overlays,
            });
        }
        reg.set_gauge("controller.delta_layers", 0);
        if let Some(r) = self.report.as_ref() {
            reg.record_event(Event::ReoptimizeCompleted {
                rules: r.stats.rule_count,
                groups: r.stats.group_count,
                latency_ns: nanos(latency),
            });
            reg.set_gauge("fabric.rules", r.stats.rule_count as i64);
        }
    }

    /// [`prepare_scheduled`](Self::prepare_scheduled) +
    /// [`commit_scheduled`](Self::commit_scheduled) in one call, without
    /// per-wave verification (the oracle crate's `reoptimize_verified`
    /// wires a checker in).
    pub fn reoptimize_scheduled(
        &mut self,
        fabric: &mut Fabric,
        opts: &crate::schedule::ScheduleOpts,
    ) -> Result<crate::schedule::ScheduleReport, SdxError> {
        let prepared = self.prepare_scheduled(fabric)?;
        self.commit_scheduled(fabric, prepared, opts, None)
    }

    /// Binds every participant port's physical address → MAC.
    fn install_static_arp(&self, fabric: &mut Fabric) {
        for cfg in self.compiler.participants().values() {
            for port in &cfg.ports {
                fabric.arp.bind(port.addr, port.mac);
            }
        }
    }

    /// Pushes pending per-prefix FIB changes to the affected routers,
    /// through the per-viewer Adj-RIB-Out (only actual diffs are sent).
    fn flush_fib(&mut self, fabric: &mut Fabric) {
        let pending = std::mem::take(&mut self.pending_fib);
        for (viewer, prefix, vnh) in pending {
            let desired = self.rs.best_for(viewer, prefix).map(|best| {
                let nh = vnh.unwrap_or(best.attrs.next_hop);
                best.attrs.clone().with_next_hop(nh)
            });
            let out = self.rib_out.entry(viewer).or_default();
            if let Some(update) = out.reconcile(prefix, desired) {
                for port in fabric.ports_of(viewer) {
                    if let Some(r) = fabric.router_mut(port) {
                        r.apply_update(&update);
                    }
                }
            }
        }
    }

    /// Advertises (viewer, prefix) best routes with the current VNH map —
    /// the initial convergence / post-reoptimization sync. The per-viewer
    /// Adj-RIB-Out reduces the sync to the minimal BGP diff (including
    /// withdrawals of prefixes that vanished from the Loc-RIB), exactly
    /// like a real route-server session.
    ///
    /// When `old_vnh_of` (the previous compilation's VNH map) is given and
    /// the viewer already converged once, the sync is *incremental*: only
    /// prefixes whose best route changed since the last sync (the route
    /// server's dirty set) or whose VNH moved are even reconciled — under
    /// keyed VNH identity a quiet prefix costs nothing. Viewers with no
    /// Adj-RIB-Out yet, or a `None` map, take the full reconcile path.
    fn full_fib_sync(
        &mut self,
        fabric: &mut Fabric,
        old_vnh_of: Option<&BTreeMap<(ParticipantId, Prefix), Ipv4Addr>>,
    ) {
        let reg = self.telemetry.clone();
        let dirty = self.rs.take_dirty_prefixes();
        let empty = BTreeMap::new();
        let vnh_of: &BTreeMap<(ParticipantId, Prefix), Ipv4Addr> =
            self.report.as_ref().map(|r| &r.vnh_of).unwrap_or(&empty);
        let viewers: Vec<ParticipantId> = self.rs.participants().collect();
        let prefixes = self.rs.all_prefixes();
        let mut skipped = 0u64;
        let mut sent = 0u64;
        for viewer in viewers {
            let incremental = old_vnh_of.is_some() && self.rib_out.contains_key(&viewer);
            if let (true, Some(old)) = (incremental, old_vnh_of) {
                // Dirty prefixes may have vanished from the Loc-RIB
                // entirely (withdrawals) — fold them in so they still
                // reconcile down to a withdrawal.
                let mut work: Vec<Prefix> = prefixes.clone();
                work.extend(dirty.iter().copied());
                work.sort_unstable();
                work.dedup();
                for prefix in work {
                    if !dirty.contains(&prefix)
                        && old.get(&(viewer, prefix)) == vnh_of.get(&(viewer, prefix))
                    {
                        skipped += 1;
                        continue;
                    }
                    let desired = self.rs.best_for(viewer, prefix).map(|best| {
                        let nh = vnh_of
                            .get(&(viewer, prefix))
                            .copied()
                            .unwrap_or(best.attrs.next_hop);
                        best.attrs.clone().with_next_hop(nh)
                    });
                    let out = self.rib_out.entry(viewer).or_default();
                    if let Some(update) = out.reconcile(prefix, desired) {
                        sent += 1;
                        for port in fabric.ports_of(viewer) {
                            if let Some(r) = fabric.router_mut(port) {
                                r.apply_update(&update);
                            }
                        }
                    }
                }
            } else {
                let desired: Vec<(Prefix, sdx_bgp::attrs::PathAttributes)> = prefixes
                    .iter()
                    .filter_map(|&prefix| {
                        let best = self.rs.best_for(viewer, prefix)?;
                        let nh = vnh_of
                            .get(&(viewer, prefix))
                            .copied()
                            .unwrap_or(best.attrs.next_hop);
                        Some((prefix, best.attrs.clone().with_next_hop(nh)))
                    })
                    .collect();
                let out = self.rib_out.entry(viewer).or_default();
                let updates = out.reconcile_full(desired);
                sent += updates.len() as u64;
                for update in updates {
                    for port in fabric.ports_of(viewer) {
                        if let Some(r) = fabric.router_mut(port) {
                            r.apply_update(&update);
                        }
                    }
                }
            }
        }
        reg.add("fibsync.skipped.count", skipped);
        reg.add("fibsync.sent.count", sent);
    }

    /// Builds a fabric with one border router per participant port,
    /// compiles, and fully syncs — the one-call deployment used by the
    /// examples and the deployment experiments.
    pub fn deploy(&mut self) -> Result<Fabric, SdxError> {
        let mut fabric = Fabric::new();
        fabric.set_telemetry(self.telemetry.clone());
        let routers: Vec<BorderRouter> = self
            .compiler
            .participants()
            .values()
            .flat_map(|cfg| {
                cfg.ports
                    .iter()
                    .map(|p| BorderRouter::new(sdx_net::PortId::Phys(cfg.id, p.index), p.mac))
                    .collect::<Vec<_>>()
            })
            .collect();
        for r in routers {
            fabric.attach(r);
        }
        self.reoptimize(&mut fabric)?;
        Ok(fabric)
    }

    /// Current number of installed delta layers (0 right after
    /// re-optimization).
    pub fn delta_layers(&self) -> u32 {
        self.delta_layers
    }

    /// The wide-area server load-balancing application (§3.1, Figure 4b):
    /// a *remote* participant `owner` has announced the `anycast` prefix
    /// and asks the SDX to rewrite the destination of matching request
    /// traffic per source block. The SDX verifies ownership (the paper
    /// would check the RPKI; we check the route server actually heard
    /// `owner` originate the prefix), installs the rewrite as a global
    /// policy fragment, and re-optimizes.
    pub fn install_wide_area_lb(
        &mut self,
        owner: ParticipantId,
        anycast: Prefix,
        mappings: &[(Prefix, Ipv4Addr)],
        fabric: &mut Fabric,
    ) -> Result<(), LbError> {
        let owns = self
            .rs
            .adj_rib_in(owner)
            .is_some_and(|rib| rib.get(anycast).is_some());
        if !owns {
            return Err(LbError::NotOwner(owner, anycast));
        }
        // Mappings apply first-match (the natural way to write "these
        // clients there, everyone else here"), so each clause carries the
        // negation of every earlier source filter — keeping the compiled
        // policy disjoint and unicast.
        let mut rewrite = sdx_policy::Policy::drop();
        let mut not_earlier = sdx_policy::Pred::Any;
        for &(src, instance) in mappings {
            let src_test = sdx_policy::Pred::Test(sdx_net::FieldMatch::NwSrc(src));
            let clause = sdx_policy::Policy::filter(
                sdx_policy::Pred::Test(sdx_net::FieldMatch::NwDst(anycast))
                    & src_test.clone()
                    & not_earlier.clone(),
            ) >> sdx_policy::Policy::modify(sdx_net::Mod::SetNwDst(instance));
            rewrite = rewrite + clause;
            not_earlier = not_earlier & !src_test;
        }
        self.compiler.clear_global_policies(owner);
        self.compiler.add_global_policy(owner, rewrite);
        self.reoptimize(fabric).map_err(LbError::Compile)?;
        Ok(())
    }
}

/// The staged half of a scheduled re-optimization: the control plane
/// (report, ARP, FIB) already points at the new configuration, and
/// [`plan`](Self::plan) holds the dependency-ordered waves that will
/// patch the data plane. Produced by
/// [`SdxController::prepare_scheduled`], consumed by
/// [`SdxController::commit_scheduled`].
#[derive(Clone, Debug)]
pub struct PreparedUpdate {
    /// The dependency-ordered wave plan for the data-plane patch.
    pub plan: crate::schedule::UpdatePlan,
    /// Rules the reconciliation diff left untouched.
    pub unchanged: usize,
    /// Whether the diff fell back to a full priority rebase.
    pub rebased: bool,
    overlays: u32,
    stale_ids: Vec<crate::fec::FecId>,
    retired_addrs: Vec<Ipv4Addr>,
}

/// Advisory diagnostics from [`SdxController::validate_outbound`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyDiagnostics {
    /// Number of forwarding clauses the policy compiles to.
    pub clauses: usize,
    /// Forwarding targets that are not registered participants (their
    /// clauses would be erased by the BGP-consistency transformation).
    pub unknown_targets: Vec<ParticipantId>,
    /// Clauses of the new policy completely shadowed by the participant's
    /// currently installed policy (dead if both are composed).
    pub shadowed_clauses: usize,
}

/// Errors from the wide-area load-balancer application.
#[derive(Debug)]
pub enum LbError {
    /// The requesting participant never announced the anycast prefix.
    NotOwner(ParticipantId, Prefix),
    /// The resulting policy failed to compile or commit.
    Compile(SdxError),
}

impl std::fmt::Display for LbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LbError::NotOwner(p, pfx) => {
                write!(f, "{p} does not originate {pfx}; refusing LB policy")
            }
            LbError::Compile(e) => write!(f, "LB policy failed to compile: {e}"),
        }
    }
}

impl std::error::Error for LbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix, FieldMatch, Packet, PortId};
    use sdx_policy::Policy as P;

    fn pid(n: u32) -> ParticipantId {
        ParticipantId(n)
    }

    /// Figure 4a's setup, miniaturized: client ISP C forwards port-80
    /// traffic via B, everything else default (via A, the best route).
    fn deployment() -> (SdxController, Fabric) {
        let mut ctl = SdxController::new();
        let a = ParticipantConfig::new(1, 65001, 1);
        let b = ParticipantConfig::new(2, 65002, 1);
        let c = ParticipantConfig::new(3, 65003, 1)
            .with_outbound(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2))));
        ctl.add_participant(a.clone(), ExportPolicy::allow_all());
        ctl.add_participant(b.clone(), ExportPolicy::allow_all());
        ctl.add_participant(c, ExportPolicy::allow_all());
        // A and B both announce the AWS prefix; A's path is shorter.
        ctl.rs
            .process_update(pid(1), &a.announce([prefix("54.0.0.0/8")], &[65001, 7]));
        ctl.rs
            .process_update(pid(2), &b.announce([prefix("54.0.0.0/8")], &[65002, 9, 7]));
        let fabric = ctl.deploy().expect("deploy");
        (ctl, fabric)
    }

    #[test]
    fn deploy_wires_everything() {
        let (_ctl, mut fabric) = deployment();
        // Port-80 traffic from C reaches B.
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
        // Other traffic follows the best route to A.
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 443),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1));
        assert_eq!(fabric.stuck_at_virtual, 0);
    }

    #[test]
    fn withdrawal_shifts_traffic_synchronously_with_bgp() {
        // The Figure 5a event: B withdraws; port-80 traffic must shift to A
        // because forwarding must stay consistent with BGP.
        let (mut ctl, mut fabric) = deployment();
        let delta = ctl
            .process_update(
                pid(2),
                &UpdateMessage::withdraw([prefix("54.0.0.0/8")]),
                &mut fabric,
            )
            .expect("fast path");
        assert!(ctl.delta_layers() >= 1 || delta.rules.is_empty());
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].loc,
            PortId::Phys(pid(1), 1),
            "withdrawn next-hop must not receive traffic"
        );
        // Background reoptimization converges to the same behaviour.
        ctl.reoptimize(&mut fabric).unwrap();
        assert_eq!(ctl.delta_layers(), 0);
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1));
    }

    #[test]
    fn sharded_reoptimize_forwards_identically_and_attributes_mods() {
        let (mut ctl, mut fabric) = deployment();
        ctl.set_sharding(Sharding::Shards(4));
        ctl.reoptimize(&mut fabric).unwrap();
        // Same forwarding behaviour as the unsharded deploy.
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
        let snap = ctl.telemetry.snapshot();
        assert_eq!(snap.gauges.get("compile.shard.count"), Some(&4));
        // The sharded recompile after the unsharded deploy is a full
        // rebuild; its reconcile patch was attributed per shard.
        assert!(snap.counters.contains_key("reconcile.shard.touched.count"));
        let before = snap.counters["compile.shard.recompiled.count"];
        // A localized churn event recompiles only the dirty shard, and
        // the resulting patch touches at most the shards that recompiled.
        let b_cfg = ctl.compiler.participant(pid(2)).unwrap().clone();
        ctl.rs
            .process_update(pid(2), &b_cfg.announce([prefix("91.0.0.0/8")], &[65002, 3]));
        let pre_touched = ctl
            .telemetry
            .snapshot()
            .counters
            .get("reconcile.shard.touched.count")
            .copied()
            .unwrap_or(0);
        ctl.reoptimize(&mut fabric).unwrap();
        let snap = ctl.telemetry.snapshot();
        let recompiled = snap.counters["compile.shard.recompiled.count"] - before;
        assert_eq!(recompiled, 1, "one announced prefix dirties one shard");
        let touched = snap.counters["reconcile.shard.touched.count"] - pre_touched;
        assert!(
            touched <= recompiled,
            "patch touched {touched} shards but only {recompiled} recompiled"
        );
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("91.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
    }

    #[test]
    fn policy_change_takes_effect_on_reoptimize() {
        let (mut ctl, mut fabric) = deployment();
        // Drop C's policy: everything should follow the best route (A).
        ctl.set_outbound(pid(3), None);
        ctl.reoptimize(&mut fabric).unwrap();
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1));
    }

    #[test]
    fn announcement_reroutes_via_fast_path() {
        let (mut ctl, mut fabric) = deployment();
        // A new, better route appears at B for a new prefix; C's policy
        // applies to it immediately via the fast path.
        let b_cfg = ctl.compiler.participant(pid(2)).unwrap().clone();
        ctl.process_update(
            pid(2),
            &b_cfg.announce([prefix("91.0.0.0/8")], &[65002, 3]),
            &mut fabric,
        )
        .unwrap();
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("91.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
    }

    #[test]
    fn wide_area_load_balancer() {
        // Figure 4b: clients behind A address an anycast IP announced by
        // the remote AWS tenant D; instances live behind transit B.
        let mut ctl = SdxController::new();
        let a = ParticipantConfig::new(1, 65001, 1);
        let b = ParticipantConfig::new(2, 65002, 1);
        let d = ParticipantConfig::new(4, 65004, 1);
        ctl.add_participant(a.clone(), ExportPolicy::allow_all());
        ctl.add_participant(b.clone(), ExportPolicy::allow_all());
        ctl.add_participant(d.clone(), ExportPolicy::allow_all());
        ctl.rs.process_update(
            pid(2),
            &b.announce([prefix("54.198.0.0/24")], &[65002, 14618]),
        );
        ctl.rs.process_update(
            pid(2),
            &b.announce([prefix("54.230.0.0/24")], &[65002, 14618]),
        );
        ctl.rs
            .process_update(pid(4), &d.announce([prefix("74.125.1.0/24")], &[65004]));
        let mut fabric = ctl.deploy().expect("deploy");

        // Ownership check: B may not install LB for D's prefix.
        assert!(matches!(
            ctl.install_wide_area_lb(
                pid(2),
                prefix("74.125.1.0/24"),
                &[(prefix("0.0.0.0/0"), ip("54.198.0.10"))],
                &mut fabric,
            ),
            Err(LbError::NotOwner(..))
        ));

        // Before the policy: anycast traffic defaults to D (the origin).
        let out = fabric.send(
            PortId::Phys(pid(1), 1),
            Packet::udp(ip("204.57.0.67"), ip("74.125.1.1"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(4), 1));

        // D installs the LB policy: its sources split across instances.
        ctl.install_wide_area_lb(
            pid(4),
            prefix("74.125.1.0/24"),
            &[
                (prefix("204.57.0.0/16"), ip("54.230.0.10")),
                (prefix("0.0.0.0/1"), ip("54.198.0.10")),
            ],
            &mut fabric,
        )
        .expect("LB installs");

        // Traffic from 204.57/16 is rewritten to instance #2 and exits via
        // B (the instance prefix's BGP next hop).
        let out = fabric.send(
            PortId::Phys(pid(1), 1),
            Packet::udp(ip("204.57.0.67"), ip("74.125.1.1"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
        assert_eq!(out[0].pkt.nw_dst, ip("54.230.0.10"));

        // Other low-half sources go to instance #1.
        let out = fabric.send(
            PortId::Phys(pid(1), 1),
            Packet::udp(ip("99.0.0.10"), ip("74.125.1.1"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
        assert_eq!(out[0].pkt.nw_dst, ip("54.198.0.10"));
    }

    #[test]
    fn validate_outbound_diagnostics() {
        let (ctl, _fabric) = deployment();
        // Valid policy toward a known participant.
        let ok = ctl
            .validate_outbound(
                pid(3),
                &(P::match_(FieldMatch::TpDst(53)) >> P::fwd(PortId::Virt(pid(1)))),
            )
            .expect("valid");
        assert_eq!(ok.clauses, 1);
        assert!(ok.unknown_targets.is_empty());
        // Target nobody registered.
        let ghost = ctl
            .validate_outbound(
                pid(3),
                &(P::match_(FieldMatch::TpDst(53)) >> P::fwd(PortId::Virt(pid(9)))),
            )
            .expect("structurally valid");
        assert_eq!(ghost.unknown_targets, vec![pid(9)]);
        // Clause fully shadowed by the installed policy (port 80 → B).
        let shadowed = ctl
            .validate_outbound(
                pid(3),
                &(P::filter(
                    sdx_policy::Pred::Test(FieldMatch::TpDst(80))
                        & sdx_policy::Pred::Test(FieldMatch::NwSrc(prefix("10.0.0.0/8"))),
                ) >> P::fwd(PortId::Virt(pid(1)))),
            )
            .expect("structurally valid");
        assert_eq!(shadowed.shadowed_clauses, 1);
        // Isolation violations are hard errors.
        assert!(ctl
            .validate_outbound(
                pid(3),
                &(P::match_(FieldMatch::InPort(PortId::Phys(pid(1), 1)))
                    >> P::fwd(PortId::Virt(pid(2)))),
            )
            .is_err());
    }

    #[test]
    fn remove_participant_cleans_up() {
        let (mut ctl, mut fabric) = deployment();
        // B carries the policy traffic; removing it must leave no rule
        // forwarding toward it and shift traffic to A.
        assert!(ctl.remove_participant(pid(2), &mut fabric));
        assert!(!ctl.remove_participant(pid(2), &mut fabric), "idempotent");
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc.participant(), pid(1));
        // No rule references the removed participant's ports.
        let report = ctl.report.as_ref().expect("compiled");
        for r in report.classifier.rules() {
            for a in &r.actions {
                for m in &a.mods {
                    if let sdx_net::Mod::SetLoc(p) = m {
                        assert_ne!(p.participant(), pid(2), "stale rule {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn vnh_pool_is_recycled_across_reoptimizations() {
        // A deliberately tiny pool: without recycling at reoptimize, the
        // churn loop below would exhaust it and panic.
        let (mut ctl, mut fabric) = deployment();
        ctl.vnh = crate::vnh::VnhAllocator::new(prefix("172.16.128.0/26")); // 63 ids
        ctl.reoptimize(&mut fabric).expect("rebase onto tiny pool");
        let b_cfg = ctl.compiler.participant(pid(2)).unwrap().clone();
        for round in 0..30u32 {
            // Each update forces a fresh VNH for the affected viewer.
            ctl.process_update(
                pid(2),
                &b_cfg.announce([prefix("54.0.0.0/8")], &[65002, 1000 + round]),
                &mut fabric,
            )
            .expect("fast path");
            ctl.reoptimize(&mut fabric).expect("recycles ids");
        }
        // Behaviour still correct after heavy recycling.
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc.participant(), pid(2));
    }

    #[test]
    fn policy_delta_recompiles_only_affected_viewer() {
        let (mut ctl, mut fabric) = deployment();
        ctl.set_sharding(Sharding::Shards(4));
        ctl.reoptimize(&mut fabric).unwrap();
        let snap = ctl.telemetry.snapshot();
        let r0 = snap.counters["compile.shard.recompiled.count"];
        let d0 = snap
            .counters
            .get("policy.dirty_units.count")
            .copied()
            .unwrap_or(0);
        // C retargets port-80 traffic to A — a pure policy event with no
        // route churn riding along.
        let delta = PolicyDelta::new().replace_outbound(
            pid(3),
            P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(1))),
        );
        ctl.apply_policy_delta(&delta, &mut fabric).unwrap();
        let snap = ctl.telemetry.snapshot();
        assert_eq!(
            snap.counters["compile.shard.recompiled.count"] - r0,
            0,
            "a policy delta must not mark route-dirty shards"
        );
        let dirty = snap.counters["policy.dirty_units.count"] - d0;
        assert!(
            (1..=4).contains(&dirty),
            "only the editing viewer's units recompile, got {dirty}"
        );
        assert_eq!(snap.counters.get("policy.applied.count"), Some(&1));
        // Behaviour actually changed: port 80 now exits via A.
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1));
    }

    #[test]
    fn invalid_policy_delta_is_rejected_and_stages_nothing() {
        let (mut ctl, mut fabric) = deployment();
        let before = ctl.compiler.policy_versions().clone();
        // Unknown participant.
        let delta = PolicyDelta::new().install_outbound(pid(42), P::fwd(PortId::Virt(pid(1))));
        match ctl.apply_policy_delta(&delta, &mut fabric) {
            Err(SdxError::PolicyRejected(sdx_policy::DslError::UnknownParticipant(p))) => {
                assert_eq!(p, pid(42));
            }
            other => panic!("expected UnknownParticipant rejection, got {other:?}"),
        }
        // Unresolvable physical port on an enrolled participant.
        let delta = PolicyDelta::new().install_outbound(pid(3), P::fwd(PortId::Phys(pid(1), 9)));
        match ctl.apply_policy_delta(&delta, &mut fabric) {
            Err(SdxError::PolicyRejected(sdx_policy::DslError::UnresolvablePort(p, idx))) => {
                assert_eq!((p, idx), (pid(1), 9));
            }
            other => panic!("expected UnresolvablePort rejection, got {other:?}"),
        }
        // Rejection is atomic: nothing was staged, no version moved.
        assert_eq!(ctl.compiler.policy_versions(), &before);
    }

    #[test]
    fn scheduled_policy_delta_converges_like_plain_path() {
        let (mut ctl, mut fabric) = deployment();
        ctl.set_sharding(Sharding::Shards(4));
        ctl.reoptimize(&mut fabric).unwrap();
        let delta = PolicyDelta::new().retract_outbound(pid(3));
        let prepared = ctl
            .apply_policy_delta_scheduled(&delta, &mut fabric)
            .expect("prepare");
        let opts = crate::schedule::ScheduleOpts::default();
        ctl.commit_scheduled(&mut fabric, prepared, &opts, None)
            .expect("waves commit");
        // With C's policy retracted, port-80 traffic follows the best
        // route (A) — same outcome the plain path produces.
        let out = fabric.send(
            PortId::Phys(pid(3), 1),
            Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1));
        let snap = ctl.telemetry.snapshot();
        assert_eq!(snap.counters.get("policy.retracted.count"), Some(&1));
    }
}
