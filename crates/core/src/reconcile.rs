//! Rule-level reconciliation: turn "the newly compiled classifier" into
//! the **minimal flow-mod batch** that patches the deployed table.
//!
//! The paper's §4.3.2 frames re-optimization as a background computation
//! whose result *replaces* the fast-path overlays. Replacing the whole
//! table is semantically fine but operationally hostile: on a hardware
//! switch every rule swap costs flow-mod bandwidth, TCAM writes, and a
//! window of inconsistency. Because FEC identity is churn-stable
//! ([`crate::vnh::VnhAllocator::reserve_keyed`]), most rules of the new
//! compilation are *byte-identical* to rules already installed — so the
//! controller should send only the difference.
//!
//! ## Priority assignment
//!
//! A naive diff is defeated by priorities: `install_classifier` numbers
//! rule `i` of `n` as `n - i`, so inserting one rule shifts every priority
//! below it. Reconciliation instead treats priorities as an
//! order-maintenance structure over the *base band* `(0, DELTA_BASE)`:
//!
//! * a full (re)base spreads `n` rules evenly, leaving gaps of
//!   `DELTA_BASE / (n + 1)` between neighbours;
//! * an inserted rule takes a midpoint priority between its surviving
//!   neighbours, so **no existing rule moves**;
//! * only when a gap is exhausted (pathological after ~30 same-spot
//!   insertions) does the engine fall back to a full rebase, and reports
//!   it, so the caller can count how rare that is.
//!
//! Matching is positional *by pattern*: the classifier emits rules in
//! first-match order, deployed entries sit in priority (= first-match)
//! order, and a greedy in-order walk pairs them up. A pattern that kept
//! its actions is untouched (counters survive); one whose actions changed
//! becomes a `Modify` (counters still survive — OpenFlow semantics);
//! patterns only in the old table are deleted; patterns only in the new
//! classifier are added at midpoints.

use sdx_net::HeaderMatch;
use sdx_openflow::flowmod::{FlowMod, FlowModBatch};
use sdx_openflow::table::{FlowEntry, FlowTable};
use sdx_policy::{Classifier, Rule};

/// Priority floor for fast-path delta overlays; the reconciled base table
/// lives strictly below this. Wide (2^30) so midpoint insertion
/// essentially never runs out of gaps.
pub const DELTA_BASE: u32 = 1 << 30;

/// The cookie stamped on a rule: its FEC-group id + 1 (from the VMAC the
/// pattern matches), or `0` for infrastructure rules that match no VMAC.
/// Stable across recompilations because keyed VNH allocation keeps group
/// ids stable — so cookies let the controller count and retire a group's
/// rules without pattern inspection.
pub fn cookie_of(pattern: &HeaderMatch) -> u64 {
    pattern
        .dl_dst
        .and_then(|m| m.fec_id())
        .map(|id| u64::from(id) + 1)
        .unwrap_or(0)
}

fn buckets_of(rule: &Rule) -> Vec<Vec<sdx_net::Mod>> {
    rule.actions.iter().map(|a| a.mods.clone()).collect()
}

/// Outcome of diffing a deployed table against a compiled classifier.
#[derive(Clone, Debug)]
pub struct TableDiff {
    /// The minimal batch that patches the base band.
    pub batch: FlowModBatch,
    /// Rules of the new classifier already installed verbatim (pattern
    /// *and* actions) — the churn-stability numerator.
    pub unchanged: usize,
    /// True when midpoint insertion ran out of priority gaps and the
    /// batch is a full delete-and-readd instead of a minimal patch.
    pub rebased: bool,
}

impl TableDiff {
    /// Total flow-mods the switch must process.
    pub fn touched(&self) -> usize {
        self.batch.len()
    }
}

/// Spread priorities for a full (re)base: rule `i` of `n` gets
/// `stride * (n - i)` with `stride = DELTA_BASE / (n + 1)` — first-match
/// order preserved, maximal gaps everywhere.
fn rebase_priorities(n: usize) -> impl Iterator<Item = u32> {
    let stride = DELTA_BASE / (n as u32 + 1);
    (0..n as u32).map(move |i| stride * (n as u32 - i))
}

fn full_rebase(old: &[&FlowEntry], rules: &[Rule], epoch: u64, unchanged: usize) -> TableDiff {
    let mut batch = FlowModBatch::new(epoch);
    for e in old {
        batch.push(FlowMod::Delete {
            priority: e.priority,
            pattern: e.pattern,
        });
    }
    for (rule, priority) in rules.iter().zip(rebase_priorities(rules.len())) {
        batch.push(FlowMod::Add(
            FlowEntry::new(priority, rule.matches, buckets_of(rule))
                .with_cookie(cookie_of(&rule.matches)),
        ));
    }
    TableDiff {
        batch,
        unchanged,
        rebased: true,
    }
}

/// Diffs the deployed **base band** (entries with priority below
/// [`DELTA_BASE`]; delta overlays above it are the caller's business)
/// against the freshly compiled classifier, producing the minimal
/// flow-mod batch. An empty table degenerates to the initial full
/// install, so first deployment and re-optimization share one code path.
pub fn diff_base_table(table: &FlowTable, classifier: &Classifier, epoch: u64) -> TableDiff {
    let old: Vec<&FlowEntry> = table
        .entries()
        .iter()
        .filter(|e| e.priority < DELTA_BASE)
        .collect();
    let rules = classifier.rules();

    // Greedy in-order pairing by pattern: for each new rule, the next old
    // entry (at or after the previous match) with the same pattern.
    // anchored[k] = Some(index into `old`) when new rule k found a home.
    let mut anchored: Vec<Option<usize>> = vec![None; rules.len()];
    let mut survives = vec![false; old.len()];
    let mut cursor = 0usize;
    for (k, rule) in rules.iter().enumerate() {
        if let Some(j) = old[cursor..]
            .iter()
            .position(|e| e.pattern == rule.matches)
            .map(|off| cursor + off)
        {
            anchored[k] = Some(j);
            survives[j] = true;
            cursor = j + 1;
        }
    }

    let mut batch = FlowModBatch::new(epoch);
    let mut unchanged = 0usize;
    for (j, e) in old.iter().enumerate() {
        if !survives[j] {
            batch.push(FlowMod::Delete {
                priority: e.priority,
                pattern: e.pattern,
            });
        }
    }
    // Walk the new rules run by run: anchored rules keep (or modify in
    // place at) their old priority; each run of unanchored rules between
    // two anchors spreads over the open interval the anchors bound.
    let mut k = 0usize;
    let mut prev_priority = DELTA_BASE; // exclusive upper bound
    while k < rules.len() {
        if let Some(j) = anchored[k] {
            let e = old[j];
            let new_buckets = buckets_of(&rules[k]);
            if e.buckets == new_buckets && e.cookie == cookie_of(&rules[k].matches) {
                unchanged += 1;
            } else {
                batch.push(FlowMod::Modify {
                    priority: e.priority,
                    pattern: e.pattern,
                    buckets: new_buckets,
                    cookie: cookie_of(&rules[k].matches),
                });
            }
            prev_priority = e.priority;
            k += 1;
            continue;
        }
        // A run of insertions: find its exclusive lower bound.
        let run_start = k;
        while k < rules.len() && anchored[k].is_none() {
            k += 1;
        }
        let next_priority = if k < rules.len() {
            old[anchored[k].expect("loop exit condition")].priority
        } else {
            0
        };
        let run = k - run_start;
        let gap = prev_priority.saturating_sub(next_priority);
        let step = gap / (run as u32 + 1);
        if step == 0 {
            // Gap exhausted: the minimal patch cannot express this insert
            // without moving neighbours — rebase the whole band instead.
            return full_rebase(&old, rules, epoch, unchanged);
        }
        for (r, rule) in rules[run_start..k].iter().enumerate() {
            let priority = prev_priority - step * (r as u32 + 1);
            batch.push(FlowMod::Add(
                FlowEntry::new(priority, rule.matches, buckets_of(rule))
                    .with_cookie(cookie_of(&rule.matches)),
            ));
        }
        // Anchored-rule handling resumes at `k` (which resets the upper
        // bound to that anchor's priority) on the next iteration.
    }
    TableDiff {
        batch,
        unchanged,
        rebased: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{FieldMatch, MacAddr, Mod, ParticipantId, PortId};
    use sdx_policy::classifier::Action;

    fn vmac_rule(id: u32, out: u32) -> Rule {
        Rule {
            matches: HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(id))),
            actions: vec![Action {
                mods: vec![Mod::SetLoc(PortId::Phys(ParticipantId(out), 1))],
            }],
        }
    }

    fn classifier(rules: Vec<Rule>) -> Classifier {
        Classifier::from_rules(rules)
    }

    fn deploy(rules: Vec<Rule>) -> FlowTable {
        let mut t = FlowTable::new();
        let diff = diff_base_table(&t, &classifier(rules), 1);
        t.apply_batch(&diff.batch).expect("initial install applies");
        t
    }

    #[test]
    fn initial_install_spreads_gaps() {
        // 3 rules + the classifier's wildcard catch-all = 4 entries.
        let t = deploy(vec![vmac_rule(1, 1), vmac_rule(2, 2), vmac_rule(3, 3)]);
        assert_eq!(t.len(), 4);
        let prios: Vec<u32> = t.entries().iter().map(|e| e.priority).collect();
        assert!(prios.windows(2).all(|w| w[0] > w[1]), "strictly ordered");
        let min_gap = prios.windows(2).map(|w| w[0] - w[1]).min().unwrap();
        assert!(min_gap > 1 << 20, "gaps are wide: {min_gap}");
        assert!(prios[0] < DELTA_BASE);
        assert_eq!(t.entries()[0].cookie, 2, "vmac 1 → cookie 2");
        assert_eq!(t.entries()[3].cookie, 0, "catch-all is infrastructure");
    }

    #[test]
    fn identical_recompile_is_a_noop() {
        let rules = vec![vmac_rule(1, 1), vmac_rule(2, 2)];
        let t = deploy(rules.clone());
        let diff = diff_base_table(&t, &classifier(rules), 2);
        assert!(diff.batch.is_empty());
        assert_eq!(diff.unchanged, 3, "both rules and the catch-all");
        assert!(!diff.rebased);
    }

    #[test]
    fn single_insert_touches_one_rule() {
        let t = deploy(vec![vmac_rule(1, 1), vmac_rule(3, 3)]);
        let new = vec![vmac_rule(1, 1), vmac_rule(2, 2), vmac_rule(3, 3)];
        let diff = diff_base_table(&t, &classifier(new), 2);
        assert_eq!(diff.batch.len(), 1, "one Add only: {:?}", diff.batch);
        assert_eq!(diff.batch.stats().adds, 1);
        assert_eq!(diff.unchanged, 3);
        // The add lands strictly between the surviving neighbours.
        let mut t2 = t.clone();
        t2.apply_batch(&diff.batch).unwrap();
        let order: Vec<u64> = t2.entries().iter().map(|e| e.cookie).collect();
        assert_eq!(order, vec![2, 3, 4, 0]);
    }

    #[test]
    fn action_change_is_a_modify_preserving_counters() {
        let mut t = deploy(vec![vmac_rule(1, 1), vmac_rule(2, 2)]);
        // Traffic hits rule for vmac 1.
        let lp = sdx_net::LocatedPacket::at(
            PortId::Phys(ParticipantId(9), 1),
            sdx_net::Packet::tcp(sdx_net::ip("1.1.1.1"), sdx_net::ip("2.2.2.2"), 1, 2)
                .with_macs(MacAddr::physical(9), MacAddr::vmac(1)),
        );
        t.lookup(&lp).expect("hits");
        let new = vec![vmac_rule(1, 7), vmac_rule(2, 2)]; // rerouted group 1
        let diff = diff_base_table(&t, &classifier(new), 2);
        assert_eq!(diff.batch.stats().modifies, 1);
        assert_eq!(diff.batch.len(), 1);
        t.apply_batch(&diff.batch).unwrap();
        let e = t.entries_with_cookie(2).next().unwrap();
        assert_eq!(e.packet_count, 1, "counters survive the modify");
        assert_eq!(
            e.buckets[0][0],
            Mod::SetLoc(PortId::Phys(ParticipantId(7), 1))
        );
    }

    #[test]
    fn removal_deletes_exactly_the_vanished_rule() {
        let t = deploy(vec![vmac_rule(1, 1), vmac_rule(2, 2), vmac_rule(3, 3)]);
        let new = vec![vmac_rule(1, 1), vmac_rule(3, 3)];
        let diff = diff_base_table(&t, &classifier(new), 2);
        assert_eq!(diff.batch.stats().deletes, 1);
        assert_eq!(diff.batch.len(), 1);
        let mut t2 = t.clone();
        t2.apply_batch(&diff.batch).unwrap();
        assert_eq!(t2.cookie_count(3), 0);
        assert_eq!(t2.len(), 3, "two rules + catch-all survive");
    }

    #[test]
    fn gap_exhaustion_falls_back_to_rebase() {
        // Deploy two rules, then repeatedly squeeze inserts between the
        // same neighbours until the gap runs dry. log2(DELTA_BASE) ≈ 30
        // halvings; 64 rounds must trigger at least one rebase without
        // ever corrupting order.
        let mut t = deploy(vec![vmac_rule(1, 1), vmac_rule(1000, 1)]);
        let mut rules = vec![vmac_rule(1, 1), vmac_rule(1000, 1)];
        let mut saw_rebase = false;
        for id in 2..66u32 {
            rules.insert(1, vmac_rule(id, 1));
            let c = classifier(rules.clone());
            let diff = diff_base_table(&t, &c, u64::from(id));
            saw_rebase |= diff.rebased;
            t.apply_batch(&diff.batch).expect("batch applies");
            let prios: Vec<u32> = t.entries().iter().map(|e| e.priority).collect();
            assert!(prios.windows(2).all(|w| w[0] > w[1]), "order intact");
            assert_eq!(t.len(), c.rules().len());
            // First-match order always mirrors classifier order.
            let got: Vec<u64> = t.entries().iter().map(|e| e.cookie).collect();
            let want: Vec<u64> = c.rules().iter().map(|r| cookie_of(&r.matches)).collect();
            assert_eq!(got, want);
        }
        assert!(saw_rebase, "64 same-spot inserts must exhaust some gap");
    }

    #[test]
    fn delta_overlays_above_base_are_ignored() {
        let mut t = deploy(vec![vmac_rule(1, 1)]);
        t.install(
            FlowEntry::new(
                DELTA_BASE + 5,
                HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(99))),
                vec![vec![Mod::SetLoc(PortId::Phys(ParticipantId(9), 1))]],
            )
            .with_cookie(100),
        );
        let diff = diff_base_table(&t, &classifier(vec![vmac_rule(1, 1)]), 2);
        assert!(diff.batch.is_empty(), "overlay band untouched by the diff");
    }

    #[test]
    fn infrastructure_rules_carry_cookie_zero() {
        assert_eq!(cookie_of(&HeaderMatch::any()), 0);
        assert_eq!(
            cookie_of(&HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(0)))),
            1
        );
    }
}
