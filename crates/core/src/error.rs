//! The workspace-wide error taxonomy.
//!
//! Every fallible step of the controller runtime — policy transformation,
//! VNH allocation, fabric commit validation, and injected test faults —
//! funnels into [`SdxError`], so callers of
//! [`process_update`](crate::controller::SdxController::process_update) and
//! [`reoptimize`](crate::controller::SdxController::reoptimize) see one
//! typed error channel instead of a mixture of panics and ad-hoc enums.

use sdx_net::Prefix;

use crate::faults::InjectionPoint;
use crate::transform::TransformError;

/// Any error the controller runtime can report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SdxError {
    /// A participant policy failed one of the §4.1 transformations
    /// (isolation, unicast restriction, unknown ports).
    Transform(TransformError),
    /// The VNH pool has no free addresses left. The transaction that hit
    /// this is rolled back; a subsequent
    /// [`reoptimize`](crate::controller::SdxController::reoptimize)
    /// recycles retired delta ids and usually clears the condition.
    VnhExhausted {
        /// The pool that ran dry.
        pool: Prefix,
        /// When the allocator is range-partitioned for sharded
        /// compilation, the index of the shard whose sub-range ran dry
        /// (`None` for an unpartitioned allocator — the whole pool is
        /// one range). Lets the operator grow or rebalance the right
        /// sub-range instead of guessing.
        shard: Option<usize>,
    },
    /// Pre-commit validation rejected a compiled result; the installed
    /// fabric was left untouched.
    InvalidCommit(String),
    /// A deterministic fault-injection point fired (test harnesses only;
    /// see [`crate::faults::FaultPlan`]).
    Injected(InjectionPoint),
    /// A scheduled fabric update was abandoned mid-flight: some wave kept
    /// failing past its retry budget, the remaining waves were skipped,
    /// and the fabric is parked in the last verified-safe intermediate
    /// state. Recovery is a fresh
    /// [`reoptimize`](crate::controller::SdxController::reoptimize), which
    /// re-diffs from the parked table.
    UpdateAborted {
        /// Zero-based index of the wave that exhausted its retries.
        wave: usize,
        /// Waves already committed (and verified) before the abort.
        applied: usize,
        /// Total waves the schedule had.
        total: usize,
        /// Attempts spent on the failing wave, including the first.
        attempts: u32,
    },
    /// A [`PolicyDelta`](sdx_policy::PolicyDelta) failed structural
    /// validation against the participant book (unknown participant,
    /// unresolvable port); nothing was staged. Carries the typed DSL
    /// error so callers can distinguish the offender.
    PolicyRejected(sdx_policy::dsl::DslError),
    /// Per-wave verification found an intermediate table that loops or
    /// routes a packet somewhere neither the old nor the new table would —
    /// the schedule itself is unsafe, so nothing past the offending wave
    /// was applied.
    UnsafeSchedule {
        /// Zero-based index of the wave whose post-state failed.
        wave: usize,
        /// Human-readable counterexample from the verifier (packet, port,
        /// and the outcome disagreement or loop trace).
        counterexample: String,
    },
}

impl core::fmt::Display for SdxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SdxError::Transform(e) => write!(f, "policy transformation failed: {e}"),
            SdxError::VnhExhausted { pool, shard } => match shard {
                Some(s) => write!(f, "VNH pool {pool} exhausted in shard {s}'s sub-range"),
                None => write!(f, "VNH pool {pool} exhausted"),
            },
            SdxError::InvalidCommit(why) => {
                write!(f, "fabric commit rejected: {why}")
            }
            SdxError::Injected(point) => {
                write!(f, "injected fault at {point}")
            }
            SdxError::PolicyRejected(e) => {
                write!(f, "policy delta rejected: {e}")
            }
            SdxError::UpdateAborted {
                wave,
                applied,
                total,
                attempts,
            } => write!(
                f,
                "scheduled update aborted: wave {wave} failed after {attempts} \
                 attempts; {applied}/{total} waves applied, fabric parked in \
                 last verified-safe state"
            ),
            SdxError::UnsafeSchedule {
                wave,
                counterexample,
            } => write!(
                f,
                "unsafe update schedule: wave {wave} produced an invalid \
                 intermediate table: {counterexample}"
            ),
        }
    }
}

impl std::error::Error for SdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdxError::Transform(e) => Some(e),
            SdxError::PolicyRejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for SdxError {
    fn from(e: TransformError) -> Self {
        SdxError::Transform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{prefix, ParticipantId};

    #[test]
    fn display_is_informative() {
        let e = SdxError::from(TransformError::MulticastOutbound(ParticipantId(7)));
        assert!(e.to_string().contains("multicast"));
        let e = SdxError::VnhExhausted {
            pool: prefix("10.0.0.0/30"),
            shard: None,
        };
        assert!(e.to_string().contains("exhausted"));
        let e = SdxError::VnhExhausted {
            pool: prefix("10.0.0.0/30"),
            shard: Some(3),
        };
        let s = e.to_string();
        assert!(s.contains("exhausted") && s.contains("shard 3"));
        let e = SdxError::Injected(InjectionPoint::FabricCommit);
        assert!(e.to_string().contains("fabric-commit"));
        let e = SdxError::UpdateAborted {
            wave: 2,
            applied: 2,
            total: 5,
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("wave 2") && s.contains("2/5") && s.contains("parked"));
        let e = SdxError::UnsafeSchedule {
            wave: 1,
            counterexample: "packet loops via port 3".into(),
        };
        assert!(e.to_string().contains("loops via port 3"));
    }

    #[test]
    fn transform_source_is_chained() {
        use std::error::Error;
        let e = SdxError::from(TransformError::NoSuchPort(ParticipantId(1), 9));
        assert!(e.source().is_some());
        assert!(SdxError::VnhExhausted {
            pool: prefix("10.0.0.0/30"),
            shard: None
        }
        .source()
        .is_none());
    }
}
