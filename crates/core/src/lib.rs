//! # sdx-core — the SDX controller (the paper's primary contribution)
//!
//! This crate assembles the substrates (`sdx-bgp`, `sdx-policy`,
//! `sdx-openflow`) into the system of *SDX: A Software Defined Internet
//! Exchange* (SIGCOMM 2014):
//!
//! * [`participant`] — participant configuration: ports, MACs, peering
//!   addresses, and the per-participant inbound/outbound policy slots.
//! * [`vswitch`] — the virtual-switch abstraction (§3.1): port naming and
//!   the DSL name tables each participant writes policies against.
//! * [`fec`] — forwarding equivalence classes: the Minimum Disjoint Subset
//!   computation (§4.2) that groups prefixes with identical forwarding
//!   behaviour.
//! * [`vnh`] — virtual next-hop / virtual MAC allocation, and the route
//!   server + ARP plumbing that turns the participant's own border router
//!   into the first FIB stage.
//! * [`transform`] — the syntactic policy transformations of §4.1:
//!   isolation, BGP-consistency + VMAC rewriting, default forwarding, and
//!   delivery.
//! * [`compiler`] — the full compilation pipeline with the §4.3.1
//!   optimizations (per-pair composition pruning, disjointness by
//!   construction, memoized sub-compilations), plus the naive baseline the
//!   ablation benches compare against.
//! * [`incremental`] — the §4.3.2 two-stage update path: a fast per-prefix
//!   recompile that installs higher-priority delta rules immediately, and
//!   background re-optimization between bursts.
//! * [`controller`] — the event-driven runtime tying the route server,
//!   compiler, ARP responder and switch together.
//! * [`service_chain`] — the §8 extension: steering a traffic class
//!   through an ordered sequence of middleboxes, synthesized from the
//!   existing policy machinery.
//! * [`error`] — the workspace-wide error taxonomy ([`SdxError`]).
//! * [`txn`] — transactional fabric commits: snapshot, validate, commit
//!   atomically, roll back to last-known-good on failure.
//! * [`faults`] — seeded, deterministic fault injection for exercising the
//!   recovery paths.
//! * [`schedule`] — provably safe update scheduling: the reconciliation
//!   diff partitioned into dependency-ordered flow-mod waves, driven with
//!   per-wave verification and mid-update failure recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod controller;
pub mod error;
pub mod faults;
pub mod fec;
pub mod incremental;
pub mod par;
pub mod participant;
pub mod reconcile;
pub mod schedule;
pub mod service_chain;
pub mod shard;
pub mod transform;
pub mod txn;
pub mod vnh;
pub mod vswitch;

pub use compiler::{CompileOptions, CompileReport, Parallelism, SdxCompiler};
pub use controller::{PreparedUpdate, SdxController};
pub use error::SdxError;
pub use faults::{FaultPlan, InjectionPoint};
pub use fec::{minimum_disjoint_subsets, FecGroup, FecId, FecKey};
pub use participant::{ParticipantConfig, PhysicalPort};
pub use reconcile::{diff_base_table, TableDiff};
pub use schedule::{
    MultiFabricSink, ScheduleOpts, ScheduleReport, UpdatePlan, WaveReport, WaveSink,
};
pub use service_chain::ServiceChain;
pub use shard::{canonicalize_report, ShardPlan, Sharding};
pub use txn::{DeltaTxn, FabricTxn};
pub use vnh::VnhAllocator;
