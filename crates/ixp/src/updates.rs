//! Bursty BGP update traces, calibrated to §4.3.2 and Table 1.
//!
//! The paper's incremental-compilation design rests on three measured
//! characteristics of IXP BGP churn, all of which the generator is
//! calibrated to reproduce (and the tests verify):
//!
//! 1. **stability** — only 10–14% of prefixes see any update all week;
//! 2. **small bursts** — updates arrive in bursts; 75% of bursts touch at
//!    most three prefixes, with a heavy tail (one 1000+-prefix burst per
//!    week);
//! 3. **quiet gaps** — inter-burst time is ≥ 10 s in 75% of cases and
//!    over a minute half the time.
//!
//! Session resets are injected separately: a reset dumps the peer's whole
//! table as withdraw+re-announce churn, which Table 1's methodology (and
//! ours) detects and discards from the update counts.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx_bgp::msg::UpdateMessage;
use sdx_net::{ParticipantId, Prefix};

use crate::topology::SyntheticIxp;

/// Trace generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraceParams {
    /// Trace duration in seconds (the paper uses a six-day window).
    pub duration_secs: u64,
    /// Fraction of prefixes eligible to churn (0.10–0.14 per Table 1).
    pub churny_fraction: f64,
    /// Mean session resets over the whole trace (small integer).
    pub session_resets: usize,
    /// Burst-rate multiplier: scales burst arrival frequency (gaps are
    /// divided by it). 1.0 reproduces the §4.3.2 quantiles; Table 1
    /// calibration raises it for the churnier IXPs.
    pub burst_rate_multiplier: f64,
    /// Path-exploration amplification: how many collector-observed update
    /// messages one routing event produces on average. A RIS collector
    /// hears every event once per peer session, times BGP path
    /// exploration, so Table 1's message counts are two orders of
    /// magnitude above the event counts. Only the *statistics* are
    /// amplified — one representative message is materialized per event.
    pub exploration_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            duration_secs: 6 * 24 * 3600,
            churny_fraction: 0.12,
            session_resets: 2,
            burst_rate_multiplier: 1.0,
            exploration_mean: 1.0,
            seed: 99,
        }
    }
}

/// One burst of updates, all arriving at the same instant.
#[derive(Clone, Debug)]
pub struct UpdateBurst {
    /// Arrival time within the trace, seconds.
    pub at: f64,
    /// The updates, attributed to their announcing participant.
    pub updates: Vec<(ParticipantId, UpdateMessage)>,
    /// True when this burst is session-reset churn (to be discarded from
    /// update statistics, per the Table 1 methodology).
    pub is_session_reset: bool,
}

impl UpdateBurst {
    /// Number of distinct prefixes the burst touches.
    pub fn prefix_count(&self) -> usize {
        let mut ps: Vec<Prefix> = self
            .updates
            .iter()
            .flat_map(|(_, u)| u.nlri.iter().chain(u.withdrawn.iter()).copied())
            .collect();
        ps.sort();
        ps.dedup();
        ps.len()
    }

    /// Number of update messages in the burst.
    pub fn message_count(&self) -> usize {
        self.updates.len()
    }
}

/// Aggregate statistics over a generated trace — the Table 1 columns.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Materialized update messages excluding session-reset churn.
    pub updates: u64,
    /// Collector-observed messages (events × path-exploration factor) —
    /// the Table 1 "BGP updates" column.
    pub observed_updates: u64,
    /// Updates attributed to session resets (discarded).
    pub reset_updates: u64,
    /// Percent of table prefixes that saw ≥1 (non-reset) update.
    pub pct_prefixes_with_updates: f64,
    /// Number of bursts (excluding resets).
    pub bursts: usize,
}

/// Samples an inter-burst gap matching the paper's quantiles:
/// P(gap ≥ 10 s) = 0.75 and P(gap ≥ 60 s) = 0.5.
fn sample_gap(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen();
    if u < 0.25 {
        // Short gaps inside churny periods: 0.5–10 s.
        0.5 + rng.gen::<f64>() * 9.5
    } else if u < 0.5 {
        // 10–60 s.
        10.0 + rng.gen::<f64>() * 50.0
    } else {
        // Upper half: ≥ 60 s, exponential tail (mean 30 s extra keeps the
        // weekly burst count near the measured traces').
        60.0 - 30.0 * rng.gen::<f64>().max(1e-12).ln()
    }
}

/// Samples a burst size (prefixes) matching "75% of bursts affect ≤ 3
/// prefixes" with a heavy tail reaching 1000+.
fn sample_burst_size(rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    if u < 0.75 {
        rng.gen_range(1..=3)
    } else if u < 0.999 {
        // Pareto-ish mid tail: most of the touched-prefix mass lives here.
        let x: f64 = rng.gen::<f64>().max(1e-12);
        (4.0 + 2.0 / x.powf(0.9)).min(800.0) as usize
    } else {
        // Rare table-scale event (the paper saw one >1000-prefix burst in
        // a week).
        rng.gen_range(1000..=1500)
    }
}

/// A generated trace plus its (already computed) statistics.
#[derive(Clone, Debug)]
pub struct UpdateTrace {
    /// Bursts in arrival order (session resets interleaved).
    pub bursts: Vec<UpdateBurst>,
    /// Aggregate statistics (resets discarded, as in Table 1).
    pub stats: TraceStats,
}

/// Generates a trace against the given IXP's routing table.
pub fn generate(ixp: &SyntheticIxp, params: &TraceParams) -> UpdateTrace {
    let mut rng = StdRng::seed_from_u64(params.seed);

    // The churny subset: the same ~12% of prefixes see all the updates.
    // (Per-announcer so withdraw/re-announce attribution stays honest.)
    let mut churny: Vec<(ParticipantId, Prefix)> = Vec::new();
    for (cfg, prefixes) in ixp.participants.iter().zip(&ixp.announcements) {
        for &p in prefixes {
            churny.push((cfg.id, p));
        }
    }
    churny.shuffle(&mut rng);
    let total_prefixes = churny.len();
    churny.truncate(((total_prefixes as f64) * params.churny_fraction).round() as usize);

    let mut bursts = Vec::new();
    let mut touched: std::collections::BTreeSet<Prefix> = Default::default();
    let mut updates: u64 = 0;
    let mut observed: u64 = 0;
    let mut t = 0.0f64;
    while t < params.duration_secs as f64 && !churny.is_empty() {
        t += sample_gap(&mut rng) / params.burst_rate_multiplier.max(1e-9);
        if t >= params.duration_secs as f64 {
            break;
        }
        let size = sample_burst_size(&mut rng).min(churny.len());
        let mut msgs = Vec::with_capacity(size);
        for _ in 0..size {
            let &(owner, prefix) = churny.choose(&mut rng).expect("non-empty");
            touched.insert(prefix);
            let cfg = ixp
                .participants
                .iter()
                .find(|c| c.id == owner)
                .expect("known owner");
            // Alternate between a path change (re-announce with a longer
            // path) and a flap (withdraw); both change the best route.
            let msg = if rng.gen_bool(0.8) {
                let prepends = rng.gen_range(1..4usize);
                let mut path = vec![cfg.asn.0; prepends];
                path.push(400_000 + owner.0 * 8 + rng.gen_range(0..4));
                cfg.announce([prefix], &path)
            } else {
                UpdateMessage::withdraw([prefix])
            };
            msgs.push((owner, msg));
            // Path-exploration amplification for the observed count.
            let k = (params.exploration_mean * (0.5 + rng.gen::<f64>())).max(1.0);
            observed += k.round() as u64;
        }
        updates += msgs.len() as u64;
        bursts.push(UpdateBurst {
            at: t,
            updates: msgs,
            is_session_reset: false,
        });
    }

    // Inject session resets at random times: each dumps the peer's full
    // table (withdraw burst followed by re-announcement burst).
    let mut reset_updates = 0u64;
    for _ in 0..params.session_resets {
        let idx = rng.gen_range(0..ixp.participants.len());
        let cfg = &ixp.participants[idx];
        let prefixes = &ixp.announcements[idx];
        if prefixes.is_empty() {
            continue;
        }
        let at = rng.gen::<f64>() * params.duration_secs as f64;
        let withdraw = UpdateMessage::withdraw(prefixes.iter().copied());
        let reannounce = cfg.announce(prefixes.iter().copied(), &[cfg.asn.0]);
        reset_updates += 2 * prefixes.len() as u64;
        bursts.push(UpdateBurst {
            at,
            updates: vec![(cfg.id, withdraw), (cfg.id, reannounce)],
            is_session_reset: true,
        });
    }
    bursts.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));

    let n_bursts = bursts.iter().filter(|b| !b.is_session_reset).count();
    let stats = TraceStats {
        updates,
        observed_updates: observed,
        reset_updates,
        pct_prefixes_with_updates: 100.0 * touched.len() as f64 / total_prefixes as f64,
        bursts: n_bursts,
    };
    UpdateTrace { bursts, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build, TopologyParams};

    fn ixp() -> SyntheticIxp {
        build(&TopologyParams {
            participants: 50,
            prefixes: 5000,
            ..Default::default()
        })
    }

    fn day_trace() -> UpdateTrace {
        generate(
            &ixp(),
            &TraceParams {
                duration_secs: 24 * 3600,
                ..Default::default()
            },
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let a = day_trace();
        let b = day_trace();
        assert_eq!(a.bursts.len(), b.bursts.len());
        assert_eq!(a.stats.updates, b.stats.updates);
    }

    #[test]
    fn burst_size_quantile_matches_paper() {
        let trace = day_trace();
        let sizes: Vec<usize> = trace
            .bursts
            .iter()
            .filter(|b| !b.is_session_reset)
            .map(|b| b.prefix_count())
            .collect();
        assert!(sizes.len() > 200, "enough bursts to measure");
        let small = sizes.iter().filter(|&&s| s <= 3).count();
        let frac = small as f64 / sizes.len() as f64;
        // §4.3.2: "in 75% of the cases, update bursts affected no more
        // than three prefixes". Generator tolerance ±7pp.
        assert!(
            (0.68..=0.82).contains(&frac),
            "P(burst ≤ 3 prefixes) = {frac:.2}"
        );
    }

    #[test]
    fn gap_quantiles_match_paper() {
        let trace = day_trace();
        let times: Vec<f64> = trace
            .bursts
            .iter()
            .filter(|b| !b.is_session_reset)
            .map(|b| b.at)
            .collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.len() > 100);
        let ge10 = gaps.iter().filter(|&&g| g >= 10.0).count() as f64 / gaps.len() as f64;
        let ge60 = gaps.iter().filter(|&&g| g >= 60.0).count() as f64 / gaps.len() as f64;
        // §4.3.2: inter-arrival ≥ 10 s 75% of the time; ≥ 1 min half the
        // time. Loose tolerances — the shape is what matters.
        assert!((0.65..=0.85).contains(&ge10), "P(gap≥10s) = {ge10:.2}");
        assert!((0.40..=0.60).contains(&ge60), "P(gap≥60s) = {ge60:.2}");
    }

    #[test]
    fn churny_fraction_bounds_touched_prefixes() {
        // A week-long trace touches at most the churny subset: 10–14%.
        let trace = generate(&ixp(), &TraceParams::default());
        assert!(
            trace.stats.pct_prefixes_with_updates <= 14.0,
            "{}",
            trace.stats.pct_prefixes_with_updates
        );
        assert!(
            trace.stats.pct_prefixes_with_updates >= 8.0,
            "{}",
            trace.stats.pct_prefixes_with_updates
        );
    }

    #[test]
    fn session_resets_are_flagged_and_separated() {
        let trace = generate(
            &ixp(),
            &TraceParams {
                session_resets: 3,
                ..Default::default()
            },
        );
        let resets: Vec<&UpdateBurst> =
            trace.bursts.iter().filter(|b| b.is_session_reset).collect();
        assert!(!resets.is_empty());
        assert!(trace.stats.reset_updates > 0);
        // Reset churn is not in the update count.
        let replayed: u64 = trace
            .bursts
            .iter()
            .filter(|b| !b.is_session_reset)
            .map(|b| b.message_count() as u64)
            .sum();
        assert_eq!(replayed, trace.stats.updates);
    }

    #[test]
    fn updates_replay_through_route_server() {
        let ixp = ixp();
        let mut rs = ixp.route_server();
        let trace = generate(
            &ixp,
            &TraceParams {
                duration_secs: 3600,
                ..Default::default()
            },
        );
        let mut changed = 0usize;
        for b in &trace.bursts {
            for (from, u) in &b.updates {
                changed += rs.process_update(*from, u).len();
            }
        }
        assert!(changed > 0, "trace must actually change routes");
    }

    #[test]
    fn bursts_are_time_ordered() {
        let trace = day_trace();
        assert!(trace.bursts.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
