//! The Table 1 datasets, as published.
//!
//! The paper characterizes one week (January 1–6, 2014) of RIPE RIS BGP
//! updates at the three largest IXPs. These constants are the calibration
//! targets for the synthetic generators; `repro_table1` regenerates the
//! table from synthetic traces and checks the columns against these.

/// Published statistics for one IXP dataset (Table 1).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct IxpDataset {
    /// IXP name.
    pub name: &'static str,
    /// Peers visible at the RIS collector.
    pub collector_peers: usize,
    /// Total member ASes at the IXP.
    pub total_peers: usize,
    /// Distinct prefixes in the collector's tables.
    pub prefixes: usize,
    /// BGP updates over the measurement week (after discarding
    /// session-reset churn per Zhang et al.).
    pub updates: u64,
    /// Fraction of prefixes that saw at least one update all week.
    pub pct_prefixes_with_updates: f64,
}

/// AMS-IX (Amsterdam), the largest IXP in the study.
pub const AMS_IX: IxpDataset = IxpDataset {
    name: "AMS-IX",
    collector_peers: 116,
    total_peers: 639,
    prefixes: 518_082,
    updates: 11_161_624,
    pct_prefixes_with_updates: 9.88,
};

/// DE-CIX (Frankfurt).
pub const DE_CIX: IxpDataset = IxpDataset {
    name: "DE-CIX",
    collector_peers: 92,
    total_peers: 580,
    prefixes: 518_391,
    updates: 30_934_525,
    pct_prefixes_with_updates: 13.64,
};

/// LINX (London).
pub const LINX: IxpDataset = IxpDataset {
    name: "LINX",
    collector_peers: 71,
    total_peers: 496,
    prefixes: 503_392,
    updates: 16_658_819,
    pct_prefixes_with_updates: 12.67,
};

/// All three datasets, in the paper's column order.
pub const ALL: [IxpDataset; 3] = [AMS_IX, DE_CIX, LINX];

/// Seconds in the paper's measurement window (Jan 1–6 = six days).
pub const MEASUREMENT_WINDOW_SECS: u64 = 6 * 24 * 3600;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_table1() {
        assert_eq!(AMS_IX.collector_peers, 116);
        assert_eq!(AMS_IX.total_peers, 639);
        assert_eq!(DE_CIX.updates, 30_934_525);
        assert_eq!(LINX.prefixes, 503_392);
        assert!(ALL.iter().all(|d| d.pct_prefixes_with_updates < 15.0));
        assert!(ALL.iter().all(|d| d.pct_prefixes_with_updates > 9.0));
    }

    #[test]
    fn update_rates_are_plausible() {
        // Sanity: the busiest IXP sees ~60 updates/second on average.
        for d in ALL {
            let rate = d.updates as f64 / MEASUREMENT_WINDOW_SECS as f64;
            assert!(rate > 10.0 && rate < 100.0, "{}: {rate}", d.name);
        }
    }
}
