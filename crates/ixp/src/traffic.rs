//! The deterministic traffic simulator behind the Figure 5 experiments.
//!
//! The paper's deployment experiments (Figure 4/5) run constant-rate UDP
//! flows through the SDX while control-plane events fire — a policy
//! installation at t=565 s, a route withdrawal at t=1253 s — and plot the
//! per-upstream traffic rate over time. This simulator does the same in
//! virtual time: one tick per second, each flow's packets pushed through
//! the full pipeline (border-router FIB → VNH/ARP tag → flow table), with
//! the controller's fast path handling the events exactly as it would
//! live.

use sdx_bgp::msg::UpdateMessage;
use sdx_core::controller::SdxController;
use sdx_net::{Ipv4Addr, Packet, ParticipantId, PortId};
use sdx_openflow::fabric::Fabric;
use sdx_policy::Policy;

/// A constant-rate flow injected at a participant port.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Human-readable label for the series legend.
    pub label: String,
    /// The fabric port the sender's border router is attached to.
    pub from: PortId,
    /// Template packet (addresses/ports); payload length is derived from
    /// the rate.
    pub template: Packet,
    /// Offered rate in Mbps.
    pub rate_mbps: f64,
    /// When the flow starts/stops (seconds; end exclusive).
    pub active: (f64, f64),
}

/// A control-plane event fired at a point in virtual time.
#[derive(Clone, Debug)]
pub enum Event {
    /// Install (or replace) an outbound policy and re-optimize.
    SetOutbound {
        /// Fire time, seconds.
        at: f64,
        /// Whose policy.
        participant: ParticipantId,
        /// The policy (None clears).
        policy: Option<Policy>,
    },
    /// Install (or replace) an inbound policy and re-optimize.
    SetInbound {
        /// Fire time, seconds.
        at: f64,
        /// Whose policy.
        participant: ParticipantId,
        /// The policy (None clears).
        policy: Option<Policy>,
    },
    /// A BGP update arrives from a participant (handled via fast path).
    Bgp {
        /// Fire time, seconds.
        at: f64,
        /// Announcing/withdrawing participant.
        from: ParticipantId,
        /// The update.
        update: UpdateMessage,
    },
    /// Replace a remote participant's global policy fragment (the
    /// wide-area load-balancer application) and re-optimize.
    GlobalPolicy {
        /// Fire time, seconds.
        at: f64,
        /// The remote participant that owns the fragment.
        owner: ParticipantId,
        /// The new fragment (None clears).
        policy: Option<Policy>,
    },
}

impl Event {
    fn at(&self) -> f64 {
        match self {
            Event::SetOutbound { at, .. }
            | Event::SetInbound { at, .. }
            | Event::Bgp { at, .. }
            | Event::GlobalPolicy { at, .. } => *at,
        }
    }
}

/// How deliveries are bucketed into series.
#[derive(Clone, Copy, Debug)]
pub enum SeriesKey {
    /// By the egress participant (Figure 5a: which upstream carried it).
    EgressParticipant,
    /// By final destination IP (Figure 5b: which server instance got it).
    DestinationIp,
}

/// A measured rate series: per tick, per key, Mbps delivered.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Series labels, index-aligned with each point's rate vector.
    pub keys: Vec<String>,
    /// `(t_seconds, rates_mbps)` per tick.
    pub points: Vec<(f64, Vec<f64>)>,
}

impl TimeSeries {
    fn key_index(&mut self, key: &str) -> usize {
        if let Some(i) = self.keys.iter().position(|k| k == key) {
            return i;
        }
        self.keys.push(key.to_string());
        for (_, rates) in &mut self.points {
            rates.push(0.0);
        }
        self.keys.len() - 1
    }

    /// The rate of series `key` at the tick nearest `t` (test helper).
    pub fn rate_at(&self, key: &str, t: f64) -> Option<f64> {
        let ki = self.keys.iter().position(|k| k == key)?;
        self.points
            .iter()
            .min_by(|a, b| {
                (a.0 - t)
                    .abs()
                    .partial_cmp(&(b.0 - t).abs())
                    .expect("finite")
            })
            .map(|(_, rates)| rates[ki])
    }
}

/// The simulator: a controller + fabric + flows + events.
pub struct TrafficSim {
    /// The SDX controller under test.
    pub controller: SdxController,
    /// The data plane.
    pub fabric: Fabric,
    /// Offered flows.
    pub flows: Vec<Flow>,
    /// Control-plane events (will be fired in time order).
    pub events: Vec<Event>,
    /// How to bucket deliveries.
    pub series_key: SeriesKey,
}

impl TrafficSim {
    /// Journals a policy swap into the controller's event journal so the
    /// measured series can be lined up against the control-plane timeline.
    fn journal_policy_change(&self, participant: ParticipantId, scope: &str) {
        self.controller
            .telemetry
            .record_event(sdx_telemetry::Event::PolicyChanged {
                participant: participant.0,
                scope: scope.to_string(),
            });
    }

    /// Runs for `duration` seconds at 1-second ticks, returning the
    /// delivered-rate series.
    pub fn run(mut self, duration: f64) -> TimeSeries {
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.at().partial_cmp(&b.at()).expect("finite times"));
        let mut next_event = 0usize;
        let mut series = TimeSeries::default();
        // Pre-register flow keys so series exist even before traffic shifts.
        let mut tick = 0.0f64;
        while tick < duration {
            // Fire due events.
            while next_event < events.len() && events[next_event].at() <= tick {
                match &events[next_event] {
                    Event::SetOutbound {
                        participant,
                        policy,
                        ..
                    } => {
                        self.journal_policy_change(*participant, "outbound");
                        self.controller.set_outbound(*participant, policy.clone());
                        self.controller
                            .reoptimize(&mut self.fabric)
                            .expect("policy recompiles");
                    }
                    Event::SetInbound {
                        participant,
                        policy,
                        ..
                    } => {
                        self.journal_policy_change(*participant, "inbound");
                        self.controller.set_inbound(*participant, policy.clone());
                        self.controller
                            .reoptimize(&mut self.fabric)
                            .expect("policy recompiles");
                    }
                    Event::Bgp { from, update, .. } => {
                        self.controller
                            .process_update(*from, update, &mut self.fabric)
                            .expect("fast path");
                    }
                    Event::GlobalPolicy { owner, policy, .. } => {
                        self.journal_policy_change(*owner, "global");
                        self.controller.compiler.clear_global_policies(*owner);
                        if let Some(p) = policy {
                            self.controller
                                .compiler
                                .add_global_policy(*owner, p.clone());
                        }
                        self.controller
                            .reoptimize(&mut self.fabric)
                            .expect("policy recompiles");
                    }
                }
                next_event += 1;
            }

            // Offer one tick of each active flow.
            let mut rates: Vec<(String, f64)> = Vec::new();
            for flow in &self.flows {
                if tick < flow.active.0 || tick >= flow.active.1 {
                    continue;
                }
                let delivered = self.fabric.send(flow.from, flow.template);
                for d in delivered {
                    let key = match self.series_key {
                        SeriesKey::EgressParticipant => {
                            format!("via-{}", d.loc.participant())
                        }
                        SeriesKey::DestinationIp => format!("to-{}", d.pkt.nw_dst),
                    };
                    rates.push((key, flow.rate_mbps));
                }
            }

            // Record the tick.
            let n = series.keys.len();
            let mut point = vec![0.0; n];
            for (key, mbps) in rates {
                let ki = series.key_index(&key);
                if ki >= point.len() {
                    point.resize(ki + 1, 0.0);
                }
                point[ki] += mbps;
            }
            point.resize(series.keys.len(), 0.0);
            series.points.push((tick, point));
            tick += 1.0;
        }
        series
    }
}

/// Convenience: an anycast/unicast UDP flow template like the paper's
/// 1 Mbps test flows.
pub fn udp_flow(
    label: &str,
    from: PortId,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    dst_port: u16,
    rate_mbps: f64,
    active: (f64, f64),
) -> Flow {
    Flow {
        label: label.to_string(),
        from,
        template: Packet::udp(src, dst, 30_000, dst_port).with_len(1250),
        rate_mbps,
        active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_bgp::route_server::ExportPolicy;
    use sdx_core::participant::ParticipantConfig;
    use sdx_net::{ip, prefix, FieldMatch};
    use sdx_policy::Policy as P;

    fn pid(n: u32) -> ParticipantId {
        ParticipantId(n)
    }

    /// Figure 4a in miniature: AS A and AS B both reach the AWS prefix;
    /// AS C hosts the client.
    fn fig4a_sim() -> TrafficSim {
        let mut ctl = SdxController::new();
        let a = ParticipantConfig::new(1, 65001, 1);
        let b = ParticipantConfig::new(2, 65002, 1);
        let c = ParticipantConfig::new(3, 65003, 1);
        ctl.add_participant(a.clone(), ExportPolicy::allow_all());
        ctl.add_participant(b.clone(), ExportPolicy::allow_all());
        ctl.add_participant(c, ExportPolicy::allow_all());
        ctl.rs.process_update(
            pid(1),
            &a.announce([prefix("54.198.0.0/16")], &[65001, 14618]),
        );
        ctl.rs.process_update(
            pid(2),
            &b.announce([prefix("54.198.0.0/16")], &[65002, 7, 14618]),
        );
        let fabric = ctl.deploy().expect("deploy");
        TrafficSim {
            controller: ctl,
            fabric,
            flows: vec![udp_flow(
                "client",
                PortId::Phys(pid(3), 1),
                ip("99.0.0.10"),
                ip("54.198.0.50"),
                80,
                1.0,
                (0.0, 60.0),
            )],
            events: vec![
                Event::SetOutbound {
                    at: 20.0,
                    participant: pid(3),
                    policy: Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
                },
                Event::Bgp {
                    at: 40.0,
                    from: pid(2),
                    update: UpdateMessage::withdraw([prefix("54.198.0.0/16")]),
                },
            ],
            series_key: SeriesKey::EgressParticipant,
        }
    }

    #[test]
    fn figure5a_shape() {
        let series = fig4a_sim().run(60.0);
        // Phase 1 (t<20): default best route via A.
        assert_eq!(series.rate_at("via-P1", 10.0), Some(1.0));
        assert_eq!(series.rate_at("via-P2", 10.0).unwrap_or(0.0), 0.0);
        // Phase 2 (20≤t<40): policy shifts port-80 traffic via B.
        assert_eq!(series.rate_at("via-P2", 30.0), Some(1.0));
        assert_eq!(series.rate_at("via-P1", 30.0), Some(0.0));
        // Phase 3 (t≥40): B withdrew; traffic must fall back to A.
        assert_eq!(series.rate_at("via-P1", 50.0), Some(1.0));
        assert_eq!(series.rate_at("via-P2", 50.0), Some(0.0));
    }

    #[test]
    fn series_bookkeeping_is_rectangular() {
        let series = fig4a_sim().run(45.0);
        assert_eq!(series.points.len(), 45);
        for (_, rates) in &series.points {
            assert_eq!(rates.len(), series.keys.len());
        }
    }

    #[test]
    fn inactive_flows_send_nothing() {
        let mut sim = fig4a_sim();
        sim.flows[0].active = (10.0, 20.0);
        sim.events.clear();
        let series = sim.run(30.0);
        assert_eq!(series.rate_at("via-P1", 5.0).unwrap_or(0.0), 0.0);
        assert_eq!(series.rate_at("via-P1", 15.0), Some(1.0));
        assert_eq!(series.rate_at("via-P1", 25.0), Some(0.0));
    }

    #[test]
    fn figure5b_shape_with_global_policy_swap() {
        use sdx_net::{Mod, Prefix};
        use sdx_policy::Pred;
        // Tenant D announces the anycast prefix; B reaches both instances.
        let mut ctl = SdxController::new();
        let a = ParticipantConfig::new(1, 65001, 1);
        let b = ParticipantConfig::new(2, 65002, 1);
        let d = ParticipantConfig::new(4, 65004, 1);
        ctl.add_participant(a.clone(), ExportPolicy::allow_all());
        ctl.add_participant(b.clone(), ExportPolicy::allow_all());
        ctl.add_participant(d.clone(), ExportPolicy::allow_all());
        ctl.rs.process_update(
            pid(2),
            &b.announce([prefix("54.198.0.0/24")], &[65002, 14618]),
        );
        ctl.rs.process_update(
            pid(2),
            &b.announce([prefix("54.230.0.0/24")], &[65002, 14618]),
        );
        ctl.rs
            .process_update(pid(4), &d.announce([prefix("74.125.1.0/24")], &[65004]));
        let all_to_one = P::filter(Pred::Test(FieldMatch::NwDst(Prefix::new(
            ip("74.125.1.0"),
            24,
        )))) >> P::modify(Mod::SetNwDst(ip("54.198.0.10")));
        ctl.compiler.add_global_policy(pid(4), all_to_one);
        let fabric = ctl.deploy().expect("deploy");

        let split = (P::filter(
            Pred::Test(FieldMatch::NwDst(Prefix::new(ip("74.125.1.0"), 24)))
                & Pred::Test(FieldMatch::NwSrc(Prefix::new(ip("204.57.0.0"), 16))),
        ) >> P::modify(Mod::SetNwDst(ip("54.230.0.10"))))
            + (P::filter(
                Pred::Test(FieldMatch::NwDst(Prefix::new(ip("74.125.1.0"), 24)))
                    & !Pred::Test(FieldMatch::NwSrc(Prefix::new(ip("204.57.0.0"), 16))),
            ) >> P::modify(Mod::SetNwDst(ip("54.198.0.10"))));

        let client = PortId::Phys(pid(1), 1);
        let sim = TrafficSim {
            controller: ctl,
            fabric,
            flows: vec![
                udp_flow(
                    "c1",
                    client,
                    ip("204.57.0.67"),
                    ip("74.125.1.1"),
                    80,
                    1.0,
                    (0.0, 40.0),
                ),
                udp_flow(
                    "c2",
                    client,
                    ip("99.0.0.10"),
                    ip("74.125.1.1"),
                    80,
                    1.0,
                    (0.0, 40.0),
                ),
            ],
            events: vec![Event::GlobalPolicy {
                at: 20.0,
                owner: pid(4),
                policy: Some(split),
            }],
            series_key: SeriesKey::DestinationIp,
        };
        let series = sim.run(40.0);
        assert_eq!(series.rate_at("to-54.198.0.10", 10.0), Some(2.0));
        assert_eq!(series.rate_at("to-54.230.0.10", 10.0).unwrap_or(0.0), 0.0);
        assert_eq!(series.rate_at("to-54.198.0.10", 30.0), Some(1.0));
        assert_eq!(series.rate_at("to-54.230.0.10", 30.0), Some(1.0));
    }
}
