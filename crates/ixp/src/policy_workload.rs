//! The §6.1 policy-assignment model.
//!
//! The paper constructs "an exchange point with a realistic set of
//! participants and policies":
//!
//! * participants are classed eyeball / transit / content and sorted by
//!   announced prefix count;
//! * the **top 15% of eyeballs**, **top 5% of transits**, and a **random
//!   5% of content** providers install custom policies;
//! * **content providers**: outbound (application-specific peering)
//!   policies toward three random top eyeballs, plus one inbound policy
//!   matching one header field;
//! * **eyeballs**: inbound policies for half the policy-bearing content
//!   providers, matching one randomly selected header field; no outbound;
//! * **transit providers**: outbound policies for one prefix group toward
//!   half the top eyeballs (destination prefixes plus one extra header
//!   field), and inbound policies proportional to the top content
//!   providers.
//!
//! The knob that drives Figures 6–8 is `policy_prefixes`: how many
//! prefixes (drawn at random from the routing table) the destination-
//! based policies touch.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx_net::{FieldMatch, ParticipantId, PortId, Prefix};
use sdx_policy::{Policy, Pred};

use crate::topology::{ParticipantClass, SyntheticIxp};

/// Workload knobs.
#[derive(Clone, Copy, Debug)]
pub struct PolicyWorkloadParams {
    /// How many prefixes destination-based (transit) policies reference.
    pub policy_prefixes: usize,
    /// Fraction of eyeballs (by announcement rank) that install policies.
    pub eyeball_policy_fraction: f64,
    /// Fraction of transits that install policies.
    pub transit_policy_fraction: f64,
    /// Fraction of content providers that install policies.
    pub content_policy_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PolicyWorkloadParams {
    fn default() -> Self {
        PolicyWorkloadParams {
            policy_prefixes: 1000,
            eyeball_policy_fraction: 0.15,
            transit_policy_fraction: 0.05,
            content_policy_fraction: 0.05,
            seed: 7,
        }
    }
}

/// One random single-field match, as §6.1's "match on one randomly
/// selected header field".
fn random_field(rng: &mut StdRng) -> Pred {
    match rng.gen_range(0..4u8) {
        0 => Pred::Test(FieldMatch::TpDst(
            *[80u16, 443, 8080, 1935].choose(rng).expect("set"),
        )),
        1 => Pred::Test(FieldMatch::TpSrc(rng.gen_range(1024..65000))),
        2 => {
            // A random /8 source block.
            let octet = rng.gen_range(1u8..224);
            Pred::Test(FieldMatch::NwSrc(Prefix::new(
                sdx_net::Ipv4Addr::new(octet, 0, 0, 0),
                8,
            )))
        }
        _ => Pred::Test(FieldMatch::NwProto(if rng.gen_bool(0.5) {
            sdx_net::packet::IpProto::Udp
        } else {
            sdx_net::packet::IpProto::Tcp
        })),
    }
}

/// An inbound policy splitting matched traffic to the participant's ports.
fn inbound_policy(rng: &mut StdRng, owner: ParticipantId, nports: u8, clauses: usize) -> Policy {
    let mut pol = Policy::drop();
    for _ in 0..clauses.max(1) {
        let port_idx = rng.gen_range(1..=nports);
        let clause =
            Policy::filter(random_field(rng)) >> Policy::fwd(PortId::Phys(owner, port_idx));
        pol = pol + clause;
    }
    pol
}

/// Installs the §6.1 policy mix onto `ixp`'s participants (in place).
/// Returns the number of participants that received policies.
pub fn assign_policies(ixp: &mut SyntheticIxp, params: &PolicyWorkloadParams) -> usize {
    let mut rng = StdRng::seed_from_u64(params.seed);

    let eyeballs = ixp.by_class(ParticipantClass::Eyeball);
    let transits = ixp.by_class(ParticipantClass::Transit);
    let contents = ixp.by_class(ParticipantClass::Content);

    let top = |v: &[ParticipantId], frac: f64| -> Vec<ParticipantId> {
        let n = ((v.len() as f64 * frac).ceil() as usize)
            .min(v.len())
            .max(1);
        v[..n].to_vec()
    };
    let policy_eyeballs = top(&eyeballs, params.eyeball_policy_fraction);
    let policy_transits = top(&transits, params.transit_policy_fraction);
    // Content: a *random* 5%, per the paper.
    let mut shuffled = contents.clone();
    shuffled.shuffle(&mut rng);
    let n_content = ((contents.len() as f64 * params.content_policy_fraction).ceil() as usize)
        .min(contents.len())
        .max(1);
    let policy_contents: Vec<ParticipantId> = shuffled[..n_content].to_vec();

    // Destination blocks for prefix-group policies. §6.1: transit policies
    // "match on destination prefix group plus one additional header
    // field". A prefix group is an *aligned block* of consecutive /24s
    // within one origin's announcement range, expressible as a single
    // covering prefix (16 consecutive aligned /24s = one /20) — which is
    // exactly how operators write such policies and what keeps rule
    // counts linear in the number of groups (Figure 7). The
    // `policy_prefixes` knob sets how many /24s these blocks cover in
    // total, i.e. it sweeps the number of prefix groups.
    const BLOCK: usize = 16;
    let n_blocks = params.policy_prefixes / BLOCK;
    let mut blocks: Vec<Prefix> = Vec::with_capacity(n_blocks);
    {
        // Aligned block start indices available per origin range.
        let mut candidates: Vec<usize> = Vec::new();
        let mut start = 0usize;
        for anns in &ixp.announcements {
            let count = anns.len();
            let mut s = start.div_ceil(BLOCK) * BLOCK;
            while s + BLOCK <= start + count {
                candidates.push(s);
                s += BLOCK;
            }
            start += count;
        }
        candidates.shuffle(&mut rng);
        for s in candidates.into_iter().take(n_blocks) {
            // 16 consecutive /24s aligned on a /20 boundary.
            blocks.push(Prefix::new(crate::topology::universe_prefix(s).addr(), 20));
        }
    }

    let top_eyeballs: Vec<ParticipantId> = eyeballs
        .iter()
        .copied()
        .take(10.max(eyeballs.len() / 10))
        .collect();
    let mut touched = 0usize;

    // Content providers: app-specific peering to 3 random top eyeballs +
    // one single-field inbound policy.
    let top_transits: Vec<ParticipantId> = transits
        .iter()
        .copied()
        .take(10.max(transits.len() / 5))
        .collect();
    for &cp in &policy_contents {
        let mut outbound = Policy::drop();
        let mut targets = top_eyeballs.clone();
        targets.retain(|t| *t != cp);
        targets.shuffle(&mut rng);
        // Distinct ports per clause keep the policy unicast (clauses
        // disjoint), as the paper's application-specific peering policies
        // are. Besides direct eyeball peering, content providers also
        // steer some application classes through transit providers
        // ("policies that are intended to balance transit costs", §6.1);
        // transit export sets overlap, which is what produces the rich
        // forwarding-equivalence-class structure of Figure 6.
        for (&t, &port) in targets.iter().take(3).zip(&[80u16, 443, 1935]) {
            outbound = outbound
                + (Policy::match_(FieldMatch::TpDst(port)) >> Policy::fwd(PortId::Virt(t)));
        }
        let mut via_transit = top_transits.clone();
        via_transit.retain(|t| *t != cp);
        via_transit.shuffle(&mut rng);
        for (&t, &port) in via_transit.iter().take(2).zip(&[8080u16, 8443]) {
            outbound = outbound
                + (Policy::match_(FieldMatch::TpDst(port)) >> Policy::fwd(PortId::Virt(t)));
        }
        let idx = ixp
            .participants
            .iter()
            .position(|p| p.id == cp)
            .expect("known id");
        let nports = ixp.participants[idx].ports.len() as u8;
        ixp.participants[idx].outbound = Some(outbound);
        ixp.participants[idx].inbound = Some(inbound_policy(&mut rng, cp, nports, 1));
        touched += 1;
    }

    // Eyeballs: inbound policies for half the content providers.
    for &eb in &policy_eyeballs {
        let idx = ixp
            .participants
            .iter()
            .position(|p| p.id == eb)
            .expect("known id");
        let nports = ixp.participants[idx].ports.len() as u8;
        let clauses = (policy_contents.len() / 2).clamp(1, 5);
        ixp.participants[idx].inbound = Some(inbound_policy(&mut rng, eb, nports, clauses));
        touched += 1;
    }

    // Transit providers: outbound per prefix group for half the top
    // eyeballs (dst prefixes + one extra header field), plus inbound
    // proportional to content providers.
    // Transit providers: destination-block policies balancing where each
    // block's traffic exits ("balance load by tuning the entry point"),
    // split round-robin across the policy-bearing transits. Each clause
    // forwards a block toward one of the block's *announcers* — the BGP
    // consistency transformation would erase a clause pointing anywhere
    // else.
    let announcer_of = |block: Prefix, not: ParticipantId| -> Option<ParticipantId> {
        // Prefer a transit re-announcer (the "alternate entry point"), fall
        // back to the origin.
        for (tid, ps) in &ixp.transit_routes {
            if *tid != not && ps.iter().any(|p| block.covers(*p)) {
                return Some(*tid);
            }
        }
        ixp.participants
            .iter()
            .zip(&ixp.announcements)
            .find(|(cfg, anns)| cfg.id != not && anns.iter().any(|p| block.covers(*p)))
            .map(|(cfg, _)| cfg.id)
    };
    let mut block_clauses: Vec<(usize, Policy)> = Vec::new();
    for (bi, &block) in blocks.iter().enumerate() {
        if policy_transits.is_empty() {
            break;
        }
        let tr = policy_transits[bi % policy_transits.len()];
        let Some(target) = announcer_of(block, tr) else {
            continue;
        };
        let clause = Policy::filter(Pred::Test(FieldMatch::NwDst(block)) & random_field(&mut rng))
            >> Policy::fwd(PortId::Virt(target));
        let idx = ixp
            .participants
            .iter()
            .position(|p| p.id == tr)
            .expect("known id");
        block_clauses.push((idx, clause));
    }
    for (idx, clause) in block_clauses {
        let slot = &mut ixp.participants[idx].outbound;
        *slot = Some(match slot.take() {
            Some(p) => p + clause,
            None => clause,
        });
    }
    for &tr in &policy_transits {
        let idx = ixp
            .participants
            .iter()
            .position(|p| p.id == tr)
            .expect("known id");
        let nports = ixp.participants[idx].ports.len() as u8;
        let clauses = policy_contents.len().clamp(1, 5);
        ixp.participants[idx].inbound = Some(inbound_policy(&mut rng, tr, nports, clauses));
        touched += 1;
    }

    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build, TopologyParams};

    fn small_ixp() -> SyntheticIxp {
        build(&TopologyParams {
            participants: 60,
            prefixes: 1200,
            ..Default::default()
        })
    }

    #[test]
    fn assignment_is_deterministic() {
        let params = PolicyWorkloadParams::default();
        let mut a = small_ixp();
        let mut b = small_ixp();
        assign_policies(&mut a, &params);
        assign_policies(&mut b, &params);
        for (x, y) in a.participants.iter().zip(&b.participants) {
            assert_eq!(x.outbound, y.outbound);
            assert_eq!(x.inbound, y.inbound);
        }
    }

    #[test]
    fn policy_bearing_fractions() {
        let mut ixp = small_ixp();
        let n = assign_policies(&mut ixp, &PolicyWorkloadParams::default());
        assert!(n >= 3, "at least one per class");
        let with_policy = ixp.participants.iter().filter(|p| p.has_policy()).count();
        assert_eq!(with_policy, n);
        // Only a small minority of participants carry policies (§4.3.1's
        // "most policies concern a subset of the participants").
        assert!(with_policy * 4 < ixp.participants.len());
    }

    #[test]
    fn eyeballs_have_no_outbound() {
        let mut ixp = small_ixp();
        assign_policies(&mut ixp, &PolicyWorkloadParams::default());
        for (p, class) in ixp.participants.iter().zip(&ixp.classes) {
            if *class == ParticipantClass::Eyeball {
                assert!(p.outbound.is_none(), "{} has outbound", p.id);
            }
        }
    }

    #[test]
    fn inbound_policies_stay_on_own_switch() {
        let mut ixp = small_ixp();
        assign_policies(&mut ixp, &PolicyWorkloadParams::default());
        for p in &ixp.participants {
            if let Some(inb) = &p.inbound {
                let compiled = sdx_policy::compile(inb);
                for r in compiled.rules() {
                    for a in &r.actions {
                        for m in &a.mods {
                            if let sdx_net::Mod::SetLoc(PortId::Phys(owner, _)) = m {
                                assert_eq!(*owner, p.id);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn transit_policies_reference_pool_prefixes() {
        let mut ixp = small_ixp();
        let params = PolicyWorkloadParams {
            policy_prefixes: 50,
            ..Default::default()
        };
        assign_policies(&mut ixp, &params);
        // At least one transit outbound policy exists and matches on dstip.
        let any_dst = ixp
            .participants
            .iter()
            .filter_map(|p| p.outbound.as_ref())
            .any(|pol| format!("{pol:?}").contains("NwDst"));
        assert!(any_dst);
    }

    #[test]
    fn workload_compiles_through_the_sdx_pipeline() {
        let mut ixp = small_ixp();
        assign_policies(
            &mut ixp,
            &PolicyWorkloadParams {
                policy_prefixes: 100,
                ..Default::default()
            },
        );
        let rs = ixp.route_server();
        let mut compiler = sdx_core::compiler::SdxCompiler::new();
        for p in &ixp.participants {
            compiler.upsert_participant(p.clone());
        }
        let mut vnh = sdx_core::vnh::VnhAllocator::default();
        let report = compiler.compile_all(&rs, &mut vnh).expect("compiles");
        assert!(report.stats.group_count > 0);
        assert!(report.stats.forwarding_rules > 0);
    }
}
