//! # sdx-ixp — IXP emulation: datasets, workloads, traces, traffic
//!
//! The paper's evaluation (§6) runs the SDX controller against workloads
//! derived from the three largest IXPs (AMS-IX, DE-CIX, LINX) and RIPE RIS
//! BGP update traces. Those datasets are not redistributable, but the
//! paper publishes every statistic its experiments depend on — Table 1's
//! volumes and §4.3.2's burst distributions — so this crate regenerates
//! equivalent synthetic inputs, calibrated to those published numbers:
//!
//! * [`dataset`] — the Table 1 descriptors as compiled-in constants.
//! * [`topology`] — participant populations with the paper's announced-
//!   prefix skew ("1% of ASes announce more than 50% of the prefixes").
//! * [`policy_workload`] — the §6.1 policy-assignment model: eyeball /
//!   transit / content classes, the top-15%/5%/5% rule, per-class inbound
//!   and outbound policy synthesis.
//! * [`updates`] — bursty BGP update traces matching §4.3.2's measured
//!   inter-arrival and burst-size quantiles, with session-reset injection
//!   (Table 1 discards reset-caused churn; so do we, measurably).
//! * [`traffic`] — the deterministic discrete-event traffic simulator that
//!   regenerates the Figure 5 deployment experiments.
//! * [`testkit`] — the shared fixture builders (Figure 1, the
//!   three-party isolation exchange, the multistage-FIB sweep, the
//!   50-participant workload) used by the integration tests and the
//!   `sdx-oracle` differential harness.
//!
//! Everything is seeded: the same parameters and seed reproduce the same
//! IXP, trace, and traffic, byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod policy_workload;
pub mod testkit;
pub mod topology;
pub mod traffic;
pub mod updates;

pub use dataset::{IxpDataset, AMS_IX, DE_CIX, LINX};
pub use policy_workload::{assign_policies, PolicyWorkloadParams};
pub use topology::{SyntheticIxp, TopologyParams};
pub use traffic::{Event, Flow, TimeSeries, TrafficSim};
pub use updates::{TraceParams, TraceStats, UpdateBurst};
