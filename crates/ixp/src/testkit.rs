//! Shared test fixtures: the exchanges every integration test (and the
//! differential oracle) builds.
//!
//! Before this module existed, the Figure 1 exchange was copy-pasted —
//! with small drifts — across `tests/figure1.rs`, `tests/isolation.rs`,
//! `tests/multistage_fib.rs`, and `tests/parallel_compile.rs`. The
//! builders here are the single source of truth; tests layer their own
//! policies or deployments on top.
//!
//! Everything returns *undeployed* state so callers can mutate policies
//! or export filters before `deploy()` / `compile_all()`.

use std::collections::BTreeMap;

use sdx_bgp::route_server::{ExportPolicy, RouteServer};
use sdx_core::compiler::SdxCompiler;
use sdx_core::controller::SdxController;
use sdx_core::participant::ParticipantConfig;
use sdx_core::vswitch;
use sdx_net::{prefix, ParticipantId, Prefix};
use sdx_policy::{parse_policy, Policy};

use crate::policy_workload::{assign_policies, PolicyWorkloadParams};
use crate::topology::{build, TopologyParams};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// The participant-name book for the Figure 1 exchange: A (1 port),
/// B (2 ports), C (1 port), D (1 port).
fn figure1_book() -> BTreeMap<ParticipantId, Vec<u8>> {
    [
        (pid(1), vec![1]),
        (pid(2), vec![1, 2]),
        (pid(3), vec![1]),
        (pid(4), vec![1]),
    ]
    .into()
}

/// AS A's application-specific peering policy from Figure 1: web via B,
/// HTTPS via C.
pub fn figure1_outbound_a() -> Policy {
    parse_policy(
        "(match(dstport = 80) >> fwd(B)) + (match(dstport = 443) >> fwd(C))",
        &vswitch::resolver_for(pid(1), &figure1_book()),
    )
    .expect("A's policy")
}

/// AS B's inbound traffic-engineering policy from Figure 1: low half of
/// the source space on B1, high half on B2.
pub fn figure1_inbound_b() -> Policy {
    parse_policy(
        "(match(srcip = {0.0.0.0/1}) >> fwd(B1)) + (match(srcip = {128.0.0.0/1}) >> fwd(B2))",
        &vswitch::resolver_for(pid(2), &figure1_book()),
    )
    .expect("B's policy")
}

/// The paper's Figure 1 exchange, controller-driven and ready to
/// `deploy()`: A runs the application-specific peering policy, B (two
/// ports) runs the inbound TE policy and hides p4 (40/8) from A, C and D
/// are policy-free, and the Figure 1b RIB is loaded (p1,p2 via B long /
/// C short; p3 only via B; p4 via B hidden and C; p5 only via D).
pub fn figure1_controller() -> SdxController {
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);

    let mut ctl = SdxController::new();
    ctl.add_participant(
        a.clone().with_outbound(figure1_outbound_a()),
        ExportPolicy::allow_all(),
    );
    let mut b_export = ExportPolicy::allow_all();
    b_export.deny(pid(1), prefix("40.0.0.0/8")); // B hides p4 from A
    ctl.add_participant(b.clone().with_inbound(figure1_inbound_b()), b_export);
    ctl.add_participant(c.clone(), ExportPolicy::allow_all());
    ctl.add_participant(d.clone(), ExportPolicy::allow_all());
    load_figure1_rib(&mut ctl.rs, &b, &c, &d);
    ctl
}

/// The Figure 1 exchange as a bare compiler + route server, for tests
/// that drive `compile_all` directly (pipeline determinism, the oracle).
/// Same topology, policies, exports, and RIB as
/// [`figure1_controller`].
pub fn figure1_compiler() -> (SdxCompiler, RouteServer) {
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);

    let mut rs = RouteServer::new();
    rs.add_peer(a.route_source(), ExportPolicy::allow_all());
    let mut b_export = ExportPolicy::allow_all();
    b_export.deny(pid(1), prefix("40.0.0.0/8"));
    rs.add_peer(b.route_source(), b_export);
    rs.add_peer(c.route_source(), ExportPolicy::allow_all());
    rs.add_peer(d.route_source(), ExportPolicy::allow_all());
    load_figure1_rib(&mut rs, &b, &c, &d);

    let mut compiler = SdxCompiler::new();
    compiler.upsert_participant(a.with_outbound(figure1_outbound_a()));
    compiler.upsert_participant(b.with_inbound(figure1_inbound_b()));
    compiler.upsert_participant(c);
    compiler.upsert_participant(d);
    (compiler, rs)
}

fn load_figure1_rib(
    rs: &mut RouteServer,
    b: &ParticipantConfig,
    c: &ParticipantConfig,
    d: &ParticipantConfig,
) {
    for (pfx, path) in [
        ("10.0.0.0/8", vec![65002, 100, 200]),
        ("20.0.0.0/8", vec![65002, 100, 200]),
        ("30.0.0.0/8", vec![65002, 300]),
        ("40.0.0.0/8", vec![65002, 400]),
    ] {
        rs.process_update(pid(2), &b.announce([prefix(pfx)], &path));
    }
    for (pfx, path) in [
        ("10.0.0.0/8", vec![65003, 200]),
        ("20.0.0.0/8", vec![65003, 200]),
        ("40.0.0.0/8", vec![65003, 400]),
    ] {
        rs.process_update(pid(3), &c.announce([prefix(pfx)], &path));
    }
    rs.process_update(pid(4), &d.announce([prefix("50.0.0.0/8")], &[65004, 500]));
}

/// A minimal three-party exchange (A, B, C — one port each, all exports
/// open, one /8 announced apiece: 11/8, 22/8, 33/8). The isolation tests
/// install adversarial policies on top of this before deploying.
pub fn three_party_exchange() -> SdxController {
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1);
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c.clone(), ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(1), &a.announce([prefix("11.0.0.0/8")], &[65001]));
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("22.0.0.0/8")], &[65002]));
    ctl.rs
        .process_update(pid(3), &c.announce([prefix("33.0.0.0/8")], &[65003]));
    ctl
}

/// The multistage-FIB exchange of §4.2 / Figure 2: a viewer (A) with a
/// port-80 policy toward B; B and C both announce the returned 64
/// prefixes with identical behaviour, C on the shorter (best) path.
/// Undeployed; the test decides when to `deploy()`.
pub fn multistage_exchange() -> (SdxController, Vec<Prefix>) {
    let a = ParticipantConfig::new(1, 65001, 1).with_outbound(
        parse_policy(
            "match(dstport = 80) >> fwd(B)",
            &vswitch::resolver_for(
                pid(1),
                &[(pid(1), vec![1]), (pid(2), vec![1]), (pid(3), vec![1])].into(),
            ),
        )
        .expect("A's policy"),
    );
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1);
    let mut ctl = SdxController::new();
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c.clone(), ExportPolicy::allow_all());

    let prefixes: Vec<Prefix> = (0..64u32)
        .map(|i| prefix(&format!("10.{i}.0.0/16")))
        .collect();
    ctl.rs.process_update(
        pid(2),
        &b.announce(prefixes.iter().copied(), &[65002, 7, 9]),
    );
    ctl.rs
        .process_update(pid(3), &c.announce(prefixes.iter().copied(), &[65003, 9]));
    (ctl, prefixes)
}

/// The 50-participant synthetic workload used by the pipeline-determinism
/// suite and the oracle: `TopologyParams { participants: 50, prefixes:
/// 3000, seed: 17 }` with the §6.1 policy mix over 800 policy prefixes
/// (seed 18), loaded into a bare compiler + route server.
pub fn ixp50() -> (SdxCompiler, RouteServer) {
    let mut ixp = build(&TopologyParams {
        participants: 50,
        prefixes: 3000,
        seed: 17,
        ..Default::default()
    });
    assign_policies(
        &mut ixp,
        &PolicyWorkloadParams {
            policy_prefixes: 800,
            seed: 18,
            ..Default::default()
        },
    );
    let rs = ixp.route_server();
    let mut compiler = SdxCompiler::new();
    for p in &ixp.participants {
        compiler.upsert_participant(p.clone());
    }
    (compiler, rs)
}
