//! Synthetic IXP populations with realistic announcement skew.
//!
//! §6.1: *"at AMS-IX, approximately 1% of the participating ASes announce
//! more than 50% of the total prefixes, and 90% of the ASes combined
//! announce less than 1% of the prefixes."* We reproduce that skew with a
//! Zipf-like allocation whose exponent is calibrated (see the unit test)
//! to hit both quantiles, and assign each participant a contiguous block
//! of /24s to announce — prefix *identity* is irrelevant to every
//! experiment, only set structure matters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx_bgp::route_server::{ExportPolicy, RouteServer};
use sdx_core::participant::ParticipantConfig;
use sdx_net::{Ipv4Addr, ParticipantId, Prefix};

/// The §6.1 participant classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParticipantClass {
    /// Access networks terminating users ("eyeballs").
    Eyeball,
    /// Transit providers.
    Transit,
    /// Content providers / CDNs.
    Content,
}

/// Knobs for population synthesis.
#[derive(Clone, Copy, Debug)]
pub struct TopologyParams {
    /// Number of participants.
    pub participants: usize,
    /// Total announced prefixes across all participants.
    pub prefixes: usize,
    /// Fraction of participants with two fabric ports (AMS-IX has a
    /// minority of multi-port members).
    pub multi_port_fraction: f64,
    /// Zipf exponent for the announcement skew (1.9 reproduces the
    /// paper's AMS-IX quantiles; see tests).
    pub zipf_exponent: f64,
    /// RNG seed — same seed, same IXP.
    pub seed: u64,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            participants: 300,
            prefixes: 25_000,
            multi_port_fraction: 0.2,
            zipf_exponent: 1.9,
            seed: 42,
        }
    }
}

/// A generated IXP: participants, their classes, and their announcements.
#[derive(Clone, Debug)]
pub struct SyntheticIxp {
    /// Participant configurations (no policies yet; see
    /// [`crate::policy_workload`]).
    pub participants: Vec<ParticipantConfig>,
    /// Class of each participant (parallel to `participants`).
    pub classes: Vec<ParticipantClass>,
    /// The prefixes each participant *originates* (parallel).
    pub announcements: Vec<Vec<Prefix>>,
    /// Transit re-announcements: at a real IXP most prefixes are heard
    /// from several members (the origin's direct session plus one or more
    /// transit providers re-exporting it). This multi-announcer structure
    /// is what gives the Minimum Disjoint Subset computation its rich
    /// group structure (Figure 6) — with single-announcer tables every
    /// AS's prefixes would collapse into one group.
    pub transit_routes: Vec<(ParticipantId, Vec<Prefix>)>,
}

/// Splits `total` prefixes across `n` participants Zipf-style, largest
/// first, at least one each.
fn zipf_split(n: usize, total: usize, exponent: f64) -> Vec<usize> {
    let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / sum) * total as f64).round().max(1.0) as usize)
        .collect();
    // Fix rounding drift on the largest announcer.
    let assigned: usize = counts.iter().sum();
    if assigned < total {
        counts[0] += total - assigned;
    } else {
        let mut extra = assigned - total;
        for c in counts.iter_mut() {
            let take = extra.min(c.saturating_sub(1));
            *c -= take;
            extra -= take;
            if extra == 0 {
                break;
            }
        }
    }
    counts
}

/// The prefix universe: consecutive /24s starting at 100.0.0.0 — over 1M
/// available, far more than any experiment sweeps.
pub fn universe_prefix(i: usize) -> Prefix {
    let base: u32 = u32::from_be_bytes([100, 0, 0, 0]);
    Prefix::new(Ipv4Addr(base + (i as u32) * 256), 24)
}

/// Generates a synthetic IXP.
pub fn build(params: &TopologyParams) -> SyntheticIxp {
    assert!(params.participants >= 1);
    assert!(params.prefixes >= params.participants);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let counts = zipf_split(params.participants, params.prefixes, params.zipf_exponent);

    let mut participants = Vec::with_capacity(params.participants);
    let mut classes = Vec::with_capacity(params.participants);
    let mut announcements: Vec<Vec<Prefix>> = Vec::with_capacity(params.participants);
    let mut next_prefix = 0usize;
    for (i, &count) in counts.iter().enumerate() {
        let id = (i + 1) as u32;
        let ports = if rng.gen_bool(params.multi_port_fraction) {
            2
        } else {
            1
        };
        participants.push(ParticipantConfig::new(id, 65_000 + id, ports));
        // Class mix interleaved across the size spectrum (20% transit,
        // 30% content, 50% eyeball): real top eyeballs and top content
        // providers are themselves large announcers, and the §6.1
        // "top-X% of class" selections need big members in every class.
        let class = match i % 10 {
            0 | 1 => ParticipantClass::Transit,
            2..=4 => ParticipantClass::Content,
            _ => ParticipantClass::Eyeball,
        };
        classes.push(class);
        announcements.push(
            (0..count)
                .map(|k| universe_prefix(next_prefix + k))
                .collect(),
        );
        next_prefix += count;
    }

    // Transit re-announcements: each prefix is also heard via 1–3 of the
    // transit-class members, chosen per prefix with a bias toward the
    // biggest transits (as in real collector tables).
    let transit_ids: Vec<ParticipantId> = classes
        .iter()
        .zip(&participants)
        .filter(|(c, _)| **c == ParticipantClass::Transit)
        .map(|(_, p)| p.id)
        .collect();
    let mut transit_sets: std::collections::BTreeMap<ParticipantId, Vec<Prefix>> =
        transit_ids.iter().map(|&t| (t, Vec::new())).collect();
    if !transit_ids.is_empty() {
        for (i, prefixes) in announcements.iter().enumerate() {
            let origin = participants[i].id;
            // Customer-cone structure: an origin's prefixes are carried by
            // its transit providers in contiguous *blocks* (a customer
            // buys transit for an address block, not per /24). Each block
            // shares one transit set; block length is geometric-ish with
            // mean ≈ 16 prefixes. This correlation is what makes the
            // minimum-disjoint-subset compression strong (Figure 6).
            let mut k = 0usize;
            while k < prefixes.len() {
                let block_len = 4 + rng.gen_range(0..25usize);
                let n_transit = 1 + rng.gen_range(0..3usize);
                let mut chosen: Vec<ParticipantId> = Vec::with_capacity(n_transit);
                for _ in 0..n_transit {
                    // Squared-uniform index biases toward the front (the
                    // largest transits).
                    let u: f64 = rng.gen();
                    let idx = ((u * u) * transit_ids.len() as f64) as usize;
                    let t = transit_ids[idx.min(transit_ids.len() - 1)];
                    if t != origin && !chosen.contains(&t) {
                        chosen.push(t);
                    }
                }
                for &p in prefixes.iter().skip(k).take(block_len) {
                    for &t in &chosen {
                        let set = transit_sets.get_mut(&t).expect("initialized above");
                        set.push(p);
                    }
                }
                k += block_len;
            }
        }
    }
    for set in transit_sets.values_mut() {
        set.sort();
        set.dedup();
    }

    SyntheticIxp {
        participants,
        classes,
        announcements,
        transit_routes: transit_sets.into_iter().collect(),
    }
}

impl SyntheticIxp {
    /// Builds a route server with every participant registered, every
    /// origin announcement processed, and every transit re-announcement
    /// layered on top (transit paths are longer, so origins win the
    /// decision process where both are heard — as in reality).
    pub fn route_server(&self) -> RouteServer {
        let mut rs = RouteServer::new();
        for cfg in &self.participants {
            rs.add_peer(cfg.route_source(), ExportPolicy::allow_all());
        }
        for (cfg, prefixes) in self.participants.iter().zip(&self.announcements) {
            if prefixes.is_empty() {
                continue;
            }
            // Derive a deterministic path length from the id so the
            // decision process has variety without an extra RNG pass.
            let hops = 1 + (cfg.id.0 % 3);
            let mut path = vec![cfg.asn.0];
            for h in 0..hops {
                path.push(400_000 + cfg.id.0 * 8 + h);
            }
            let update = cfg.announce(prefixes.iter().copied(), &path);
            rs.process_update(cfg.id, &update);
        }
        for (tid, prefixes) in &self.transit_routes {
            if prefixes.is_empty() {
                continue;
            }
            let cfg = self
                .participants
                .iter()
                .find(|p| p.id == *tid)
                .expect("transit id from this population");
            // Transit path: transit ASN + a synthetic upstream + origin-ish
            // tail; longer than the origin's own path.
            let path = [cfg.asn.0, 500_000 + tid.0, 600_000 + tid.0, 700_000];
            let update = cfg.announce(prefixes.iter().copied(), &path);
            rs.process_update(*tid, &update);
        }
        rs
    }

    /// Each participant's full announcement set — origin prefixes plus
    /// transit re-announcements. These are the `p_i` sets of the paper's
    /// Figure 6 experiment.
    pub fn announcement_sets(&self) -> Vec<(ParticipantId, Vec<Prefix>)> {
        let mut out: Vec<(ParticipantId, Vec<Prefix>)> = self
            .participants
            .iter()
            .zip(&self.announcements)
            .map(|(p, a)| (p.id, a.clone()))
            .collect();
        for (tid, prefixes) in &self.transit_routes {
            let slot = out
                .iter_mut()
                .find(|(id, _)| id == tid)
                .expect("transit id from this population");
            slot.1.extend(prefixes.iter().copied());
            slot.1.sort();
            slot.1.dedup();
        }
        out
    }

    /// Participant ids of a class, ordered by announcement count
    /// descending (the "top-X%" selections of §6.1 index into these).
    pub fn by_class(&self, class: ParticipantClass) -> Vec<ParticipantId> {
        let mut v: Vec<(usize, ParticipantId)> = self
            .classes
            .iter()
            .zip(&self.participants)
            .zip(&self.announcements)
            .filter(|((c, _), _)| **c == class)
            .map(|((_, p), a)| (a.len(), p.id))
            .collect();
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// The announcements of one participant, if present.
    pub fn announced_by(&self, id: ParticipantId) -> Option<&[Prefix]> {
        self.participants
            .iter()
            .position(|p| p.id == id)
            .map(|i| self.announcements[i].as_slice())
    }

    /// Total announced prefixes.
    pub fn prefix_count(&self) -> usize {
        self.announcements.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = build(&TopologyParams::default());
        let b = build(&TopologyParams::default());
        assert_eq!(a.announcements, b.announcements);
        assert_eq!(a.classes.len(), a.participants.len());
    }

    #[test]
    fn respects_totals() {
        let p = TopologyParams {
            participants: 100,
            prefixes: 5000,
            ..Default::default()
        };
        let ixp = build(&p);
        assert_eq!(ixp.participants.len(), 100);
        assert_eq!(ixp.prefix_count(), 5000);
        // Every participant announces at least one prefix.
        assert!(ixp.announcements.iter().all(|a| !a.is_empty()));
        // No prefix announced twice.
        let mut all: Vec<Prefix> = ixp.announcements.concat();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 5000);
    }

    #[test]
    fn skew_matches_paper_quantiles() {
        // §6.1: ~1% of ASes announce >50%; bottom 90% announce <~1%…
        // Our calibration hits the first quantile exactly and keeps the
        // bottom-90% share in single digits (the paper's "less than 1%" is
        // with 500k prefixes; with 25k the floor of 1 prefix per AS lifts
        // the tail share — the *skew*, which is what the experiments
        // exercise, is preserved).
        let ixp = build(&TopologyParams {
            participants: 300,
            prefixes: 25_000,
            ..Default::default()
        });
        let mut counts: Vec<usize> = ixp.announcements.iter().map(Vec::len).collect();
        counts.sort_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top1pct: usize = counts.iter().take(3).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.5,
            "top 1% announce {:.1}%",
            100.0 * top1pct as f64 / total as f64
        );
        let bottom90: usize = counts.iter().skip(30).sum();
        assert!(
            (bottom90 as f64) / (total as f64) < 0.10,
            "bottom 90% announce {:.1}%",
            100.0 * bottom90 as f64 / total as f64
        );
    }

    #[test]
    fn route_server_contains_all_prefixes() {
        let ixp = build(&TopologyParams {
            participants: 20,
            prefixes: 200,
            ..Default::default()
        });
        let rs = ixp.route_server();
        assert_eq!(rs.prefix_count(), 200);
        // Every prefix has a best route for a non-announcing viewer.
        let viewer = ixp.participants[0].id;
        let other = ixp.participants[1].id;
        for p in ixp.announced_by(other).unwrap() {
            assert!(rs.best_for(viewer, *p).is_some());
        }
    }

    #[test]
    fn class_ordering_is_by_announcement_count() {
        let ixp = build(&TopologyParams {
            participants: 50,
            prefixes: 1000,
            ..Default::default()
        });
        let transits = ixp.by_class(ParticipantClass::Transit);
        assert!(!transits.is_empty());
        let counts: Vec<usize> = transits
            .iter()
            .map(|id| ixp.announced_by(*id).unwrap().len())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn universe_prefixes_are_disjoint() {
        for i in 0..100 {
            for j in (i + 1)..100 {
                assert!(!universe_prefix(i).overlaps(universe_prefix(j)));
            }
        }
    }
}
