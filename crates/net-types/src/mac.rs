//! Ethernet MAC addresses, including the SDX virtual-MAC (VMAC) tag scheme.
//!
//! §4.2 of the paper: the SDX encodes the forwarding-equivalence class of a
//! packet in its *destination MAC address*. The participant's border router
//! writes that MAC for free (it is the ARP resolution of the BGP next hop),
//! and the fabric then matches on the VMAC instead of on destination IP
//! prefixes. We reserve a locally-administered OUI for VMACs so they can
//! never collide with participants' physical router MACs.

use core::fmt;
use core::str::FromStr;

/// A 48-bit Ethernet address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Prefix byte for SDX virtual MACs: locally administered
    /// (bit 1 of the first octet set), unicast.
    pub const VMAC_OUI: u8 = 0x0a;

    /// Builds a physical (router-facing) MAC from a small integer id.
    /// Used by test fixtures and the IXP emulator to stamp out router MACs.
    pub const fn physical(id: u32) -> MacAddr {
        MacAddr([
            0x02,
            0x00,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// Builds the VMAC that tags forwarding-equivalence class `fec`.
    ///
    /// Layout: `0a:00:` followed by the 32-bit FEC identifier. The paper's
    /// prototype similarly devotes the low bits of the VMAC to the FEC id.
    pub const fn vmac(fec: u32) -> MacAddr {
        MacAddr([
            Self::VMAC_OUI,
            0x00,
            (fec >> 24) as u8,
            (fec >> 16) as u8,
            (fec >> 8) as u8,
            fec as u8,
        ])
    }

    /// If this address is an SDX VMAC, returns the FEC id it encodes.
    pub fn fec_id(self) -> Option<u32> {
        if self.0[0] == Self::VMAC_OUI && self.0[1] == 0x00 {
            Some(u32::from_be_bytes([
                self.0[2], self.0[3], self.0[4], self.0[5],
            ]))
        } else {
            None
        }
    }

    /// True if this is an SDX virtual MAC (FEC tag).
    pub fn is_vmac(self) -> bool {
        self.fec_id().is_some()
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when a MAC address fails to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacParseError;

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed MAC address")
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for b in out.iter_mut() {
            let p = parts.next().ok_or(MacParseError)?;
            if p.len() != 2 {
                return Err(MacParseError);
            }
            *b = u8::from_str_radix(p, 16).map_err(|_| MacParseError)?;
        }
        if parts.next().is_some() {
            return Err(MacParseError);
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let m: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
        assert_eq!(m, MacAddr::physical(42));
        assert_eq!(m.to_string(), "02:00:00:00:00:2a");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("02:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:2a:ff".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:zz".parse::<MacAddr>().is_err());
        assert!("0200:00:00:00:2a".parse::<MacAddr>().is_err());
    }

    #[test]
    fn vmac_encodes_fec_id() {
        for fec in [0u32, 1, 255, 65_536, u32::MAX] {
            let v = MacAddr::vmac(fec);
            assert!(v.is_vmac());
            assert_eq!(v.fec_id(), Some(fec));
        }
    }

    #[test]
    fn physical_macs_are_not_vmacs() {
        assert!(!MacAddr::physical(7).is_vmac());
        assert_eq!(MacAddr::physical(7).fec_id(), None);
        assert!(!MacAddr::BROADCAST.is_vmac());
    }

    #[test]
    fn vmac_space_is_disjoint_from_physical_space() {
        // Sampled check: no small physical id collides with any small FEC id.
        for i in 0..1000u32 {
            assert_ne!(MacAddr::physical(i), MacAddr::vmac(i));
        }
    }

    #[test]
    fn broadcast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::ZERO.is_broadcast());
    }
}
