//! IPv4 addresses and CIDR prefixes.
//!
//! [`Prefix`] is the unit the whole SDX pipeline is keyed on: BGP announces
//! prefixes, policies filter on prefixes, and forwarding-equivalence classes
//! are sets of prefixes. The operations here (containment, overlap,
//! canonicalization) must therefore be exact and cheap.

use core::fmt;
use core::str::FromStr;

/// An IPv4 address, stored as a host-order `u32`.
///
/// A thin newtype rather than `std::net::Ipv4Addr` so that arithmetic used
/// by the trie and workload generators (`+ offset`, bit tests) stays explicit
/// and allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The all-zero address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Returns bit `i` of the address, counting from the most significant
    /// bit (bit 0 is the top bit of the first octet).
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub fn bit(self, i: u8) -> bool {
        assert!(i < 32, "bit index out of range: {i}");
        self.0 & (1 << (31 - i)) != 0
    }

    /// Saturating addition on the underlying integer; handy for workload
    /// generators that stamp out consecutive address blocks.
    pub fn saturating_add(self, n: u32) -> Ipv4Addr {
        Ipv4Addr(self.0.saturating_add(n))
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(o: [u8; 4]) -> Self {
        Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

/// Error produced when parsing an address or prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// An octet was missing, not a number, or out of range.
    BadAddress,
    /// The `/len` part was missing, not a number, or greater than 32.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::BadAddress => write!(f, "malformed IPv4 address"),
            PrefixParseError::BadLength => write!(f, "malformed prefix length"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Addr {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for o in octets.iter_mut() {
            let p = parts.next().ok_or(PrefixParseError::BadAddress)?;
            *o = p.parse().map_err(|_| PrefixParseError::BadAddress)?;
        }
        if parts.next().is_some() {
            return Err(PrefixParseError::BadAddress);
        }
        Ok(Ipv4Addr::from(octets))
    }
}

/// An IPv4 CIDR prefix, always stored in canonical form (host bits zeroed).
///
/// The canonical representation makes `Eq`/`Hash` meaningful: two prefixes
/// are equal iff they denote the same address set.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`, which contains every address.
    pub const DEFAULT_ROUTE: Prefix = Prefix {
        addr: Ipv4Addr(0),
        len: 0,
    };

    /// Creates a prefix, masking off any host bits in `addr`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range: {len}");
        Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask_bits(len)),
            len,
        }
    }

    /// A /32 prefix covering exactly one address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix { addr, len: 32 }
    }

    /// The network address (host bits are always zero).
    pub const fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits. Not a container length: a /0 covers
    /// everything, so there is deliberately no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for the default route `0.0.0.0/0`.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The netmask as a `u32` with the top `len` bits set.
    fn mask_bits(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The netmask of this prefix as an address (e.g. `255.255.0.0`).
    pub fn netmask(self) -> Ipv4Addr {
        Ipv4Addr(Self::mask_bits(self.len))
    }

    /// Number of addresses covered (saturates at `u32::MAX` for /0).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// Does this prefix contain the given address?
    pub fn contains(self, a: Ipv4Addr) -> bool {
        a.0 & Self::mask_bits(self.len) == self.addr.0
    }

    /// Is `other` a (non-strict) subset of `self`?
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address? (One must cover the other.)
    pub fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The intersection of two prefixes: the more specific one if they
    /// overlap, `None` otherwise. (Prefix sets are laminar, so the
    /// intersection is always itself a prefix or empty.)
    pub fn intersect(self, other: Prefix) -> Option<Prefix> {
        if self.covers(other) {
            Some(other)
        } else if other.covers(self) {
            Some(self)
        } else {
            None
        }
    }

    /// Splits the prefix into its two children (`len + 1`), or `None` for a
    /// host route.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Prefix {
            addr: Ipv4Addr(self.addr.0 | (1 << (31 - self.len))),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The immediate parent prefix (`len - 1`), or `None` for the default
    /// route.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }

    /// The first address in the prefix (== network address).
    pub fn first(self) -> Ipv4Addr {
        self.addr
    }

    /// The last address in the prefix (broadcast address for subnets).
    pub fn last(self) -> Ipv4Addr {
        Ipv4Addr(self.addr.0 | !Self::mask_bits(self.len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = match s.split_once('/') {
            Some((a, l)) => (
                a.parse::<Ipv4Addr>()?,
                l.parse::<u8>().map_err(|_| PrefixParseError::BadLength)?,
            ),
            None => (s.parse::<Ipv4Addr>()?, 32),
        };
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Prefix::new(addr, len))
    }
}

/// Orders prefixes by (address, length): the order a routing table prints in.
impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.addr, self.len).cmp(&(other.addr, other.len))
    }
}

/// Convenience macro-free constructor used pervasively in tests:
/// `prefix("10.0.0.0/8")`.
///
/// # Panics
/// Panics on malformed input; intended for literals only.
pub fn prefix(s: &str) -> Prefix {
    s.parse()
        .unwrap_or_else(|e| panic!("bad prefix {s:?}: {e}"))
}

/// Literal-only address constructor, mirroring [`prefix`].
///
/// # Panics
/// Panics on malformed input; intended for literals only.
pub fn ip(s: &str) -> Ipv4Addr {
    s.parse()
        .unwrap_or_else(|e| panic!("bad address {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrip() {
        let a = ip("192.168.1.42");
        assert_eq!(a.octets(), [192, 168, 1, 42]);
        assert_eq!(a.to_string(), "192.168.1.42");
    }

    #[test]
    fn address_bit_indexing() {
        let a = ip("128.0.0.1");
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(31));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Prefix::new(ip("10.1.2.3"), 8);
        assert_eq!(p.addr(), ip("10.0.0.0"));
        assert_eq!(p, prefix("10.0.0.0/8"));
    }

    #[test]
    fn prefix_without_slash_is_host_route() {
        assert_eq!(prefix("1.2.3.4"), Prefix::host(ip("1.2.3.4")));
    }

    #[test]
    fn containment_and_covers() {
        let p = prefix("10.0.0.0/8");
        assert!(p.contains(ip("10.255.0.1")));
        assert!(!p.contains(ip("11.0.0.0")));
        assert!(p.covers(prefix("10.2.0.0/16")));
        assert!(!prefix("10.2.0.0/16").covers(p));
        assert!(p.covers(p));
    }

    #[test]
    fn overlap_is_symmetric_and_laminar() {
        let a = prefix("10.0.0.0/8");
        let b = prefix("10.64.0.0/10");
        let c = prefix("11.0.0.0/8");
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersect(b), Some(b));
        assert_eq!(b.intersect(a), Some(b));
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn children_partition_parent() {
        let p = prefix("10.0.0.0/8");
        let (l, r) = p.children().unwrap();
        assert_eq!(l, prefix("10.0.0.0/9"));
        assert_eq!(r, prefix("10.128.0.0/9"));
        assert_eq!(l.parent(), Some(p));
        assert_eq!(r.parent(), Some(p));
        assert_eq!(l.size() + r.size(), p.size());
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::DEFAULT_ROUTE;
        assert!(d.contains(ip("0.0.0.0")));
        assert!(d.contains(ip("255.255.255.255")));
        assert!(d.parent().is_none());
        assert!(d.is_default());
    }

    #[test]
    fn host_route_has_no_children() {
        assert!(Prefix::host(ip("1.1.1.1")).children().is_none());
        assert_eq!(Prefix::host(ip("1.1.1.1")).size(), 1);
    }

    #[test]
    fn first_last_and_netmask() {
        let p = prefix("192.168.4.0/22");
        assert_eq!(p.first(), ip("192.168.4.0"));
        assert_eq!(p.last(), ip("192.168.7.255"));
        assert_eq!(p.netmask(), ip("255.255.252.0"));
    }

    #[test]
    fn ordering_is_routing_table_order() {
        let mut v = vec![
            prefix("10.0.0.0/8"),
            prefix("0.0.0.0/0"),
            prefix("10.0.0.0/16"),
            prefix("9.0.0.0/8"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                prefix("0.0.0.0/0"),
                prefix("9.0.0.0/8"),
                prefix("10.0.0.0/8"),
                prefix("10.0.0.0/16"),
            ]
        );
    }
}
