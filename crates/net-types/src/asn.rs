//! Identifier newtypes: AS numbers, participants, ports, router ids.
//!
//! Everything at an exchange point is named by small integers; newtypes keep
//! them from being mixed up (an `Asn` is not a `PortId`), at zero runtime
//! cost.

use core::fmt;

use crate::ipv4::Ipv4Addr;

/// A BGP Autonomous System number (4-byte ASN per RFC 6793).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An SDX participant. Participants are distinct from ASNs: one organisation
/// could in principle join the exchange with multiple participant ports, and
/// tests often use dense participant ids while carrying realistic ASNs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ParticipantId(pub u32);

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Debug for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A port on the SDX fabric or on a virtual switch.
///
/// Physical ports attach participant border routers to the fabric; virtual
/// ports connect one participant's virtual switch to another's (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortId {
    /// A physical fabric port: `(participant, interface index)` — e.g. the
    /// paper's `A1` is `Phys(A, 1)`.
    Phys(ParticipantId, u8),
    /// A virtual port on a participant's virtual switch leading to a peer's
    /// virtual switch — e.g. the port labelled `B` on AS A's switch.
    Virt(ParticipantId),
}

impl PortId {
    /// The participant that owns the traffic on the far side of this port:
    /// for a physical port, the attached participant; for a virtual port,
    /// the peer participant it leads to.
    pub fn participant(self) -> ParticipantId {
        match self {
            PortId::Phys(p, _) => p,
            PortId::Virt(p) => p,
        }
    }

    /// True if this is a physical (border-router facing) port.
    pub fn is_physical(self) -> bool {
        matches!(self, PortId::Phys(..))
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortId::Phys(p, i) => write!(f, "{p}.{i}"),
            PortId::Virt(p) => write!(f, "v{p}"),
        }
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// BGP router identifier: a 32-bit value conventionally written as an IPv4
/// address. Used as the final tiebreak of the decision process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Derives a router id from an interface address, the common convention.
    pub fn from_addr(a: Ipv4Addr) -> Self {
        RouterId(a.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Ipv4Addr(self.0))
    }
}

impl fmt::Debug for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Asn(43515).to_string(), "AS43515");
        assert_eq!(ParticipantId(3).to_string(), "P3");
        assert_eq!(PortId::Phys(ParticipantId(1), 2).to_string(), "P1.2");
        assert_eq!(PortId::Virt(ParticipantId(1)).to_string(), "vP1");
        assert_eq!(
            RouterId::from_addr(Ipv4Addr::new(10, 0, 0, 1)).to_string(),
            "10.0.0.1"
        );
    }

    #[test]
    fn port_participant_extraction() {
        let a = ParticipantId(1);
        assert_eq!(PortId::Phys(a, 1).participant(), a);
        assert_eq!(PortId::Virt(a).participant(), a);
        assert!(PortId::Phys(a, 1).is_physical());
        assert!(!PortId::Virt(a).is_physical());
    }

    #[test]
    fn ordering_groups_physical_before_virtual() {
        // Ordering itself is arbitrary but must be total & stable for use in
        // BTreeMaps; this pins the derived behaviour.
        let mut v = vec![
            PortId::Virt(ParticipantId(0)),
            PortId::Phys(ParticipantId(1), 0),
            PortId::Phys(ParticipantId(0), 1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                PortId::Phys(ParticipantId(0), 1),
                PortId::Phys(ParticipantId(1), 0),
                PortId::Virt(ParticipantId(0)),
            ]
        );
    }
}
