//! The packet-header model that SDX policies are written against.
//!
//! Pyretic's central object is the *located packet*: a packet together with
//! its current location in the (virtual or physical) topology. A policy maps
//! one located packet to a set of located packets — the set being empty for
//! a drop, a singleton for unicast, larger for multicast.
//!
//! We model exactly the headers the paper's policies touch: Ethernet
//! source/destination, EtherType, IPv4 source/destination, IP protocol, and
//! the transport ports. Payloads are irrelevant to every experiment and are
//! represented only by an opaque length (used by the traffic simulator to
//! account bytes).

use core::fmt;

use crate::asn::PortId;
use crate::ipv4::Ipv4Addr;
use crate::mac::MacAddr;

/// EtherType values the SDX cares about.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EtherType {
    /// IPv4 payload (0x0800).
    Ipv4,
    /// ARP (0x0806) — used by the SDX ARP responder for VNH resolution.
    Arp,
    /// Anything else, by raw value.
    Other(u16),
}

impl EtherType {
    /// The on-wire 16-bit value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Classifies a raw EtherType value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// IP protocol numbers used by the experiments.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17) — the deployment experiments use 1 Mbps UDP flows.
    Udp,
    /// ICMP (1).
    Icmp,
    /// Anything else, by raw value.
    Other(u8),
}

impl IpProto {
    /// The on-wire protocol number.
    pub fn value(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// Classifies a raw protocol number.
    pub fn from_value(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// A packet's header fields (concrete values, no wildcards).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Packet {
    /// Ethernet source address.
    pub dl_src: MacAddr,
    /// Ethernet destination address. At the SDX this usually carries the
    /// VMAC tag installed by the sender's border router.
    pub dl_dst: MacAddr,
    /// EtherType of the payload.
    pub eth_type: EtherType,
    /// IPv4 source address.
    pub nw_src: Ipv4Addr,
    /// IPv4 destination address.
    pub nw_dst: Ipv4Addr,
    /// IP protocol.
    pub nw_proto: IpProto,
    /// Transport-layer source port.
    pub tp_src: u16,
    /// Transport-layer destination port.
    pub tp_dst: u16,
    /// Opaque payload length in bytes (for traffic accounting only).
    pub payload_len: u32,
}

impl Packet {
    /// A zeroed template; builders below fill in the interesting fields.
    pub fn empty() -> Self {
        Packet {
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            eth_type: EtherType::Ipv4,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            nw_proto: IpProto::Tcp,
            tp_src: 0,
            tp_dst: 0,
            payload_len: 0,
        }
    }

    /// A TCP packet between the given endpoints.
    pub fn tcp(nw_src: Ipv4Addr, nw_dst: Ipv4Addr, tp_src: u16, tp_dst: u16) -> Self {
        Packet {
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
            nw_proto: IpProto::Tcp,
            ..Packet::empty()
        }
    }

    /// A UDP packet between the given endpoints.
    pub fn udp(nw_src: Ipv4Addr, nw_dst: Ipv4Addr, tp_src: u16, tp_dst: u16) -> Self {
        Packet {
            nw_proto: IpProto::Udp,
            ..Packet::tcp(nw_src, nw_dst, tp_src, tp_dst)
        }
    }

    /// Builder-style setter for the Ethernet addresses.
    pub fn with_macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.dl_src = src;
        self.dl_dst = dst;
        self
    }

    /// Builder-style setter for the payload length.
    pub fn with_len(mut self, len: u32) -> Self {
        self.payload_len = len;
        self
    }
}

/// Where a packet currently is.
pub type Location = PortId;

/// A packet plus its location — the object policies transform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LocatedPacket {
    /// The port the packet most recently arrived on / was forwarded to.
    pub loc: Location,
    /// The packet headers.
    pub pkt: Packet,
}

impl LocatedPacket {
    /// Pairs a packet with a location.
    pub fn at(loc: Location, pkt: Packet) -> Self {
        LocatedPacket { loc, pkt }
    }

    /// Returns a copy relocated to `loc` (the effect of `fwd`).
    pub fn moved_to(mut self, loc: Location) -> Self {
        self.loc = loc;
        self
    }
}

impl fmt::Display for LocatedPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {} proto={:?} tp={}→{} dlDst={}",
            self.loc,
            self.pkt.nw_src,
            self.pkt.nw_dst,
            self.pkt.nw_proto,
            self.pkt.tp_src,
            self.pkt.tp_dst,
            self.pkt.dl_dst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::ParticipantId;
    use crate::ipv4::ip;

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_value(v).value(), v);
        }
        assert_eq!(EtherType::from_value(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_value(0x0806), EtherType::Arp);
    }

    #[test]
    fn ipproto_roundtrip() {
        for v in [1u8, 6, 17, 89] {
            assert_eq!(IpProto::from_value(v).value(), v);
        }
        assert_eq!(IpProto::from_value(6), IpProto::Tcp);
        assert_eq!(IpProto::from_value(17), IpProto::Udp);
        assert_eq!(IpProto::from_value(1), IpProto::Icmp);
    }

    #[test]
    fn builders_fill_fields() {
        let p = Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 1234, 80)
            .with_macs(MacAddr::physical(1), MacAddr::vmac(9))
            .with_len(1400);
        assert_eq!(p.nw_proto, IpProto::Tcp);
        assert_eq!(p.tp_dst, 80);
        assert_eq!(p.dl_dst.fec_id(), Some(9));
        assert_eq!(p.payload_len, 1400);
        let u = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1234, 80);
        assert_eq!(u.nw_proto, IpProto::Udp);
    }

    #[test]
    fn located_packet_moves() {
        let a = PortId::Phys(ParticipantId(1), 1);
        let b = PortId::Virt(ParticipantId(2));
        let lp = LocatedPacket::at(a, Packet::empty());
        assert_eq!(lp.loc, a);
        assert_eq!(lp.moved_to(b).loc, b);
        // moving does not mutate the original (Copy semantics)
        assert_eq!(lp.loc, a);
    }
}
