//! A binary prefix trie: the backing store for RIBs and FIBs.
//!
//! Supports the three operations interdomain routing needs:
//! exact-prefix insert/remove/get (BGP announcements and withdrawals are
//! keyed by exact prefix), longest-prefix match (data-plane lookup in the
//! border-router model), and ordered iteration (deterministic RIB dumps,
//! which keep every experiment reproducible).
//!
//! The structure is a straightforward path-compressed-free binary trie —
//! one node per bit — which is simple, obviously correct, and plenty fast
//! for the ~25k-prefix workloads the paper's experiments sweep. Correctness
//! is cross-checked against a linear scan by property tests.

use crate::ipv4::{Ipv4Addr, Prefix};

/// A map from IPv4 prefixes to values, with longest-prefix-match lookup.
///
/// ```
/// use sdx_net::{ip, prefix, PrefixTrie};
///
/// let mut fib = PrefixTrie::new();
/// fib.insert(prefix("10.0.0.0/8"), "coarse");
/// fib.insert(prefix("10.1.0.0/16"), "fine");
/// assert_eq!(fib.lookup(ip("10.1.2.3")).unwrap().1, &"fine");
/// assert_eq!(fib.lookup(ip("10.9.9.9")).unwrap().1, &"coarse");
/// assert!(fib.lookup(ip("11.0.0.1")).is_none());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Clone, PartialEq, Debug)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_empty_leaf(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.addr().bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns the value stored at exactly `prefix`, if any.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = prefix.addr().bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Mutable variant of [`get`](Self::get).
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.addr().bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Returns the entry for `prefix`, inserting `default()` if absent.
    pub fn get_or_insert_with(&mut self, prefix: Prefix, default: impl FnOnce() -> T) -> &mut T {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.addr().bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        if node.value.is_none() {
            node.value = Some(default());
            self.len += 1;
        }
        node.value.as_mut().expect("just inserted")
    }

    /// Removes the value at exactly `prefix`, pruning now-empty branches.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        fn rec<T>(node: &mut Node<T>, prefix: Prefix, depth: u8) -> Option<T> {
            if depth == prefix.len() {
                return node.value.take();
            }
            let b = prefix.addr().bit(depth) as usize;
            let child = node.children[b].as_deref_mut()?;
            let out = rec(child, prefix, depth + 1);
            if child.is_empty_leaf() {
                node.children[b] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix, 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, together with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &T)> = None;
        for i in 0..=32u8 {
            if let Some(v) = node.value.as_ref() {
                best = Some((Prefix::new(addr, i), v));
            }
            if i == 32 {
                break;
            }
            match node.children[addr.bit(i) as usize].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// Visits **every** stored value whose prefix contains `addr`, from the
    /// least specific (the default route, if stored) to the most specific.
    ///
    /// Where [`lookup`](Self::lookup) answers "which single prefix wins
    /// longest-match", this answers "which prefixes are in play at all" —
    /// the question a priority-ordered matcher asks, where rule priority
    /// (not prefix length) decides the winner among covering prefixes.
    /// Walks the same root-to-leaf bit path as `lookup`, so it allocates
    /// nothing and does at most 33 node visits.
    pub fn for_each_match(&self, addr: Ipv4Addr, mut f: impl FnMut(&T)) {
        let mut node = &self.root;
        for i in 0..=32u8 {
            if let Some(v) = node.value.as_ref() {
                f(v);
            }
            if i == 32 {
                break;
            }
            match node.children[addr.bit(i) as usize].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
    }

    /// Number of allocated trie nodes (including the root and interior
    /// nodes holding no value). A capacity metric for memory accounting:
    /// each node is one `Node<T>` allocation.
    pub fn node_count(&self) -> usize {
        fn rec<T>(node: &Node<T>) -> usize {
            1 + node
                .children
                .iter()
                .flatten()
                .map(|c| rec(c))
                .sum::<usize>()
        }
        rec(&self.root)
    }

    /// All stored prefixes covered by `covering` (including an exact match),
    /// in lexicographic order.
    pub fn covered_by(&self, covering: Prefix) -> Vec<(Prefix, &T)> {
        // Walk down to the covering prefix's node, then collect its subtree.
        let mut node = &self.root;
        for i in 0..covering.len() {
            match node.children[covering.addr().bit(i) as usize].as_deref() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        collect(node, covering, &mut out);
        out
    }

    /// Iterates over `(prefix, &value)` pairs in lexicographic prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root, Prefix::DEFAULT_ROUTE, &mut out);
        out.into_iter()
    }

    /// Iterates over stored prefixes in lexicographic order.
    pub fn keys(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.iter().map(|(p, _)| p)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.root = Node::new();
        self.len = 0;
    }
}

fn collect<'a, T>(node: &'a Node<T>, at: Prefix, out: &mut Vec<(Prefix, &'a T)>) {
    if let Some(v) = node.value.as_ref() {
        out.push((at, v));
    }
    if let Some((l, r)) = at.children() {
        if let Some(c) = node.children[0].as_deref() {
            collect(c, l, out);
        }
        if let Some(c) = node.children[1].as_deref() {
            collect(c, r, out);
        }
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::{ip, prefix};

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(prefix("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(prefix("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(prefix("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.get(prefix("10.0.0.0/16")), None);
        assert_eq!(t.remove(prefix("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(prefix("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn default_route_lives_at_the_root() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT_ROUTE, 0);
        assert_eq!(t.get(Prefix::DEFAULT_ROUTE), Some(&0));
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap().1, &0);
        assert_eq!(t.remove(Prefix::DEFAULT_ROUTE), Some(0));
    }

    #[test]
    fn longest_prefix_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(prefix("0.0.0.0/0"), "default");
        t.insert(prefix("10.0.0.0/8"), "eight");
        t.insert(prefix("10.1.0.0/16"), "sixteen");
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().1, &"sixteen");
        assert_eq!(t.lookup(ip("10.9.2.3")).unwrap().1, &"eight");
        assert_eq!(t.lookup(ip("11.0.0.1")).unwrap().1, &"default");
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().0, prefix("10.1.0.0/16"));
    }

    #[test]
    fn lookup_misses_when_nothing_covers() {
        let mut t = PrefixTrie::new();
        t.insert(prefix("10.0.0.0/8"), ());
        assert!(t.lookup(ip("11.0.0.1")).is_none());
    }

    #[test]
    fn host_route_lookup() {
        let mut t = PrefixTrie::new();
        t.insert(prefix("1.2.3.4/32"), "host");
        t.insert(prefix("1.2.3.0/24"), "net");
        assert_eq!(t.lookup(ip("1.2.3.4")).unwrap().1, &"host");
        assert_eq!(t.lookup(ip("1.2.3.5")).unwrap().1, &"net");
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let ps = [
            prefix("10.0.0.0/8"),
            prefix("0.0.0.0/0"),
            prefix("10.128.0.0/9"),
            prefix("192.168.0.0/16"),
            prefix("10.0.0.0/32"),
        ];
        let t: PrefixTrie<usize> = ps.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let keys: Vec<_> = t.keys().collect();
        let mut sorted = ps.to_vec();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn covered_by_returns_subtree() {
        let mut t = PrefixTrie::new();
        t.insert(prefix("10.0.0.0/8"), 1);
        t.insert(prefix("10.1.0.0/16"), 2);
        t.insert(prefix("10.1.2.0/24"), 3);
        t.insert(prefix("11.0.0.0/8"), 4);
        let covered: Vec<_> = t
            .covered_by(prefix("10.1.0.0/16"))
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(covered, vec![prefix("10.1.0.0/16"), prefix("10.1.2.0/24")]);
        assert!(t.covered_by(prefix("12.0.0.0/8")).is_empty());
    }

    #[test]
    fn get_or_insert_with_counts_once() {
        let mut t: PrefixTrie<Vec<u32>> = PrefixTrie::new();
        t.get_or_insert_with(prefix("10.0.0.0/8"), Vec::new).push(1);
        t.get_or_insert_with(prefix("10.0.0.0/8"), Vec::new).push(2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(prefix("10.0.0.0/8")), Some(&vec![1, 2]));
    }

    #[test]
    fn for_each_match_visits_all_covering_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(prefix("0.0.0.0/0"), "default");
        t.insert(prefix("10.0.0.0/8"), "eight");
        t.insert(prefix("10.1.0.0/16"), "sixteen");
        t.insert(prefix("11.0.0.0/8"), "other");
        let mut seen = Vec::new();
        t.for_each_match(ip("10.1.2.3"), |v| seen.push(*v));
        assert_eq!(seen, vec!["default", "eight", "sixteen"]);
        seen.clear();
        t.for_each_match(ip("12.0.0.1"), |v| seen.push(*v));
        assert_eq!(seen, vec!["default"]);
    }

    #[test]
    fn node_count_tracks_allocations() {
        let mut t: PrefixTrie<()> = PrefixTrie::new();
        assert_eq!(t.node_count(), 1, "empty trie is just the root");
        t.insert(prefix("128.0.0.0/1"), ());
        assert_eq!(t.node_count(), 2);
        t.insert(prefix("128.0.0.0/2"), ());
        assert_eq!(t.node_count(), 3);
        t.remove(prefix("128.0.0.0/2"));
        assert_eq!(t.node_count(), 2, "pruning frees nodes");
    }

    #[test]
    fn remove_prunes_branches() {
        let mut t = PrefixTrie::new();
        t.insert(prefix("10.1.2.0/24"), ());
        t.remove(prefix("10.1.2.0/24"));
        // After pruning, the root must be an empty leaf again.
        assert!(t.root.is_empty_leaf());
    }
}
