//! On-the-wire frame encoding for the packet model.
//!
//! The simulator carries [`Packet`](crate::Packet) as plain data, but a
//! credible data plane must be able to materialize real frames — for pcap
//! export, for interoperability tests, and because the ARP machinery (the
//! VNH→VMAC resolution at the heart of §4.2) runs over real ARP frames in
//! a deployment. This module implements Ethernet II + IPv4 (+ TCP/UDP
//! port words) and ARP, with header checksums computed and verified per
//! RFC 1071.

use crate::mac::MacAddr;
use crate::packet::{EtherType, IpProto, Packet};
use crate::Ipv4Addr;

/// Errors from frame decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The buffer is shorter than the headers require.
    Truncated,
    /// The EtherType is not one this decoder understands.
    UnsupportedEtherType(u16),
    /// The IPv4 version/IHL field is malformed.
    BadIpHeader,
    /// The IPv4 header checksum does not verify.
    BadChecksum,
    /// The ARP body is not an Ethernet/IPv4 request or reply.
    BadArp,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::UnsupportedEtherType(t) => write!(f, "unsupported EtherType {t:#06x}"),
            FrameError::BadIpHeader => write!(f, "malformed IPv4 header"),
            FrameError::BadChecksum => write!(f, "IPv4 header checksum mismatch"),
            FrameError::BadArp => write!(f, "malformed ARP body"),
        }
    }
}

impl std::error::Error for FrameError {}

/// RFC 1071 ones'-complement checksum over a header.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

const ETH_HDR: usize = 14;
const IP_HDR: usize = 20;

/// Encodes a [`Packet`] as an Ethernet II frame carrying IPv4. The
/// payload is zero-filled to `payload_len` (the simulator never carries
/// application bytes), and transport headers carry the port words plus
/// zeroed sequence/checksum fields (8 bytes for UDP, 20 for TCP).
pub fn encode_frame(pkt: &Packet) -> Vec<u8> {
    let transport_len = match pkt.nw_proto {
        IpProto::Tcp => 20,
        IpProto::Udp => 8,
        _ => 0,
    };
    let ip_total = IP_HDR + transport_len + pkt.payload_len as usize;
    let mut out = Vec::with_capacity(ETH_HDR + ip_total);

    // Ethernet II.
    out.extend_from_slice(&pkt.dl_dst.octets());
    out.extend_from_slice(&pkt.dl_src.octets());
    out.extend_from_slice(&pkt.eth_type.value().to_be_bytes());

    // IPv4 header.
    let ip_start = out.len();
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&(ip_total as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0, 0x40, 0]); // id 0, DF, no fragment offset
    out.push(64); // TTL
    out.push(pkt.nw_proto.value());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&pkt.nw_src.octets());
    out.extend_from_slice(&pkt.nw_dst.octets());
    let csum = internet_checksum(&out[ip_start..ip_start + IP_HDR]);
    out[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

    // Transport ports.
    match pkt.nw_proto {
        IpProto::Tcp => {
            out.extend_from_slice(&pkt.tp_src.to_be_bytes());
            out.extend_from_slice(&pkt.tp_dst.to_be_bytes());
            out.extend_from_slice(&[0; 8]); // seq + ack
            out.push(0x50); // data offset 5
            out.push(0x18); // PSH|ACK
            out.extend_from_slice(&[0xff, 0xff, 0, 0, 0, 0]); // window, csum, urg
        }
        IpProto::Udp => {
            out.extend_from_slice(&pkt.tp_src.to_be_bytes());
            out.extend_from_slice(&pkt.tp_dst.to_be_bytes());
            out.extend_from_slice(&((8 + pkt.payload_len) as u16).to_be_bytes());
            out.extend_from_slice(&[0, 0]); // UDP checksum optional over IPv4
        }
        _ => {}
    }

    out.resize(ETH_HDR + ip_total, 0);
    out
}

/// Decodes an Ethernet II / IPv4 frame back into a [`Packet`], verifying
/// the IPv4 header checksum.
pub fn decode_frame(buf: &[u8]) -> Result<Packet, FrameError> {
    if buf.len() < ETH_HDR {
        return Err(FrameError::Truncated);
    }
    let dl_dst = MacAddr([buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]]);
    let dl_src = MacAddr([buf[6], buf[7], buf[8], buf[9], buf[10], buf[11]]);
    let ety = u16::from_be_bytes([buf[12], buf[13]]);
    if EtherType::from_value(ety) != EtherType::Ipv4 {
        return Err(FrameError::UnsupportedEtherType(ety));
    }
    let ip = &buf[ETH_HDR..];
    if ip.len() < IP_HDR {
        return Err(FrameError::Truncated);
    }
    if ip[0] != 0x45 {
        return Err(FrameError::BadIpHeader);
    }
    if internet_checksum(&ip[..IP_HDR]) != 0 {
        return Err(FrameError::BadChecksum);
    }
    let total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if ip.len() < total || total < IP_HDR {
        return Err(FrameError::Truncated);
    }
    let proto = IpProto::from_value(ip[9]);
    let nw_src = Ipv4Addr::from([ip[12], ip[13], ip[14], ip[15]]);
    let nw_dst = Ipv4Addr::from([ip[16], ip[17], ip[18], ip[19]]);
    let body = &ip[IP_HDR..total];
    let (tp_src, tp_dst, transport_len) = match proto {
        IpProto::Tcp => {
            if body.len() < 20 {
                return Err(FrameError::Truncated);
            }
            (
                u16::from_be_bytes([body[0], body[1]]),
                u16::from_be_bytes([body[2], body[3]]),
                20,
            )
        }
        IpProto::Udp => {
            if body.len() < 8 {
                return Err(FrameError::Truncated);
            }
            (
                u16::from_be_bytes([body[0], body[1]]),
                u16::from_be_bytes([body[2], body[3]]),
                8,
            )
        }
        _ => (0, 0, 0),
    };
    Ok(Packet {
        dl_src,
        dl_dst,
        eth_type: EtherType::Ipv4,
        nw_src,
        nw_dst,
        nw_proto: proto,
        tp_src,
        tp_dst,
        payload_len: (body.len() - transport_len) as u32,
    })
}

/// An ARP message over Ethernet/IPv4 (RFC 826) — the frames the SDX ARP
/// responder actually answers in a deployment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpFrame {
    /// True for a request (`oper = 1`), false for a reply (`oper = 2`).
    pub is_request: bool,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address — the VNH being resolved.
    pub target_ip: Ipv4Addr,
}

impl ArpFrame {
    /// A who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpFrame {
            is_request: true,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// The reply answering this request with `mac` (the VMAC, at the SDX).
    pub fn reply_with(&self, mac: MacAddr) -> ArpFrame {
        ArpFrame {
            is_request: false,
            sender_mac: mac,
            sender_ip: self.target_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }
}

/// Encodes an ARP message as a full Ethernet frame (broadcast for
/// requests, unicast for replies).
pub fn encode_arp(arp: &ArpFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(ETH_HDR + 28);
    let dst = if arp.is_request {
        MacAddr::BROADCAST
    } else {
        arp.target_mac
    };
    out.extend_from_slice(&dst.octets());
    out.extend_from_slice(&arp.sender_mac.octets());
    out.extend_from_slice(&EtherType::Arp.value().to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
    out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
    out.push(6); // hlen
    out.push(4); // plen
    out.extend_from_slice(&(if arp.is_request { 1u16 } else { 2 }).to_be_bytes());
    out.extend_from_slice(&arp.sender_mac.octets());
    out.extend_from_slice(&arp.sender_ip.octets());
    out.extend_from_slice(&arp.target_mac.octets());
    out.extend_from_slice(&arp.target_ip.octets());
    out
}

/// Decodes an ARP message from a full Ethernet frame.
pub fn decode_arp(buf: &[u8]) -> Result<ArpFrame, FrameError> {
    if buf.len() < ETH_HDR + 28 {
        return Err(FrameError::Truncated);
    }
    let ety = u16::from_be_bytes([buf[12], buf[13]]);
    if EtherType::from_value(ety) != EtherType::Arp {
        return Err(FrameError::UnsupportedEtherType(ety));
    }
    let a = &buf[ETH_HDR..];
    let htype = u16::from_be_bytes([a[0], a[1]]);
    let ptype = u16::from_be_bytes([a[2], a[3]]);
    if htype != 1 || ptype != 0x0800 || a[4] != 6 || a[5] != 4 {
        return Err(FrameError::BadArp);
    }
    let oper = u16::from_be_bytes([a[6], a[7]]);
    let is_request = match oper {
        1 => true,
        2 => false,
        _ => return Err(FrameError::BadArp),
    };
    let mac_at = |i: usize| MacAddr([a[i], a[i + 1], a[i + 2], a[i + 3], a[i + 4], a[i + 5]]);
    let ip_at = |i: usize| Ipv4Addr::from([a[i], a[i + 1], a[i + 2], a[i + 3]]);
    Ok(ArpFrame {
        is_request,
        sender_mac: mac_at(8),
        sender_ip: ip_at(14),
        target_mac: mac_at(18),
        target_ip: ip_at(24),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::ip;

    #[test]
    fn checksum_rfc1071_example() {
        // Classic worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
        // A header with its checksum in place sums to zero.
        let mut with = data.to_vec();
        let c = internet_checksum(&with);
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
        // Odd length is handled (padded with zero).
        assert_eq!(internet_checksum(&[0xff]), !0xff00);
    }

    #[test]
    fn tcp_frame_roundtrip() {
        let pkt = Packet::tcp(ip("10.0.0.1"), ip("20.0.0.2"), 40_000, 80)
            .with_macs(MacAddr::physical(1), MacAddr::vmac(7))
            .with_len(100);
        let frame = encode_frame(&pkt);
        assert_eq!(frame.len(), 14 + 20 + 20 + 100);
        let back = decode_frame(&frame).expect("decodes");
        assert_eq!(back, pkt);
    }

    #[test]
    fn udp_frame_roundtrip() {
        let pkt = Packet::udp(ip("9.9.9.9"), ip("8.8.8.8"), 53, 53)
            .with_macs(MacAddr::physical(2), MacAddr::physical(3))
            .with_len(64);
        let back = decode_frame(&encode_frame(&pkt)).expect("decodes");
        assert_eq!(back, pkt);
    }

    #[test]
    fn corrupted_ip_header_is_rejected() {
        let pkt = Packet::tcp(ip("10.0.0.1"), ip("20.0.0.2"), 1, 2);
        let mut frame = encode_frame(&pkt);
        frame[14 + 12] ^= 0xff; // flip a source-address byte
        assert_eq!(decode_frame(&frame), Err(FrameError::BadChecksum));
        // Truncations are detected.
        for cut in [4usize, 13, 20, 33] {
            assert!(decode_frame(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn non_ip_ethertype_rejected() {
        let pkt = Packet::tcp(ip("10.0.0.1"), ip("20.0.0.2"), 1, 2);
        let mut frame = encode_frame(&pkt);
        frame[12] = 0x86;
        frame[13] = 0xdd; // IPv6
        assert_eq!(
            decode_frame(&frame),
            Err(FrameError::UnsupportedEtherType(0x86dd))
        );
    }

    #[test]
    fn arp_request_reply_roundtrip() {
        // The §4.2 exchange: a border router resolves a VNH, the SDX
        // responder answers with the VMAC.
        let req = ArpFrame::request(MacAddr::physical(1), ip("172.16.0.5"), ip("172.16.128.9"));
        let wire = encode_arp(&req);
        assert_eq!(&wire[..6], &MacAddr::BROADCAST.octets());
        let back = decode_arp(&wire).expect("decodes");
        assert_eq!(back, req);

        let reply = back.reply_with(MacAddr::vmac(9));
        assert!(!reply.is_request);
        assert_eq!(reply.sender_mac, MacAddr::vmac(9));
        assert_eq!(reply.sender_ip, ip("172.16.128.9"));
        assert_eq!(reply.target_mac, MacAddr::physical(1));
        let wire = encode_arp(&reply);
        assert_eq!(&wire[..6], &MacAddr::physical(1).octets());
        assert_eq!(decode_arp(&wire).expect("decodes"), reply);
    }

    #[test]
    fn malformed_arp_rejected() {
        let req = ArpFrame::request(MacAddr::physical(1), ip("1.1.1.1"), ip("2.2.2.2"));
        let mut wire = encode_arp(&req);
        wire[14 + 7] = 9; // bogus operation
        assert_eq!(decode_arp(&wire), Err(FrameError::BadArp));
        wire.truncate(20);
        assert_eq!(decode_arp(&wire), Err(FrameError::Truncated));
    }
}
