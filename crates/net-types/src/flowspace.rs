//! Header-space reasoning: symbolic matches over packet headers.
//!
//! A [`HeaderMatch`] describes a *set* of located packets by constraining
//! each header field independently (a "cube" in header space). Scalar fields
//! (ports, MACs, protocol) are constrained to an exact value or left wild;
//! the IPv4 address fields are constrained by a CIDR prefix, which is what
//! both BGP filters and OpenFlow 1.0 masks can express.
//!
//! Three operations drive the whole compilation pipeline:
//!
//! * [`HeaderMatch::matches`] — membership test (ground truth semantics).
//! * [`HeaderMatch::intersect`] — exact intersection (empty ⇒ `None`). Used
//!   by parallel classifier composition and by the disjointness check behind
//!   the §4.3.1 "most SDX policies are disjoint" optimization.
//! * [`HeaderMatch::seq_compose`] — given packets matching `self`, after a
//!   list of modifications [`Mod`], which additional constraints must have
//!   held for the *modified* packet to match a second pattern? Used by
//!   sequential classifier composition, the heart of the Pyretic compiler.

use core::fmt;

use crate::asn::PortId;
use crate::ipv4::{Ipv4Addr, Prefix};
use crate::mac::MacAddr;
use crate::packet::{EtherType, IpProto, LocatedPacket};

/// A single-field constraint, used to build [`HeaderMatch`]es.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldMatch {
    /// Packet is located at this port.
    InPort(PortId),
    /// Ethernet source equals.
    DlSrc(MacAddr),
    /// Ethernet destination equals.
    DlDst(MacAddr),
    /// EtherType equals.
    EthType(EtherType),
    /// IPv4 source within prefix.
    NwSrc(Prefix),
    /// IPv4 destination within prefix.
    NwDst(Prefix),
    /// IP protocol equals.
    NwProto(IpProto),
    /// Transport source port equals.
    TpSrc(u16),
    /// Transport destination port equals.
    TpDst(u16),
}

/// A packet/location modification — the write half of an OpenFlow action
/// list. `SetLoc` is the effect of `fwd(...)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mod {
    /// Move the packet to a port (the `fwd` action).
    SetLoc(PortId),
    /// Rewrite the Ethernet source.
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination (used for VMAC → physical rewrite).
    SetDlDst(MacAddr),
    /// Rewrite the IPv4 source.
    SetNwSrc(Ipv4Addr),
    /// Rewrite the IPv4 destination (wide-area load balancing).
    SetNwDst(Ipv4Addr),
    /// Rewrite the transport source port.
    SetTpSrc(u16),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
}

impl Mod {
    /// Applies this modification to a located packet.
    pub fn apply(self, lp: &mut LocatedPacket) {
        match self {
            Mod::SetLoc(p) => lp.loc = p,
            Mod::SetDlSrc(m) => lp.pkt.dl_src = m,
            Mod::SetDlDst(m) => lp.pkt.dl_dst = m,
            Mod::SetNwSrc(a) => lp.pkt.nw_src = a,
            Mod::SetNwDst(a) => lp.pkt.nw_dst = a,
            Mod::SetTpSrc(p) => lp.pkt.tp_src = p,
            Mod::SetTpDst(p) => lp.pkt.tp_dst = p,
        }
    }
}

/// A conjunction of per-field constraints; `None` means wildcard.
///
/// The empty set is *not* representable — constructors return `Option` and
/// use `None` to signal emptiness, so a `HeaderMatch` value always matches
/// at least one packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HeaderMatch {
    /// Constraint on the packet's location.
    pub in_port: Option<PortId>,
    /// Constraint on the Ethernet source.
    pub dl_src: Option<MacAddr>,
    /// Constraint on the Ethernet destination.
    pub dl_dst: Option<MacAddr>,
    /// Constraint on the EtherType.
    pub eth_type: Option<EtherType>,
    /// Constraint on the IPv4 source (CIDR).
    pub nw_src: Option<Prefix>,
    /// Constraint on the IPv4 destination (CIDR).
    pub nw_dst: Option<Prefix>,
    /// Constraint on the IP protocol.
    pub nw_proto: Option<IpProto>,
    /// Constraint on the transport source port.
    pub tp_src: Option<u16>,
    /// Constraint on the transport destination port.
    pub tp_dst: Option<u16>,
}

impl HeaderMatch {
    /// The match-everything pattern.
    pub fn any() -> Self {
        HeaderMatch::default()
    }

    /// A pattern with a single field constrained.
    pub fn of(f: FieldMatch) -> Self {
        let mut m = HeaderMatch::any();
        m.set(f);
        m
    }

    /// Adds/overwrites one field constraint in place.
    pub fn set(&mut self, f: FieldMatch) -> &mut Self {
        match f {
            FieldMatch::InPort(v) => self.in_port = Some(v),
            FieldMatch::DlSrc(v) => self.dl_src = Some(v),
            FieldMatch::DlDst(v) => self.dl_dst = Some(v),
            FieldMatch::EthType(v) => self.eth_type = Some(v),
            FieldMatch::NwSrc(v) => self.nw_src = Some(v),
            FieldMatch::NwDst(v) => self.nw_dst = Some(v),
            FieldMatch::NwProto(v) => self.nw_proto = Some(v),
            FieldMatch::TpSrc(v) => self.tp_src = Some(v),
            FieldMatch::TpDst(v) => self.tp_dst = Some(v),
        }
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn and(mut self, f: FieldMatch) -> Self {
        self.set(f);
        self
    }

    /// True if no field is constrained.
    pub fn is_wildcard(&self) -> bool {
        *self == HeaderMatch::any()
    }

    /// Number of constrained fields (diagnostic; used in rule accounting).
    pub fn constrained_fields(&self) -> usize {
        self.in_port.is_some() as usize
            + self.dl_src.is_some() as usize
            + self.dl_dst.is_some() as usize
            + self.eth_type.is_some() as usize
            + self.nw_src.is_some() as usize
            + self.nw_dst.is_some() as usize
            + self.nw_proto.is_some() as usize
            + self.tp_src.is_some() as usize
            + self.tp_dst.is_some() as usize
    }

    /// Membership: does `lp` satisfy every constraint?
    pub fn matches(&self, lp: &LocatedPacket) -> bool {
        fn eq_ok<V: PartialEq>(c: Option<V>, v: V) -> bool {
            c.is_none_or(|x| x == v)
        }
        eq_ok(self.in_port, lp.loc)
            && eq_ok(self.dl_src, lp.pkt.dl_src)
            && eq_ok(self.dl_dst, lp.pkt.dl_dst)
            && eq_ok(self.eth_type, lp.pkt.eth_type)
            && self.nw_src.is_none_or(|p| p.contains(lp.pkt.nw_src))
            && self.nw_dst.is_none_or(|p| p.contains(lp.pkt.nw_dst))
            && eq_ok(self.nw_proto, lp.pkt.nw_proto)
            && eq_ok(self.tp_src, lp.pkt.tp_src)
            && eq_ok(self.tp_dst, lp.pkt.tp_dst)
    }

    /// Exact intersection of two patterns; `None` iff they are disjoint.
    pub fn intersect(&self, other: &HeaderMatch) -> Option<HeaderMatch> {
        fn scalar<V: PartialEq + Copy>(a: Option<V>, b: Option<V>) -> Result<Option<V>, ()> {
            match (a, b) {
                (Some(x), Some(y)) if x != y => Err(()),
                (Some(x), _) => Ok(Some(x)),
                (None, y) => Ok(y),
            }
        }
        fn pfx(a: Option<Prefix>, b: Option<Prefix>) -> Result<Option<Prefix>, ()> {
            match (a, b) {
                (Some(x), Some(y)) => x.intersect(y).map(Some).ok_or(()),
                (Some(x), None) => Ok(Some(x)),
                (None, y) => Ok(y),
            }
        }
        let m = HeaderMatch {
            in_port: scalar(self.in_port, other.in_port).ok()?,
            dl_src: scalar(self.dl_src, other.dl_src).ok()?,
            dl_dst: scalar(self.dl_dst, other.dl_dst).ok()?,
            eth_type: scalar(self.eth_type, other.eth_type).ok()?,
            nw_src: pfx(self.nw_src, other.nw_src).ok()?,
            nw_dst: pfx(self.nw_dst, other.nw_dst).ok()?,
            nw_proto: scalar(self.nw_proto, other.nw_proto).ok()?,
            tp_src: scalar(self.tp_src, other.tp_src).ok()?,
            tp_dst: scalar(self.tp_dst, other.tp_dst).ok()?,
        };
        Some(m)
    }

    /// True when the two patterns share no packet.
    pub fn disjoint(&self, other: &HeaderMatch) -> bool {
        self.intersect(other).is_none()
    }

    /// Does `self` match every packet `other` matches?
    pub fn subsumes(&self, other: &HeaderMatch) -> bool {
        fn scalar<V: PartialEq + Copy>(a: Option<V>, b: Option<V>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(x), Some(y)) => x == y,
                (Some(_), None) => false,
            }
        }
        fn pfx(a: Option<Prefix>, b: Option<Prefix>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(x), Some(y)) => x.covers(y),
                (Some(_), None) => false,
            }
        }
        scalar(self.in_port, other.in_port)
            && scalar(self.dl_src, other.dl_src)
            && scalar(self.dl_dst, other.dl_dst)
            && scalar(self.eth_type, other.eth_type)
            && pfx(self.nw_src, other.nw_src)
            && pfx(self.nw_dst, other.nw_dst)
            && scalar(self.nw_proto, other.nw_proto)
            && scalar(self.tp_src, other.tp_src)
            && scalar(self.tp_dst, other.tp_dst)
    }

    /// Sequential composition: the constraint describing packets that match
    /// `self` **and**, after applying `mods` in order, match `then`.
    ///
    /// Returns `None` if no such packet exists. This is the key step in
    /// compiling `p1 >> p2`: each rule of `p1` (match `self`, action `mods`)
    /// is combined with each rule of `p2` (match `then`).
    pub fn seq_compose(&self, mods: &[Mod], then: &HeaderMatch) -> Option<HeaderMatch> {
        // For each field of `then`: if `mods` writes the field, the written
        // value must satisfy `then`'s constraint (no new constraint on the
        // original packet); otherwise the constraint applies to the original
        // packet and is intersected into the result. Later mods win, so scan
        // `mods` from the back.
        fn last_loc(mods: &[Mod]) -> Option<PortId> {
            mods.iter().rev().find_map(|m| match m {
                Mod::SetLoc(p) => Some(*p),
                _ => None,
            })
        }
        macro_rules! last_set {
            ($pat:pat => $out:expr) => {
                mods.iter().rev().find_map(|m| match m {
                    $pat => Some($out),
                    _ => None,
                })
            };
        }

        let mut need = HeaderMatch::any();

        // in_port / location
        if let Some(want) = then.in_port {
            match last_loc(mods) {
                Some(got) => {
                    if got != want {
                        return None;
                    }
                }
                None => need.in_port = Some(want),
            }
        }
        // dl_src
        if let Some(want) = then.dl_src {
            match last_set!(Mod::SetDlSrc(v) => *v) {
                Some(got) => {
                    if got != want {
                        return None;
                    }
                }
                None => need.dl_src = Some(want),
            }
        }
        // dl_dst
        if let Some(want) = then.dl_dst {
            match last_set!(Mod::SetDlDst(v) => *v) {
                Some(got) => {
                    if got != want {
                        return None;
                    }
                }
                None => need.dl_dst = Some(want),
            }
        }
        // eth_type: not modifiable
        if let Some(want) = then.eth_type {
            need.eth_type = Some(want);
        }
        // nw_src
        if let Some(want) = then.nw_src {
            match last_set!(Mod::SetNwSrc(v) => *v) {
                Some(got) => {
                    if !want.contains(got) {
                        return None;
                    }
                }
                None => need.nw_src = Some(want),
            }
        }
        // nw_dst
        if let Some(want) = then.nw_dst {
            match last_set!(Mod::SetNwDst(v) => *v) {
                Some(got) => {
                    if !want.contains(got) {
                        return None;
                    }
                }
                None => need.nw_dst = Some(want),
            }
        }
        // nw_proto: not modifiable
        if let Some(want) = then.nw_proto {
            need.nw_proto = Some(want);
        }
        // tp_src
        if let Some(want) = then.tp_src {
            match last_set!(Mod::SetTpSrc(v) => *v) {
                Some(got) => {
                    if got != want {
                        return None;
                    }
                }
                None => need.tp_src = Some(want),
            }
        }
        // tp_dst
        if let Some(want) = then.tp_dst {
            match last_set!(Mod::SetTpDst(v) => *v) {
                Some(got) => {
                    if got != want {
                        return None;
                    }
                }
                None => need.tp_dst = Some(want),
            }
        }

        self.intersect(&need)
    }
}

impl fmt::Debug for HeaderMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            return write!(f, "*");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(v) = self.in_port {
            parts.push(format!("port={v}"));
        }
        if let Some(v) = self.dl_src {
            parts.push(format!("dlSrc={v}"));
        }
        if let Some(v) = self.dl_dst {
            parts.push(format!("dlDst={v}"));
        }
        if let Some(v) = self.eth_type {
            parts.push(format!("ethType={v:?}"));
        }
        if let Some(v) = self.nw_src {
            parts.push(format!("srcip={v}"));
        }
        if let Some(v) = self.nw_dst {
            parts.push(format!("dstip={v}"));
        }
        if let Some(v) = self.nw_proto {
            parts.push(format!("proto={v:?}"));
        }
        if let Some(v) = self.tp_src {
            parts.push(format!("srcport={v}"));
        }
        if let Some(v) = self.tp_dst {
            parts.push(format!("dstport={v}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::ParticipantId;
    use crate::ipv4::{ip, prefix};
    use crate::packet::Packet;

    fn port(n: u32) -> PortId {
        PortId::Phys(ParticipantId(n), 1)
    }

    fn pkt_at(loc: PortId) -> LocatedPacket {
        LocatedPacket::at(loc, Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 1000, 80))
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(HeaderMatch::any().matches(&pkt_at(port(1))));
        assert!(HeaderMatch::any().is_wildcard());
        assert_eq!(HeaderMatch::any().constrained_fields(), 0);
    }

    #[test]
    fn field_matching() {
        let m = HeaderMatch::of(FieldMatch::TpDst(80)).and(FieldMatch::NwSrc(prefix("10.0.0.0/8")));
        assert!(m.matches(&pkt_at(port(1))));
        let mut other = pkt_at(port(1));
        other.pkt.tp_dst = 443;
        assert!(!m.matches(&other));
        other.pkt.tp_dst = 80;
        other.pkt.nw_src = ip("11.0.0.1");
        assert!(!m.matches(&other));
    }

    #[test]
    fn port_matching() {
        let m = HeaderMatch::of(FieldMatch::InPort(port(1)));
        assert!(m.matches(&pkt_at(port(1))));
        assert!(!m.matches(&pkt_at(port(2))));
    }

    #[test]
    fn intersect_scalar_conflict_is_empty() {
        let a = HeaderMatch::of(FieldMatch::TpDst(80));
        let b = HeaderMatch::of(FieldMatch::TpDst(443));
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&a));
    }

    #[test]
    fn intersect_prefixes_takes_more_specific() {
        let a = HeaderMatch::of(FieldMatch::NwDst(prefix("10.0.0.0/8")));
        let b = HeaderMatch::of(FieldMatch::NwDst(prefix("10.1.0.0/16")));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.nw_dst, Some(prefix("10.1.0.0/16")));
        let c = HeaderMatch::of(FieldMatch::NwDst(prefix("11.0.0.0/8")));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn intersect_merges_different_fields() {
        let a = HeaderMatch::of(FieldMatch::TpDst(80));
        let b = HeaderMatch::of(FieldMatch::NwSrc(prefix("0.0.0.0/1")));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.tp_dst, Some(80));
        assert_eq!(i.nw_src, Some(prefix("0.0.0.0/1")));
        assert_eq!(i.constrained_fields(), 2);
    }

    #[test]
    fn subsumption() {
        let wide = HeaderMatch::of(FieldMatch::NwDst(prefix("10.0.0.0/8")));
        let narrow = wide.and(FieldMatch::TpDst(80));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(HeaderMatch::any().subsumes(&wide));
        assert!(wide.subsumes(&wide));
    }

    #[test]
    fn mods_apply() {
        let mut lp = pkt_at(port(1));
        Mod::SetNwDst(ip("9.9.9.9")).apply(&mut lp);
        Mod::SetLoc(port(2)).apply(&mut lp);
        Mod::SetDlDst(MacAddr::vmac(3)).apply(&mut lp);
        assert_eq!(lp.pkt.nw_dst, ip("9.9.9.9"));
        assert_eq!(lp.loc, port(2));
        assert_eq!(lp.pkt.dl_dst, MacAddr::vmac(3));
    }

    #[test]
    fn seq_compose_passthrough_constraints() {
        // No mods: composition is plain intersection.
        let m1 = HeaderMatch::of(FieldMatch::TpDst(80));
        let m2 = HeaderMatch::of(FieldMatch::NwSrc(prefix("0.0.0.0/1")));
        let c = m1.seq_compose(&[], &m2).unwrap();
        assert_eq!(c.tp_dst, Some(80));
        assert_eq!(c.nw_src, Some(prefix("0.0.0.0/1")));
    }

    #[test]
    fn seq_compose_mod_satisfies_then() {
        // fwd to port 2, then match in_port=2: satisfied by the mod, so the
        // composed match does NOT constrain the original in_port.
        let m1 = HeaderMatch::any();
        let m2 = HeaderMatch::of(FieldMatch::InPort(port(2)));
        let c = m1.seq_compose(&[Mod::SetLoc(port(2))], &m2).unwrap();
        assert_eq!(c.in_port, None);
    }

    #[test]
    fn seq_compose_mod_violates_then() {
        let m1 = HeaderMatch::any();
        let m2 = HeaderMatch::of(FieldMatch::InPort(port(3)));
        assert!(m1.seq_compose(&[Mod::SetLoc(port(2))], &m2).is_none());
    }

    #[test]
    fn seq_compose_last_mod_wins() {
        let m2 = HeaderMatch::of(FieldMatch::InPort(port(3)));
        let mods = [Mod::SetLoc(port(2)), Mod::SetLoc(port(3))];
        assert!(HeaderMatch::any().seq_compose(&mods, &m2).is_some());
    }

    #[test]
    fn seq_compose_nwdst_rewrite() {
        // Load-balancer pattern: rewrite dstip, then match a prefix that
        // contains (or not) the rewritten address.
        let hit = HeaderMatch::of(FieldMatch::NwDst(prefix("74.125.0.0/16")));
        let miss = HeaderMatch::of(FieldMatch::NwDst(prefix("10.0.0.0/8")));
        let mods = [Mod::SetNwDst(ip("74.125.224.161"))];
        assert!(HeaderMatch::any().seq_compose(&mods, &hit).is_some());
        assert!(HeaderMatch::any().seq_compose(&mods, &miss).is_none());
    }

    #[test]
    fn seq_compose_intersects_with_self_match() {
        // Original match dstport=80 composed with downstream srcport=9 keeps both.
        let m1 = HeaderMatch::of(FieldMatch::TpDst(80));
        let m2 = HeaderMatch::of(FieldMatch::TpSrc(9));
        let c = m1.seq_compose(&[Mod::SetLoc(port(5))], &m2).unwrap();
        assert_eq!(c.tp_dst, Some(80));
        assert_eq!(c.tp_src, Some(9));
        // And a conflicting downstream constraint on an unmodified field is empty.
        let m3 = HeaderMatch::of(FieldMatch::TpDst(443));
        assert!(m1.seq_compose(&[Mod::SetLoc(port(5))], &m3).is_none());
    }

    #[test]
    fn debug_format_is_compact() {
        let m = HeaderMatch::of(FieldMatch::TpDst(80)).and(FieldMatch::NwDst(prefix("10.0.0.0/8")));
        let s = format!("{m:?}");
        assert!(s.contains("dstport=80"));
        assert!(s.contains("dstip=10.0.0.0/8"));
        assert_eq!(format!("{:?}", HeaderMatch::any()), "*");
    }
}
