//! # sdx-net — foundational network types for the SDX reproduction
//!
//! This crate provides the ground-level vocabulary shared by every other
//! crate in the workspace:
//!
//! * [`Ipv4Addr`] and [`Prefix`] — IPv4 addresses and CIDR prefixes with the
//!   set operations (containment, overlap, enumeration) that the SDX
//!   forwarding-equivalence-class machinery needs.
//! * [`MacAddr`] — Ethernet addresses, including the *virtual MAC* (VMAC)
//!   encoding the SDX uses as its data-plane tag (§4.2 of the paper).
//! * [`PrefixTrie`] — a binary trie keyed by prefix supporting exact match,
//!   longest-prefix match, and ordered iteration. This is the backing store
//!   for every RIB and FIB in the workspace.
//! * [`Packet`] / [`LocatedPacket`] — the concrete packet-header model that
//!   policies are evaluated against, mirroring Pyretic's "located packet".
//! * [`flowspace`] — header-space style reasoning: which sets of packets a
//!   match covers, whether two matches overlap, intersection of matches.
//!   This underpins both classifier composition and the "most SDX policies
//!   are disjoint" compile-time optimization (§4.3.1).
//! * [`wire`] — Ethernet II / IPv4 / ARP frame encoding with RFC 1071
//!   checksums, so the packet model has a real on-the-wire form.
//!
//! The types are deliberately plain data: no I/O, no interior mutability,
//! fully deterministic — in the spirit of event-driven network stacks such
//! as smoltcp, everything here is testable without a network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod flowspace;
pub mod ipv4;
pub mod mac;
pub mod packet;
pub mod trie;
pub mod wire;

pub use asn::{Asn, ParticipantId, PortId, RouterId};
pub use flowspace::{FieldMatch, HeaderMatch, Mod};
pub use ipv4::{ip, prefix, Ipv4Addr, Prefix, PrefixParseError};
pub use mac::MacAddr;
pub use packet::{EtherType, IpProto, LocatedPacket, Location, Packet};
pub use trie::PrefixTrie;
pub use wire::{decode_frame, encode_frame, ArpFrame, FrameError};
