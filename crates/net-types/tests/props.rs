//! Property-based tests for the foundational types.
//!
//! These pin down the algebraic laws the rest of the workspace relies on:
//! the trie agrees with a linear scan, prefix set-operations behave like set
//! operations, and header-match intersection is a true set intersection.

use proptest::prelude::*;
use sdx_net::flowspace::{FieldMatch, HeaderMatch, Mod};
use sdx_net::ipv4::{Ipv4Addr, Prefix};
use sdx_net::mac::MacAddr;
use sdx_net::packet::{EtherType, IpProto, LocatedPacket, Packet};
use sdx_net::trie::PrefixTrie;
use sdx_net::{ParticipantId, PortId};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr(a), l))
}

fn arb_port() -> impl Strategy<Value = PortId> {
    prop_oneof![
        (0u32..8, 0u8..3).prop_map(|(p, i)| PortId::Phys(ParticipantId(p), i)),
        (0u32..8).prop_map(|p| PortId::Virt(ParticipantId(p))),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(IpProto::Tcp), Just(IpProto::Udp), Just(IpProto::Icmp)],
        0u32..64,
        0u32..64,
    )
        .prop_map(|(s, d, ts, td, proto, ms, md)| {
            let mut p = Packet::tcp(s, d, ts, td);
            p.nw_proto = proto;
            p.dl_src = MacAddr::physical(ms);
            p.dl_dst = MacAddr::vmac(md);
            p
        })
}

fn arb_located() -> impl Strategy<Value = LocatedPacket> {
    (arb_port(), arb_packet()).prop_map(|(l, p)| LocatedPacket::at(l, p))
}

fn arb_field() -> impl Strategy<Value = FieldMatch> {
    prop_oneof![
        arb_port().prop_map(FieldMatch::InPort),
        arb_prefix().prop_map(FieldMatch::NwSrc),
        arb_prefix().prop_map(FieldMatch::NwDst),
        (0u16..2048).prop_map(FieldMatch::TpSrc),
        (0u16..2048).prop_map(FieldMatch::TpDst),
        prop_oneof![Just(IpProto::Tcp), Just(IpProto::Udp)].prop_map(FieldMatch::NwProto),
        prop_oneof![Just(EtherType::Ipv4), Just(EtherType::Arp)].prop_map(FieldMatch::EthType),
        (0u32..16).prop_map(|i| FieldMatch::DlDst(MacAddr::vmac(i))),
    ]
}

fn arb_match() -> impl Strategy<Value = HeaderMatch> {
    proptest::collection::vec(arb_field(), 0..4).prop_map(|fs| {
        let mut m = HeaderMatch::any();
        for f in fs {
            m.set(f);
        }
        m
    })
}

fn arb_mods() -> impl Strategy<Value = Vec<Mod>> {
    proptest::collection::vec(
        prop_oneof![
            arb_port().prop_map(Mod::SetLoc),
            arb_addr().prop_map(Mod::SetNwSrc),
            arb_addr().prop_map(Mod::SetNwDst),
            (0u16..2048).prop_map(Mod::SetTpDst),
            (0u32..16).prop_map(|i| Mod::SetDlDst(MacAddr::vmac(i))),
        ],
        0..4,
    )
}

proptest! {
    /// Trie LPM agrees with a brute-force linear scan.
    #[test]
    fn trie_lpm_matches_linear_scan(
        entries in proptest::collection::vec(arb_prefix(), 0..64),
        probes in proptest::collection::vec(arb_addr(), 0..32),
    ) {
        let trie: PrefixTrie<usize> =
            entries.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        // Deduplicate like the trie does (later insert wins).
        let mut dedup: Vec<(Prefix, usize)> = Vec::new();
        for (i, p) in entries.iter().enumerate() {
            if let Some(e) = dedup.iter_mut().find(|(q, _)| q == p) {
                e.1 = i;
            } else {
                dedup.push((*p, i));
            }
        }
        prop_assert_eq!(trie.len(), dedup.len());
        for a in probes {
            let expect = dedup
                .iter()
                .filter(|(p, _)| p.contains(a))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (*p, v));
            let got = trie.lookup(a);
            prop_assert_eq!(got.map(|(p, v)| (p, *v)), expect.map(|(p, v)| (p, *v)));
        }
    }

    /// Trie exact get/remove agree with membership.
    #[test]
    fn trie_get_remove(entries in proptest::collection::vec(arb_prefix(), 0..40)) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        for p in &entries {
            prop_assert!(trie.get(*p).is_some());
        }
        for p in &entries {
            trie.remove(*p);
            prop_assert!(trie.get(*p).is_none());
        }
        prop_assert!(trie.is_empty());
    }

    /// Trie iteration is sorted and covers exactly the inserted set.
    #[test]
    fn trie_iteration_sorted(entries in proptest::collection::vec(arb_prefix(), 0..40)) {
        let trie: PrefixTrie<()> = entries.iter().map(|p| (*p, ())).collect();
        let keys: Vec<_> = trie.keys().collect();
        let mut expect: Vec<_> = entries.clone();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(keys, expect);
    }

    /// Prefix containment is equivalent to first/last interval containment.
    #[test]
    fn prefix_covers_iff_interval(a in arb_prefix(), b in arb_prefix()) {
        let interval = a.first() <= b.first() && b.last() <= a.last();
        prop_assert_eq!(a.covers(b), interval);
    }

    /// Prefix intersect is the exact set intersection (checked on samples).
    #[test]
    fn prefix_intersect_sound(a in arb_prefix(), b in arb_prefix(), probe in arb_addr()) {
        match a.intersect(b) {
            Some(i) => {
                prop_assert_eq!(i.contains(probe), a.contains(probe) && b.contains(probe));
            }
            None => {
                prop_assert!(!(a.contains(probe) && b.contains(probe)));
            }
        }
    }

    /// HeaderMatch intersection is the exact set intersection.
    #[test]
    fn match_intersection_sound(a in arb_match(), b in arb_match(), lp in arb_located()) {
        match a.intersect(&b) {
            Some(i) => prop_assert_eq!(i.matches(&lp), a.matches(&lp) && b.matches(&lp)),
            None => prop_assert!(!(a.matches(&lp) && b.matches(&lp))),
        }
    }

    /// Intersection is commutative as a set (membership-wise).
    #[test]
    fn match_intersection_commutes(a in arb_match(), b in arb_match(), lp in arb_located()) {
        let ab = a.intersect(&b).map(|m| m.matches(&lp)).unwrap_or(false);
        let ba = b.intersect(&a).map(|m| m.matches(&lp)).unwrap_or(false);
        prop_assert_eq!(ab, ba);
    }

    /// Subsumption implies membership implication.
    #[test]
    fn match_subsumption_sound(a in arb_match(), b in arb_match(), lp in arb_located()) {
        if a.subsumes(&b) && b.matches(&lp) {
            prop_assert!(a.matches(&lp));
        }
    }

    /// The intersection is subsumed by both operands — together with
    /// [`match_intersection_sound`] this is the candidate-merge law the
    /// compiled data-plane matcher leans on: a bucket keyed by a refined
    /// pattern only ever holds rules whose full pattern still covers it.
    #[test]
    fn match_intersect_subsumed_by_operands(a in arb_match(), b in arb_match()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.subsumes(&i));
            prop_assert!(b.subsumes(&i));
        }
    }

    /// Subsumption is reflexive and transitive (a partial order on
    /// patterns), so priority-sorted candidate buckets can prune against
    /// the best-so-far without re-checking dominated patterns.
    #[test]
    fn match_subsumption_is_a_preorder(a in arb_match(), b in arb_match(), c in arb_match()) {
        prop_assert!(a.subsumes(&a));
        if a.subsumes(&b) && b.subsumes(&c) {
            prop_assert!(a.subsumes(&c));
        }
    }

    /// When `a` subsumes `b`, intersecting changes nothing: `a ∩ b`
    /// exists and matches exactly the packets `b` does.
    #[test]
    fn match_subsumed_intersection_is_identity(
        a in arb_match(),
        b in arb_match(),
        lp in arb_located(),
    ) {
        if a.subsumes(&b) {
            let i = a.intersect(&b);
            prop_assert!(i.is_some(), "a ⊇ b but a ∩ b = ∅");
            prop_assert_eq!(i.unwrap().matches(&lp), b.matches(&lp));
        }
    }

    /// `for_each_match` visits exactly the stored prefixes containing the
    /// address, least-specific first — the covering-set walk the compiled
    /// matcher's nw_dst index uses.
    #[test]
    fn trie_for_each_match_is_covering_set(
        entries in proptest::collection::vec(arb_prefix(), 0..48),
        probe in arb_addr(),
    ) {
        let trie: PrefixTrie<usize> =
            entries.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut got = Vec::new();
        trie.for_each_match(probe, |v| got.push(*v));
        let mut expect: Vec<(Prefix, usize)> = trie
            .iter()
            .filter(|(p, _)| p.contains(probe))
            .map(|(p, v)| (p, *v))
            .collect();
        expect.sort_by_key(|(p, _)| p.len());
        prop_assert_eq!(got, expect.into_iter().map(|(_, v)| v).collect::<Vec<_>>());
    }

    /// seq_compose is exactly "match m1, apply mods, match m2".
    #[test]
    fn seq_compose_sound(
        m1 in arb_match(),
        mods in arb_mods(),
        m2 in arb_match(),
        lp in arb_located(),
    ) {
        let mut after = lp;
        for m in &mods {
            m.apply(&mut after);
        }
        let direct = m1.matches(&lp) && m2.matches(&after);
        let composed = m1
            .seq_compose(&mods, &m2)
            .map(|m| m.matches(&lp))
            .unwrap_or(false);
        prop_assert_eq!(composed, direct);
    }

    /// Prefix text roundtrip.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        prop_assert_eq!(s.parse::<Prefix>().unwrap(), p);
    }

    /// MAC text roundtrip.
    #[test]
    fn mac_display_parse_roundtrip(bytes in any::<[u8; 6]>()) {
        let m = MacAddr(bytes);
        prop_assert_eq!(m.to_string().parse::<MacAddr>().unwrap(), m);
    }

    /// Ethernet/IPv4 frame roundtrip for TCP and UDP packets.
    #[test]
    fn frame_roundtrip(pkt in arb_packet(), len in 0u32..512, udp in any::<bool>()) {
        let mut p = pkt;
        p.payload_len = len;
        p.nw_proto = if udp { IpProto::Udp } else { IpProto::Tcp };
        p.eth_type = EtherType::Ipv4;
        let frame = sdx_net::wire::encode_frame(&p);
        prop_assert_eq!(sdx_net::wire::decode_frame(&frame).unwrap(), p);
    }

    /// The frame decoder never panics on arbitrary bytes.
    #[test]
    fn frame_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = sdx_net::wire::decode_frame(&bytes);
        let _ = sdx_net::wire::decode_arp(&bytes);
    }

    /// Any single-byte corruption of the IPv4 header is caught by the
    /// checksum (or changes the packet in a detectable way).
    #[test]
    fn header_corruption_detected(pkt in arb_packet(), byte in 14usize..34, flip in 1u8..=255) {
        let mut p = pkt;
        p.eth_type = EtherType::Ipv4;
        p.payload_len = 0;
        let mut frame = sdx_net::wire::encode_frame(&p);
        frame[byte] ^= flip;
        match sdx_net::wire::decode_frame(&frame) {
            Err(_) => {} // rejected: good
            Ok(decoded) => prop_assert_ne!(decoded, p, "silent corruption"),
        }
    }
}
