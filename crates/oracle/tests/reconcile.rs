//! Oracle coverage for the reconciliation fallback: when midpoint
//! insertion exhausts a priority gap and `diff_base_table` falls back to
//! a full rebase (`reconcile.rebase.count`), the patched table must stay
//! packet-equivalent to a from-scratch install of the same classifier.

use sdx_bgp::route_server::ExportPolicy;
use sdx_core::controller::SdxController;
use sdx_core::participant::ParticipantConfig;
use sdx_net::{prefix, FieldMatch, ParticipantId, PortId};
use sdx_oracle::{synth, FabricEvaluator};
use sdx_policy::Policy as P;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

#[test]
fn gap_exhaustion_rebase_is_oracle_equivalent() {
    // Figure-4a-shaped fixture: A and B announce the same prefix, C
    // steers selected ports via B.
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1);
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c, ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(1), &a.announce([prefix("54.0.0.0/8")], &[65001, 7]));
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("54.0.0.0/8")], &[65002, 9, 7]));
    let mut fabric = ctl.deploy().expect("deploy");

    let rebases_before = ctl.telemetry.counter("reconcile.rebase.count").get();
    let mut exhausted_at = None;
    // Each round appends one port clause to C's outbound policy. The new
    // clause's rules always insert into the gap below the previous
    // clause's rules, so successive reoptimizations halve the same gap —
    // the crafted priority band that forces midpoint exhaustion.
    for round in 0..40u16 {
        let mut policy = P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)));
        for i in 0..=round {
            policy =
                policy + (P::match_(FieldMatch::TpDst(5000 + i)) >> P::fwd(PortId::Virt(pid(2))));
        }
        ctl.set_outbound(pid(3), Some(policy));
        ctl.reoptimize(&mut fabric).expect("reoptimize");

        // Patched ≡ scratch, via the oracle's two classifier stages: the
        // deployed-table walk against the pristine-classifier walk, over
        // the full probe grid.
        let report = ctl.report.as_ref().expect("report");
        let deployed =
            FabricEvaluator::over_table(&ctl.compiler, &ctl.rs, report, fabric.switch.table());
        let pristine = FabricEvaluator::new(&ctl.compiler, &ctl.rs, report);
        for (from, pkt) in synth::probe_grid(&ctl.compiler, &ctl.rs) {
            let (got, trace) = deployed.verdict(from, &pkt);
            let (want, _) = pristine.verdict(from, &pkt);
            assert_eq!(
                got,
                want,
                "round {round}: patched table diverged from scratch compile \
                 for probe from {from} (dst {}, dport {})\n{}",
                pkt.nw_dst,
                pkt.tp_dst,
                trace.render()
            );
        }

        let rebases = ctl.telemetry.counter("reconcile.rebase.count").get();
        if rebases > rebases_before {
            exhausted_at = Some((round, rebases - rebases_before));
            break;
        }
    }
    let (round, rebases) =
        exhausted_at.expect("40 rounds of same-gap policy growth must exhaust a midpoint gap");
    assert!(rebases >= 1, "the fallback must be counted");
    assert!(
        round >= 5,
        "rebase at round {round}: midpoint insertion should absorb early rounds minimally"
    );
}
