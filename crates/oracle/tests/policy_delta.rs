//! Oracle coverage for the policy lifecycle: a table patched by
//! [`PolicyDelta`]s must be packet-equivalent to a from-scratch deploy of
//! the same final policy state, and the spec interpreter — which reads
//! the *versioned* policy store — must agree with the patched fabric at
//! every step. This is the differential closing the loop on incremental
//! policy compilation: no residue from the pre-delta policies may survive
//! in the deployed table.

use sdx_bgp::route_server::ExportPolicy;
use sdx_core::controller::SdxController;
use sdx_core::participant::ParticipantConfig;
use sdx_core::shard::Sharding;
use sdx_net::{prefix, FieldMatch, ParticipantId, PortId};
use sdx_oracle::{synth, Differential, FabricEvaluator};
use sdx_policy::{Policy as P, PolicyDelta};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// Four participants, two prefixes, C steering web traffic via B.
fn participants() -> Vec<ParticipantConfig> {
    vec![
        ParticipantConfig::new(1, 65001, 1),
        ParticipantConfig::new(2, 65002, 2),
        ParticipantConfig::new(3, 65003, 1)
            .with_outbound(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
        ParticipantConfig::new(4, 65004, 1),
    ]
}

fn seeded_controller() -> SdxController {
    let mut ctl = SdxController::new();
    let cfgs = participants();
    for cfg in &cfgs {
        ctl.add_participant(cfg.clone(), ExportPolicy::allow_all());
    }
    ctl.rs.process_update(
        pid(1),
        &cfgs[0].announce([prefix("54.0.0.0/8")], &[65001, 7]),
    );
    ctl.rs.process_update(
        pid(2),
        &cfgs[1].announce([prefix("54.0.0.0/8")], &[65002, 9, 7]),
    );
    ctl.rs.process_update(
        pid(2),
        &cfgs[1].announce([prefix("91.0.0.0/8")], &[65002, 11]),
    );
    ctl.rs.process_update(
        pid(4),
        &cfgs[3].announce([prefix("91.0.0.0/8")], &[65004, 5, 11]),
    );
    ctl
}

#[test]
fn policy_deltas_patch_to_the_from_scratch_table() {
    let mut ctl = seeded_controller();
    ctl.set_sharding(Sharding::Shards(4));
    let mut fabric = ctl.deploy().expect("deploy");
    ctl.reoptimize(&mut fabric).expect("sharded warmup");

    // A sequence of lifecycle events: replace, install (a participant
    // that never had a policy), inbound install, retract.
    let steps: Vec<PolicyDelta> = vec![
        PolicyDelta::new().replace_outbound(
            pid(3),
            (P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(1))))
                + (P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(pid(2)))),
        ),
        PolicyDelta::new().install_outbound(
            pid(1),
            P::match_(FieldMatch::NwDst(prefix("91.0.0.0/8"))) >> P::fwd(PortId::Virt(pid(4))),
        ),
        PolicyDelta::new().install_inbound(
            pid(2),
            (P::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1"))) >> P::fwd(PortId::Phys(pid(2), 1)))
                + (P::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1")))
                    >> P::fwd(PortId::Phys(pid(2), 2))),
        ),
        PolicyDelta::new()
            .retract_outbound(pid(3))
            .retract_inbound(pid(2)),
    ];

    for (i, delta) in steps.iter().enumerate() {
        ctl.apply_policy_delta(delta, &mut fabric)
            .unwrap_or_else(|e| panic!("step {i}: {e}"));

        // 1. Spec interpreter (versioned policy store) vs the compiled
        //    fabric model: packet-level agreement after the delta.
        let report = ctl.report.as_ref().expect("report");
        let diff = Differential::new(&ctl.compiler, &ctl.rs, report);
        let probes = synth::probe_grid(&ctl.compiler, &ctl.rs);
        diff.check_all(&probes)
            .unwrap_or_else(|m| panic!("step {i}: {m}"));

        // 2. The *deployed* (reconcile-patched) table vs a pristine
        //    install of the same classifier: no patching residue.
        let deployed =
            FabricEvaluator::over_table(&ctl.compiler, &ctl.rs, report, fabric.switch.table());
        let pristine = FabricEvaluator::new(&ctl.compiler, &ctl.rs, report);
        for (from, pkt) in &probes {
            let (got, trace) = deployed.verdict(*from, pkt);
            let (want, _) = pristine.verdict(*from, pkt);
            assert_eq!(
                got,
                want,
                "step {i}: patched table diverges\n{}",
                trace.render()
            );
        }

        // 3. A from-scratch controller with the same final policy state:
        //    the patched fabric and the cold deploy forward identically.
        let mut cold = seeded_controller();
        for (p, cfg) in ctl.compiler.participants() {
            cold.set_outbound(*p, cfg.outbound.clone());
            cold.set_inbound(*p, cfg.inbound.clone());
        }
        cold.set_sharding(Sharding::Shards(4));
        let mut cold_fabric = cold.deploy().expect("cold deploy");
        for (from, pkt) in &probes {
            let warm: Vec<_> = fabric.send(*from, *pkt);
            let scratch: Vec<_> = cold_fabric.send(*from, *pkt);
            assert_eq!(
                warm.len(),
                scratch.len(),
                "step {i}: fan-out differs for {pkt:?} in at {from}"
            );
            for (w, s) in warm.iter().zip(scratch.iter()) {
                assert_eq!((w.loc, w.pkt), (s.loc, s.pkt), "step {i}: {pkt:?}");
            }
        }
    }
}
