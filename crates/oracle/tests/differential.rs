//! The differential suite: spec interpreter vs compiled fabric.
//!
//! Three tiers of evidence, cheapest first:
//!
//! 1. **Fixtures** — the Figure 1 exchange, probed exhaustively, with the
//!    paper's headline behaviours spot-asserted on the *agreed* verdicts.
//! 2. **Deployed cross-check** — the emulated data plane (`Fabric::send`,
//!    with real border routers and an ARP responder) must agree with the
//!    agreed oracle verdict, tying the oracle's fabric model to the
//!    actual packet-pushing machinery.
//! 3. **Property fuzzing** — random exchanges and packets from seeds,
//!    shrunk by proptest to a single integer on failure, plus a
//!    loop-freedom assertion on every fabric walk.
//!
//! And one sabotage test: flipping the compiler's
//! `break_consistency_filter` knob must make the harness fail with a
//! per-stage trace that names the consistency stage.

use proptest::prelude::*;
use sdx_bgp::route_server::RouteServer;
use sdx_core::compiler::CompileReport;
use sdx_core::vnh::VnhAllocator;
use sdx_core::SdxCompiler;
use sdx_ixp::testkit;
use sdx_net::{Ipv4Addr, Packet, ParticipantId, PortId};
use sdx_oracle::{synth, Differential, Outcome};
use sdx_telemetry::{Event, Registry};

fn compiled(
    mut compiler: SdxCompiler,
    rs: RouteServer,
) -> (SdxCompiler, RouteServer, CompileReport) {
    let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
    let report = compiler.compile_all(&rs, &mut vnh).expect("compiles");
    (compiler, rs, report)
}

fn a1() -> PortId {
    PortId::Phys(ParticipantId(1), 1)
}

#[test]
fn figure1_grid_agrees_and_matches_the_paper() {
    let (compiler, rs) = testkit::figure1_compiler();
    let (compiler, rs, report) = compiled(compiler, rs);
    let diff = Differential::new(&compiler, &rs, &report);

    // Exhaustive grid: every port x every announced prefix (+ one
    // unroutable) x low/high sources x the clause ports. Any mismatch
    // fails here with both traces rendered. Agreement also proves loop
    // freedom: the spec side never produces NonTerminating, so an agreed
    // verdict can't be one.
    let probes = synth::probe_grid(&compiler, &rs);
    let delivered = diff.check_all(&probes).unwrap_or_else(|m| panic!("{m}"));
    assert!(delivered > 0, "grid must exercise real deliveries");

    let verdict = |src: Ipv4Addr, dst: Ipv4Addr, dport: u16| {
        diff.check(a1(), &Packet::tcp(src, dst, 4321, dport))
            .unwrap_or_else(|m| panic!("{m}"))
    };
    let low = Ipv4Addr::new(9, 0, 0, 1);
    let high = Ipv4Addr::new(200, 0, 0, 1);
    let p1 = Ipv4Addr::new(10, 0, 0, 9);
    let b1 = PortId::Phys(ParticipantId(2), 1);
    let b2 = PortId::Phys(ParticipantId(2), 2);
    let c1 = PortId::Phys(ParticipantId(3), 1);
    let d1 = PortId::Phys(ParticipantId(4), 1);

    // A's web traffic goes via B, split by B's inbound TE policy.
    assert_eq!(
        verdict(low, p1, 80),
        Outcome::Deliver {
            port: b1,
            nw_dst: p1
        }
    );
    assert_eq!(
        verdict(high, p1, 80),
        Outcome::Deliver {
            port: b2,
            nw_dst: p1
        }
    );
    // A's HTTPS traffic goes via C.
    assert_eq!(
        verdict(low, p1, 443),
        Outcome::Deliver {
            port: c1,
            nw_dst: p1
        }
    );
    // Unpolicied traffic follows BGP best (C's shorter path for p1).
    assert_eq!(
        verdict(low, p1, 22),
        Outcome::Deliver {
            port: c1,
            nw_dst: p1
        }
    );
    // B hides 40/8 from A, so A's web clause toward B is *inconsistent*
    // for p4 and must fall back to the BGP default via C.
    let p4 = Ipv4Addr::new(40, 0, 0, 9);
    assert_eq!(
        verdict(low, p4, 80),
        Outcome::Deliver {
            port: c1,
            nw_dst: p4
        }
    );
    // p5 is announced only by D.
    let p5 = Ipv4Addr::new(50, 0, 0, 9);
    assert_eq!(
        verdict(low, p5, 80),
        Outcome::Deliver {
            port: d1,
            nw_dst: p5
        }
    );
    // Unrouted destinations never enter the fabric.
    let dark = Ipv4Addr::new(203, 0, 113, 9);
    assert_eq!(verdict(low, dark, 80), Outcome::Drop);
}

#[test]
fn deployed_fabric_agrees_with_the_oracle_verdict() {
    // Three-way cross-check: spec interpreter == fabric evaluator (the
    // oracle pair) == the actual emulated data plane with border routers
    // and ARP. `figure1_compiler` builds the same exchange the controller
    // deploys.
    let mut ctl = testkit::figure1_controller();
    let mut fabric = ctl.deploy().expect("deploys");
    let report = ctl.report.clone().expect("deploy stores the report");
    let diff = Differential::new(&ctl.compiler, &ctl.rs, &report);

    let probes = synth::probe_grid(&ctl.compiler, &ctl.rs);
    let mut delivered = 0;
    for (from, pkt) in probes {
        let agreed = diff.check(from, &pkt).unwrap_or_else(|m| panic!("{m}"));
        let sent = fabric.send(from, pkt);
        let wire = match sent.len() {
            0 => Outcome::Drop,
            1 => Outcome::Deliver {
                port: sent[0].loc,
                nw_dst: sent[0].pkt.nw_dst,
            },
            _ => Outcome::Multi(sent.iter().map(|d| (d.loc, d.pkt.nw_dst)).collect()),
        };
        assert_eq!(
            agreed, wire,
            "oracle and deployed fabric disagree for {pkt:?} in at {from}"
        );
        if matches!(agreed, Outcome::Deliver { .. }) {
            delivered += 1;
        }
    }
    assert!(delivered > 0);
    assert_eq!(fabric.stuck_at_virtual, 0);
}

#[test]
fn ixp50_workload_agrees_on_sampled_probes() {
    let (compiler, rs) = testkit::ixp50();
    let (compiler, rs, report) = compiled(compiler, rs);
    let diff = Differential::new(&compiler, &rs, &report);
    let probes = synth::sample_probes(&compiler, &rs, 50, 400);
    let delivered = diff.check_all(&probes).unwrap_or_else(|m| panic!("{m}"));
    assert!(
        delivered > 0,
        "sampled probes must exercise real deliveries"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: for a random IXP (participants, RIBs,
    /// export filters, outbound/inbound policies) and random packets, the
    /// reference interpreter and the compiled fabric agree — and no
    /// fabric walk loops.
    #[test]
    fn random_exchanges_agree(seed in 0u32..u32::MAX) {
        let mut ex = synth::exchange(seed as u64);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        let report = ex
            .compiler
            .compile_all(&ex.rs, &mut vnh)
            .expect("generated exchanges stay inside compilable shapes");
        let diff = Differential::new(&ex.compiler, &ex.rs, &report);
        for (from, pkt) in synth::packets(&ex, seed as u64, 40) {
            match diff.check(from, &pkt) {
                Ok(outcome) => prop_assert!(
                    outcome != Outcome::NonTerminating,
                    "agreed on a forwarding loop?!"
                ),
                Err(m) => prop_assert!(false, "seed {seed}: {m}"),
            }
        }
    }

    /// Wide-match companion: the same agreement property over the *wide*
    /// policy universe — whole-/16 range matches with wildcard transport
    /// ports, nested /24 sub-ranges, source-half refinements, and
    /// sequential modify chains (`SetTpSrc >> SetTpDst >> fwd`). These are
    /// the shapes the port-keyed generator never emits, so they regress
    /// on their own seed stream.
    #[test]
    fn wide_match_exchanges_agree(seed in 0u32..u32::MAX) {
        let mut ex = synth::exchange_wide(seed as u64);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        let report = ex
            .compiler
            .compile_all(&ex.rs, &mut vnh)
            .expect("wide exchanges stay inside compilable shapes");
        let diff = Differential::new(&ex.compiler, &ex.rs, &report);
        for (from, pkt) in synth::packets(&ex, seed as u64, 40) {
            match diff.check(from, &pkt) {
                Ok(outcome) => prop_assert!(
                    outcome != Outcome::NonTerminating,
                    "agreed on a forwarding loop?!"
                ),
                Err(m) => prop_assert!(false, "wide seed {seed}: {m}"),
            }
        }
    }
}

/// Pinned wide-generator seeds, one per clause shape (found by sweeping
/// the generator and inspecting which arm each seed draws): bare /16
/// range, nested /24 sub-range, source-half refinement, modify chain,
/// and the single-clause wildcard-destination policy. Kept as an
/// explicit test (not just `.proptest-regressions`) so the coverage is
/// visible and survives a regression-file wipe.
#[test]
fn wide_generator_pinned_seeds_agree() {
    for seed in [0u64, 1, 2, 3, 5, 8, 13, 21, 34, 55] {
        let mut ex = synth::exchange_wide(seed);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        let report = ex
            .compiler
            .compile_all(&ex.rs, &mut vnh)
            .unwrap_or_else(|e| panic!("wide seed {seed} failed to compile: {e}"));
        let diff = Differential::new(&ex.compiler, &ex.rs, &report);
        for (from, pkt) in synth::packets(&ex, seed, 60) {
            if let Err(m) = diff.check(from, &pkt) {
                panic!("wide seed {seed}: {m}");
            }
        }
    }
}

#[test]
fn sabotaged_compiler_is_caught_with_a_readable_trace() {
    // Flip the intentionally-broken knob: the compiler joins policies
    // with *announced* routes instead of *exported* routes, silently
    // honouring A's `fwd(B)` for the prefix B hid from A.
    let (mut compiler, rs) = testkit::figure1_compiler();
    compiler.options.break_consistency_filter = true;
    let (compiler, rs, report) = compiled(compiler, rs);
    let diff = Differential::new(&compiler, &rs, &report);

    let probes = synth::probe_grid(&compiler, &rs);
    let mismatch = diff
        .check_all(&probes)
        .expect_err("the sabotaged consistency filter must be detected");

    // The counterexample renders a per-stage, side-by-side story...
    let msg = mismatch.to_string();
    assert!(msg.contains("oracle mismatch"), "got: {msg}");
    assert!(msg.contains("spec says:"), "got: {msg}");
    assert!(msg.contains("fabric says:"), "got: {msg}");
    assert!(msg.contains("[spec] "), "got: {msg}");
    assert!(msg.contains("[fabric] "), "got: {msg}");
    assert!(
        msg.contains("consistency"),
        "the spec trace should name the consistency stage: {msg}"
    );

    // ...and mirrors into the telemetry journal for replay tooling.
    let reg = Registry::new();
    mismatch.emit(&reg);
    let entries = reg.journal().entries();
    assert!(entries.iter().any(|e| matches!(
        &e.event,
        Event::Custom { name, .. } if name == "oracle.mismatch"
    )));
    assert!(entries.iter().any(|e| matches!(
        &e.event,
        Event::Custom { name, .. } if name.starts_with("oracle.spec.")
    )));
    assert!(entries.iter().any(|e| matches!(
        &e.event,
        Event::Custom { name, .. } if name.starts_with("oracle.fabric.")
    )));
}
