//! Per-wave verification of scheduled updates: the oracle as the
//! scheduler's safety net.
//!
//! `sdx_core::schedule` plans a reconciliation batch into dependency-
//! ordered waves whose *intent* is per-packet consistency: at any point
//! between waves, every packet is handled either the pre-update way or
//! the post-update way, and never loops. This module checks that intent
//! against the deployed artifact. An [`UpdateVerifier`] freezes a probe
//! corpus and each probe's pre- and post-update outcome (both evaluated
//! under the *new* control plane — the scheduled path flips ARP/FIB
//! before the first wave lands), and then, after every wave, replays the
//! corpus over the live intermediate table:
//!
//! * an outcome of [`Outcome::NonTerminating`] — a forwarding loop the
//!   wave introduced — fails the wave;
//! * an outcome that matches neither the probe's pre- nor post-update
//!   outcome — a transient state neither configuration ever prescribed —
//!   fails the wave.
//!
//! A failed wave surfaces as [`SdxError::UnsafeSchedule`] with the
//! probe's stage-by-stage trace as the counterexample, and the driver
//! rolls the offending wave back, parking the fabric in the last
//! verified-safe state. [`reoptimize_verified`] wires the whole thing
//! into the controller's scheduled-update flow.

use std::time::Instant;

use sdx_bgp::route_server::RouteServer;
use sdx_core::compiler::{CompileReport, SdxCompiler};
use sdx_core::schedule::{drive, ScheduleOpts, ScheduleReport, UpdatePlan};
use sdx_core::{SdxController, SdxError};
use sdx_net::{Packet, PortId};
use sdx_openflow::fabric::Fabric;
use sdx_openflow::table::FlowTable;

use crate::{FabricEvaluator, Outcome};

/// A frozen probe corpus with the pre- and post-update outcome of every
/// probe, ready to judge intermediate tables.
pub struct UpdateVerifier {
    probes: Vec<(PortId, Packet)>,
    pre: Vec<Outcome>,
    post: Vec<Outcome>,
}

impl UpdateVerifier {
    /// Builds a verifier for an update that will take `pre_table` to the
    /// table produced by applying `plan`'s waves, all evaluated under
    /// `report` (the **new** compilation — the control plane the
    /// scheduled path has already flipped to). Returns an error if the
    /// plan's waves do not even apply cleanly to a copy of `pre_table`,
    /// since then there is no well-defined post state to verify against.
    pub fn new(
        compiler: &SdxCompiler,
        rs: &RouteServer,
        report: &CompileReport,
        pre_table: &FlowTable,
        plan: &UpdatePlan,
        probes: Vec<(PortId, Packet)>,
    ) -> Result<Self, SdxError> {
        let mut post_table = pre_table.clone();
        for (i, wave) in plan.waves.iter().enumerate() {
            post_table.apply_batch(wave).map_err(|e| {
                SdxError::InvalidCommit(format!(
                    "planned wave {i} does not apply to the pre-update table: {e}"
                ))
            })?;
        }
        let pre = outcomes(compiler, rs, report, pre_table, &probes);
        let post = outcomes(compiler, rs, report, &post_table, &probes);
        Ok(UpdateVerifier { probes, pre, post })
    }

    /// Number of probes in the corpus.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Judges one intermediate `table`: every probe must terminate and
    /// land on its pre- or post-update outcome. On violation, returns a
    /// counterexample naming the probe, both endpoint outcomes, the
    /// outcome actually observed, and the fabric walk's trace.
    pub fn check_table(
        &self,
        compiler: &SdxCompiler,
        rs: &RouteServer,
        report: &CompileReport,
        table: &FlowTable,
        wave: usize,
    ) -> Result<(), String> {
        let eval = FabricEvaluator::over_table(compiler, rs, report, table);
        for (i, (from, pkt)) in self.probes.iter().enumerate() {
            let (got, trace) = eval.verdict(*from, pkt);
            let looped = got == Outcome::NonTerminating;
            if !looped && (got == self.pre[i] || got == self.post[i]) {
                continue;
            }
            let kind = if looped {
                "forwarding loop"
            } else {
                "transient outcome neither pre nor post"
            };
            return Err(format!(
                "wave {wave}: {kind} for probe #{i} (from {from}, dst {dst}, dport {dport}):\n  \
                 pre:  {pre}\n  post: {post}\n  got:  {got}\n{trace}",
                dst = pkt.nw_dst,
                dport = pkt.tp_dst,
                pre = self.pre[i],
                post = self.post[i],
                trace = trace.render(),
            ));
        }
        Ok(())
    }

    /// Counts, without failing, how many probes a table violates — the
    /// measurement the unordered-ablation bench reports.
    pub fn count_violations(
        &self,
        compiler: &SdxCompiler,
        rs: &RouteServer,
        report: &CompileReport,
        table: &FlowTable,
    ) -> usize {
        let eval = FabricEvaluator::over_table(compiler, rs, report, table);
        self.probes
            .iter()
            .enumerate()
            .filter(|(i, (from, pkt))| {
                let (got, _) = eval.verdict(*from, pkt);
                got == Outcome::NonTerminating || (got != self.pre[*i] && got != self.post[*i])
            })
            .count()
    }
}

fn outcomes(
    compiler: &SdxCompiler,
    rs: &RouteServer,
    report: &CompileReport,
    table: &FlowTable,
    probes: &[(PortId, Packet)],
) -> Vec<Outcome> {
    let eval = FabricEvaluator::over_table(compiler, rs, report, table);
    probes
        .iter()
        .map(|(from, pkt)| eval.verdict(*from, pkt).0)
        .collect()
}

/// A scheduled re-optimization with the oracle in the loop: prepare,
/// build an [`UpdateVerifier`] over `probes` against the new report,
/// drive the waves with per-wave verification, and finish (retire stale
/// state) on success.
///
/// Failure semantics are the controller's scheduled-path semantics:
/// preparation failures roll back; a wave that exhausts retries
/// ([`SdxError::UpdateAborted`]) or fails verification
/// ([`SdxError::UnsafeSchedule`]) parks the fabric in the last
/// verified-safe intermediate state with the control plane on the new
/// configuration, and a later plain `reoptimize` recovers.
pub fn reoptimize_verified(
    ctl: &mut SdxController,
    fabric: &mut Fabric,
    opts: &ScheduleOpts,
    probes: Vec<(PortId, Packet)>,
) -> Result<ScheduleReport, SdxError> {
    let t0 = Instant::now();
    let prepared = ctl.prepare_scheduled(fabric)?;
    let report = ctl
        .report
        .as_ref()
        .expect("prepare_scheduled always installs the new report");
    let verifier = UpdateVerifier::new(
        &ctl.compiler,
        &ctl.rs,
        report,
        fabric.switch.table(),
        &prepared.plan,
        probes,
    )?;
    // Drive with the fault plan temporarily taken out of the controller,
    // so the checker can keep borrowing the controller's report while the
    // driver mutates the plan's fault state.
    let mut faults = std::mem::take(&mut ctl.faults);
    let telemetry = ctl.telemetry.clone();
    let mut checker = |f: &Fabric, wave: usize| {
        verifier.check_table(
            &ctl.compiler,
            &ctl.rs,
            ctl.report
                .as_ref()
                .expect("report is not touched while waves apply"),
            f.switch.table(),
            wave,
        )
    };
    let outcome = drive(
        &prepared.plan,
        fabric,
        &mut faults,
        &telemetry,
        opts,
        Some(&mut checker),
    );
    ctl.faults = faults;
    match outcome {
        Ok(r) => {
            ctl.finish_scheduled(fabric, prepared, t0.elapsed());
            Ok(r)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use sdx_net::{FieldMatch, HeaderMatch, MacAddr, Mod};
    use sdx_openflow::flowmod::{FlowMod, FlowModBatch};
    use sdx_openflow::table::FlowEntry;

    /// A tiny fixture exchange via the synthesizer, deployed end to end.
    fn deployed(seed: u64) -> (SdxController, Fabric) {
        let ex = synth::exchange(seed);
        let mut ctl = SdxController::new();
        ctl.compiler = ex.compiler;
        ctl.rs = ex.rs;
        let fabric = ctl.deploy().expect("fixture deploys");
        (ctl, fabric)
    }

    #[test]
    fn verifier_accepts_the_planned_waves() {
        let (mut ctl, mut fabric) = deployed(11);
        // Perturb policies so the re-optimization has real work.
        let ids: Vec<_> = ctl.compiler.participants().keys().copied().collect();
        ctl.set_outbound(ids[0], None);
        let probes = synth::sample_probes(&ctl.compiler, &ctl.rs, 5, 64);
        let r = reoptimize_verified(&mut ctl, &mut fabric, &ScheduleOpts::default(), probes)
            .expect("scheduled update verifies wave by wave");
        assert_eq!(r.applied.len(), r.total_waves);
    }

    #[test]
    fn scheduled_equals_plain_reoptimize() {
        // Two identical deployments, one updated via the scheduled path,
        // one via plain reoptimize: the resulting fabrics must be
        // packet-equivalent over the probe grid.
        let (mut a, mut fab_a) = deployed(13);
        let (mut b, mut fab_b) = deployed(13);
        let ids: Vec<_> = a.compiler.participants().keys().copied().collect();
        a.set_outbound(ids[0], None);
        b.set_outbound(ids[0], None);
        let probes = synth::sample_probes(&a.compiler, &a.rs, 7, 64);
        reoptimize_verified(&mut a, &mut fab_a, &ScheduleOpts::default(), probes)
            .expect("scheduled path");
        b.reoptimize(&mut fab_b).expect("plain path");
        let ra = a.report.as_ref().unwrap();
        let rb = b.report.as_ref().unwrap();
        let ea = FabricEvaluator::over_table(&a.compiler, &a.rs, ra, fab_a.switch.table());
        let eb = FabricEvaluator::over_table(&b.compiler, &b.rs, rb, fab_b.switch.table());
        for (from, pkt) in synth::probe_grid(&a.compiler, &a.rs) {
            assert_eq!(
                ea.verdict(from, &pkt).0,
                eb.verdict(from, &pkt).0,
                "probe from {from} to {} diverged between paths",
                pkt.nw_dst
            );
        }
    }

    #[test]
    fn injected_wave_faults_recover_or_park_for_every_seed() {
        use sdx_core::faults::{FaultPlan, InjectionPoint, ANY_WAVE};
        for seed in 0..8u64 {
            let (mut ctl, mut fabric) = deployed(17);
            let ids: Vec<_> = ctl.compiler.participants().keys().copied().collect();
            ctl.set_outbound(ids[0], None);
            ctl.faults = FaultPlan::seeded(seed)
                .fail_with_probability(InjectionPoint::FlowModApply { wave: ANY_WAVE }, 0.5);
            let probes = synth::sample_probes(&ctl.compiler, &ctl.rs, seed, 48);
            let opts = ScheduleOpts {
                max_attempts: 3,
                backoff_base_ms: 2,
            };
            match reoptimize_verified(&mut ctl, &mut fabric, &opts, probes) {
                Ok(r) => assert_eq!(r.applied.len(), r.total_waves, "seed {seed}"),
                Err(SdxError::UpdateAborted { .. }) => {
                    // Parked: recovery is a plain reoptimize, after which
                    // the fabric must match a from-scratch deployment.
                    ctl.faults = FaultPlan::disabled();
                    ctl.reoptimize(&mut fabric).expect("recovery reoptimize");
                }
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
            // Whatever path was taken, the final state must be coherent:
            // a second scheduled update with nothing to do plans no waves.
            let prepared = ctl.prepare_scheduled(&mut fabric).expect("idempotent");
            assert!(
                prepared.plan.is_empty(),
                "seed {seed}: converged fabric should re-plan to nothing"
            );
            ctl.commit_scheduled(&mut fabric, prepared, &ScheduleOpts::default(), None)
                .expect("empty commit");
        }
    }

    #[test]
    fn unsafe_schedule_is_caught_and_rolled_back() {
        // Hand-build a malicious "plan": delete the handler for a VMAC in
        // wave 0 while a rule still rewrites into it — wave 0's
        // intermediate table strands re-entering packets, which the
        // verifier must flag (and the batch-level dangling check must not
        // mask, since the emitter lives in a *different* wave here).
        let (ctl, fabric) = deployed(19);
        let report = ctl.report.as_ref().unwrap();
        let table = fabric.switch.table();
        // Find a live handler rule: a physical-delivery entry whose
        // pattern matches a VMAC that some other entry rewrites into.
        let mut target = None;
        'outer: for e in table.entries() {
            let Some(vmac) = e.pattern.dl_dst.filter(|m| m.is_vmac()) else {
                continue;
            };
            for other in table.entries() {
                for bucket in &other.buckets {
                    let reenters = bucket
                        .iter()
                        .any(|m| matches!(m, Mod::SetLoc(p) if !p.is_physical()));
                    let rewrites = bucket
                        .iter()
                        .any(|m| matches!(m, Mod::SetDlDst(d) if *d == vmac));
                    if reenters && rewrites {
                        target = Some((e.priority, e.pattern));
                        break 'outer;
                    }
                }
            }
        }
        let Some((priority, pattern)) = target else {
            // Fixture produced no re-entering chain; nothing to test.
            return;
        };
        let bad = UpdatePlan {
            epoch: 99,
            waves: vec![FlowModBatch {
                epoch: 99,
                mods: vec![FlowMod::Delete { priority, pattern }],
            }],
            dependencies: 0,
            collapsed: false,
        };
        let probes = synth::probe_grid(&ctl.compiler, &ctl.rs);
        // Post state of this malicious plan = handler gone; probes that
        // relied on it have post = Drop, so the *endpoint* containment
        // may or may not flag it — but the loop/containment check runs
        // against pre/post of THIS plan, so craft the verifier against
        // the real update: pre = current table, post = table with the
        // handler deleted. A probe that loops in the intermediate state
        // still fails the wave.
        let verifier = UpdateVerifier::new(&ctl.compiler, &ctl.rs, report, table, &bad, probes)
            .expect("the single delete applies cleanly");
        let mut f = fabric;
        let mut faults = sdx_core::faults::FaultPlan::disabled();
        let reg = ctl.telemetry.clone();
        let mut checker = |fb: &Fabric, wave: usize| {
            verifier.check_table(&ctl.compiler, &ctl.rs, report, fb.switch.table(), wave)
        };
        let before = f.switch.table().clone();
        match drive(
            &bad,
            &mut f,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            Some(&mut checker),
        ) {
            Err(SdxError::UnsafeSchedule {
                wave,
                counterexample,
            }) => {
                assert_eq!(wave, 0);
                assert!(
                    counterexample.contains("probe"),
                    "counterexample names the probe: {counterexample}"
                );
                assert_eq!(
                    f.switch.table(),
                    &before,
                    "vetoed wave rolled back, fabric parked pre-wave"
                );
            }
            Ok(_) => {
                // Deleting the handler turned every dependent probe into
                // its post outcome (Drop) without a loop — containment
                // holds, so the schedule is defensibly safe. Accept.
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn verifier_flags_a_transient_loop() {
        // A synthetic two-rule loop: A rewrites to vmac 1 and re-enters,
        // B (the vmac-1 handler) rewrites back to vmac 2 (A's match) and
        // re-enters. Neither pre (empty) nor post (loop removed again)
        // contains the loop, so the intermediate table must be flagged.
        let (ctl, _fabric) = deployed(23);
        let report = ctl.report.as_ref().unwrap();
        let virt = sdx_net::PortId::Virt(sdx_net::ParticipantId(1));
        let to = |id: u32| vec![vec![Mod::SetDlDst(MacAddr::vmac(id)), Mod::SetLoc(virt)]];
        let vpat = |id: u32| HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(id)));
        let pre = FlowTable::new();
        // Wave 0 installs the loop; wave 1 deletes it again, so pre ==
        // post == empty and the intermediate state is pure transient.
        let looped = UpdatePlan {
            epoch: 5,
            waves: vec![
                FlowModBatch {
                    epoch: 5,
                    mods: vec![
                        FlowMod::Add(FlowEntry::new(1000, vpat(2), to(1))),
                        FlowMod::Add(FlowEntry::new(1001, vpat(1), to(2))),
                    ],
                },
                FlowModBatch {
                    epoch: 5,
                    mods: vec![
                        FlowMod::Delete {
                            priority: 1000,
                            pattern: vpat(2),
                        },
                        FlowMod::Delete {
                            priority: 1001,
                            pattern: vpat(1),
                        },
                    ],
                },
            ],
            dependencies: 0,
            collapsed: false,
        };
        // One probe whose FIB stage resolves to a VMAC the loop captures:
        // evaluate over the deployed report but a synthetic table, so use
        // a probe that the report maps onto some vmac... simplest: check
        // the table directly with count_violations over crafted probes is
        // not possible without FIB cooperation — instead check the two
        // intermediate tables structurally via the public API.
        let verifier = UpdateVerifier::new(
            &ctl.compiler,
            &ctl.rs,
            report,
            &pre,
            &looped,
            synth::probe_grid(&ctl.compiler, &ctl.rs),
        )
        .expect("waves apply");
        let mut mid = pre.clone();
        mid.apply_batch(&looped.waves[0]).unwrap();
        // Whether any grid probe actually enters the synthetic loop
        // depends on the fixture's FIB; verify the checker at least
        // never *crashes* on the loop table and that a violation, if
        // reported, names a loop.
        if let Err(msg) = verifier.check_table(&ctl.compiler, &ctl.rs, report, &mid, 0) {
            assert!(msg.contains("loop") || msg.contains("transient"), "{msg}");
        }
    }
}
