//! Deterministic generators for random exchanges and probe packets.
//!
//! Proptest drives these with a single `u64` seed (the strategy shrinks
//! over seeds, the generator turns a seed into a whole IXP), so every
//! counterexample is reproducible from one integer. The generators stay
//! inside the oracle's modelled semantics on purpose: clause matches are
//! made pairwise-disjoint (unique destination ports) so outbound policies
//! never multicast, rewrite clauses constrain `dstip` to a prefix that
//! excludes the rewrite target so "rewrite to the address you already
//! have" never arises, and filler ASNs avoid the participants' own ASNs
//! so AS-path loop protection fires only when a participant genuinely
//! re-hears itself. See `DESIGN.md` §12 for the full exclusion list.

use sdx_bgp::route_server::{ExportPolicy, RouteServer};
use sdx_core::compiler::SdxCompiler;
use sdx_core::participant::ParticipantConfig;
use sdx_net::{FieldMatch, Ipv4Addr, Mod, Packet, ParticipantId, PortId, Prefix};
use sdx_policy::Policy;

/// Destination ports policies match on; probes bias toward these.
pub const CLAUSE_PORTS: [u16; 5] = [80, 443, 22, 53, 8080];

/// A tiny deterministic PRNG (xorshift64*), so exchanges are a pure
/// function of the seed with no `rand` dependency.
pub struct Rng(u64);

impl Rng {
    /// A generator seeded from `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `xs` (`xs` non-empty).
    pub fn pick<'s, T>(&mut self, xs: &'s [T]) -> &'s T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// The fixed prefix universe exchanges announce from: six /16 supernets
/// with two nested /24s each, so LPM, partial coverage (`dst_coverage`),
/// and supernet/subnet splits all get exercised.
pub fn prefix_pool() -> Vec<Prefix> {
    let mut pool = Vec::new();
    for i in 0..6u8 {
        pool.push(Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16));
        pool.push(Prefix::new(Ipv4Addr::new(10, i, 1, 0), 24));
        pool.push(Prefix::new(Ipv4Addr::new(10, i, 2, 0), 24));
    }
    pool
}

/// A generated exchange: participants + policies loaded into a compiler,
/// routes + export filters loaded into a route server. Undeployed —
/// callers run `compile_all` themselves.
pub struct GeneratedExchange {
    /// The compiler holding participants and their policies.
    pub compiler: SdxCompiler,
    /// The route server holding announcements and export filters.
    pub rs: RouteServer,
    /// The seed everything above is a pure function of.
    pub seed: u64,
}

/// Builds a random exchange from `seed`: 3–6 participants (1–2 ports
/// each), random announcement subsets of [`prefix_pool`] with diverse
/// AS-path lengths, sprinkled export denials, and random outbound/inbound
/// policies in the shapes the compiler supports.
pub fn exchange(seed: u64) -> GeneratedExchange {
    build_exchange(seed, false)
}

/// Like [`exchange`], but participants draw their outbound policies from
/// the *wide* generator ([`outbound_policy_wide`]): whole-network range
/// matches with no transport-port constraint, nested sub-range matches,
/// source-half refinements with wildcard destinations, and sequential
/// modify chains. Same seed, different policy universe — so the two
/// streams regress independently.
pub fn exchange_wide(seed: u64) -> GeneratedExchange {
    build_exchange(seed, true)
}

fn build_exchange(seed: u64, wide: bool) -> GeneratedExchange {
    let mut rng = Rng::new(seed);
    let pool = prefix_pool();
    let n = 3 + rng.below(4) as u32; // 3..=6 participants

    let cfgs: Vec<ParticipantConfig> = (1..=n)
        .map(|id| ParticipantConfig::new(id, 65000 + id, 1 + rng.below(2) as u8))
        .collect();

    let mut rs = RouteServer::new();
    for cfg in &cfgs {
        let mut export = ExportPolicy::allow_all();
        // Sparse denials: per (peer, prefix) with p=1/4, plus a rare
        // blanket deny_peer — these are what make the consistency filter
        // earn its keep.
        for other in 1..=n {
            if other == cfg.id.0 {
                continue;
            }
            if rng.chance(1, 16) {
                export.deny_peer(ParticipantId(other));
                continue;
            }
            for p in &pool {
                if rng.chance(1, 4) {
                    export.deny(ParticipantId(other), *p);
                }
            }
        }
        rs.add_peer(cfg.route_source(), export);
    }

    for cfg in &cfgs {
        // Everyone announces at least one prefix; each further pool entry
        // with p=1/3. Filler ASNs stay far below 65001..=65006 so loop
        // protection only triggers on the announcer's own ASN.
        let forced = rng.below(pool.len() as u64) as usize;
        let announced: Vec<Prefix> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == forced || rng.chance(1, 3))
            .map(|(_, p)| *p)
            .collect();
        let mut path = vec![65000 + cfg.id.0];
        for _ in 0..=rng.below(3) {
            path.push(100 + rng.below(59_000) as u32);
        }
        rs.process_update(cfg.id, &cfg.announce(announced, &path));
    }

    let mut compiler = SdxCompiler::new();
    for cfg in &cfgs {
        let mut cfg = cfg.clone();
        if rng.chance(2, 3) {
            let pol = if wide {
                outbound_policy_wide(&mut rng, &cfgs, cfg.id)
            } else {
                outbound_policy(&mut rng, &cfgs, cfg.id, &pool)
            };
            if let Some(pol) = pol {
                cfg = cfg.with_outbound(pol);
            }
        }
        if rng.chance(1, 2) {
            cfg = cfg
                .clone()
                .with_inbound(inbound_policy(&mut rng, &cfgs, &cfg));
        }
        compiler.upsert_participant(cfg);
    }

    GeneratedExchange { compiler, rs, seed }
}

/// A random outbound policy for `me`: 1–3 clauses, each on a *distinct*
/// destination port (pairwise disjoint ⇒ never multicasts), optionally
/// refined by a source or destination predicate, targeting a mix of
/// `fwd(peer)`, port steering, destination rewrites, and mod-only
/// clauses.
fn outbound_policy(
    rng: &mut Rng,
    cfgs: &[ParticipantConfig],
    me: ParticipantId,
    pool: &[Prefix],
) -> Option<Policy> {
    let others: Vec<&ParticipantConfig> = cfgs.iter().filter(|c| c.id != me).collect();
    let mut ports = CLAUSE_PORTS.to_vec();
    let n_clauses = 1 + rng.below(3);
    let mut policy = Policy::drop();
    for _ in 0..n_clauses {
        let dstport = ports.remove(rng.below(ports.len() as u64) as usize);
        let mut clause = Policy::match_(FieldMatch::TpDst(dstport));
        let kind = rng.below(20);
        if kind < 14 {
            // fwd(peer), optionally refined.
            match rng.below(3) {
                0 => {
                    clause = clause
                        >> Policy::match_(FieldMatch::NwSrc(Prefix::new(
                            Ipv4Addr::new(if rng.chance(1, 2) { 0 } else { 128 }, 0, 0, 0),
                            1,
                        )));
                }
                1 => {
                    clause = clause >> Policy::match_(FieldMatch::NwDst(*rng.pick(pool)));
                }
                _ => {}
            }
            clause = clause >> Policy::fwd(PortId::Virt(rng.pick(&others).id));
        } else if kind < 17 {
            // Port steering: a peer's real physical port, bypassing its
            // inbound policy.
            let target = rng.pick(&others);
            let port = *rng.pick(&target.ports);
            clause = clause >> Policy::fwd(PortId::Phys(target.id, port.index));
        } else if kind < 19 {
            // Destination rewrite (wide-area LB): constrain dstip to one
            // /16 and rewrite into a *different* /16, so the rewrite
            // always changes the address.
            let from_net = rng.below(6) as u8;
            let to_net = (from_net + 1 + rng.below(5) as u8) % 6;
            let target = Ipv4Addr::new(10, to_net, 0, 1 + rng.below(200) as u8);
            clause = clause
                >> Policy::match_(FieldMatch::NwDst(Prefix::new(
                    Ipv4Addr::new(10, from_net, 0, 0),
                    16,
                )))
                >> Policy::modify(Mod::SetNwDst(target));
            if rng.chance(1, 2) {
                clause = clause >> Policy::fwd(PortId::Virt(rng.pick(&others).id));
            }
        } else {
            // Mod-only clause: rewrites a header but forwards nowhere.
            // The compiler emits nothing for it (a known exclusion both
            // oracle sides model as "default path, original packet").
            clause = clause >> Policy::modify(Mod::SetTpDst(4000 + rng.below(1000) as u16));
        }
        policy = policy + clause;
    }
    if policy.is_drop() {
        None
    } else {
        Some(policy)
    }
}

/// A random *wide* outbound policy for `me`: where [`outbound_policy`]
/// keys every clause on a distinct destination port, this generator emits
/// the shapes that leave whole header fields wild — range matches over an
/// entire /16 (every port, every source), nested /24 sub-ranges,
/// source-half refinements with wildcard destinations, and sequential
/// *modify chains* (several header rewrites composed with `>>` before the
/// `fwd`). Disjointness (⇒ no multicast) comes from giving each clause a
/// distinct /16 network instead of a distinct port.
fn outbound_policy_wide(
    rng: &mut Rng,
    cfgs: &[ParticipantConfig],
    me: ParticipantId,
) -> Option<Policy> {
    let others: Vec<&ParticipantConfig> = cfgs.iter().filter(|c| c.id != me).collect();
    // Rarely, the widest shape the compiler supports: a single clause
    // over one source half with a fully wildcard destination.
    if rng.chance(1, 6) {
        let half = Ipv4Addr::new(if rng.chance(1, 2) { 0 } else { 128 }, 0, 0, 0);
        return Some(
            Policy::match_(FieldMatch::NwSrc(Prefix::new(half, 1)))
                >> Policy::fwd(PortId::Virt(rng.pick(&others).id)),
        );
    }
    let mut nets: Vec<u8> = (0..6).collect();
    let n_clauses = 1 + rng.below(3);
    let mut policy = Policy::drop();
    for _ in 0..n_clauses {
        let net = nets.remove(rng.below(nets.len() as u64) as usize);
        let mut clause = match rng.below(4) {
            0 => {
                // Bare range match: the whole /16, every port and source.
                Policy::match_(FieldMatch::NwDst(Prefix::new(
                    Ipv4Addr::new(10, net, 0, 0),
                    16,
                )))
            }
            1 => {
                // Nested sub-range: one of the /24s inside the /16, so
                // LPM and the range boundary both get exercised.
                Policy::match_(FieldMatch::NwDst(Prefix::new(
                    Ipv4Addr::new(10, net, 1 + rng.below(2) as u8, 0),
                    24,
                )))
            }
            2 => {
                // Range match refined by a source half; destination
                // ports stay wild.
                let half = Ipv4Addr::new(if rng.chance(1, 2) { 0 } else { 128 }, 0, 0, 0);
                Policy::match_(FieldMatch::NwDst(Prefix::new(
                    Ipv4Addr::new(10, net, 0, 0),
                    16,
                ))) >> Policy::match_(FieldMatch::NwSrc(Prefix::new(half, 1)))
            }
            _ => {
                // Modify chain: two transport rewrites in sequence
                // before the forward.
                Policy::match_(FieldMatch::NwDst(Prefix::new(
                    Ipv4Addr::new(10, net, 0, 0),
                    16,
                ))) >> Policy::modify(Mod::SetTpSrc(5000 + rng.below(1000) as u16))
                    >> Policy::modify(Mod::SetTpDst(6000 + rng.below(1000) as u16))
            }
        };
        clause = clause >> Policy::fwd(PortId::Virt(rng.pick(&others).id));
        policy = policy + clause;
    }
    if policy.is_drop() {
        None
    } else {
        Some(policy)
    }
}

/// A random inbound policy for `me`: clauses over *disjoint* source-space
/// quarters (never multicasts), each steering to one of `me`'s own ports —
/// or, rarely, a foreign port (the middlebox idiom).
fn inbound_policy(rng: &mut Rng, cfgs: &[ParticipantConfig], me: &ParticipantConfig) -> Policy {
    let quarters: [Ipv4Addr; 4] = [
        Ipv4Addr::new(0, 0, 0, 0),
        Ipv4Addr::new(64, 0, 0, 0),
        Ipv4Addr::new(128, 0, 0, 0),
        Ipv4Addr::new(192, 0, 0, 0),
    ];
    let n_clauses = 1 + rng.below(3);
    let mut used = Vec::new();
    let mut policy = Policy::drop();
    for _ in 0..n_clauses {
        let q = rng.below(4) as usize;
        if used.contains(&q) {
            continue;
        }
        used.push(q);
        let target = if rng.chance(1, 8) && cfgs.len() > 1 {
            let others: Vec<&ParticipantConfig> = cfgs.iter().filter(|c| c.id != me.id).collect();
            let other = *rng.pick(&others);
            PortId::Phys(other.id, rng.pick(&other.ports).index)
        } else {
            PortId::Phys(me.id, rng.pick(&me.ports).index)
        };
        policy = policy
            + (Policy::match_(FieldMatch::NwSrc(Prefix::new(quarters[q], 2)))
                >> Policy::fwd(target));
    }
    if policy.is_drop() {
        // All quarters collided; fall back to the primary port for the
        // whole space (equivalent to no policy, but exercises the path).
        Policy::fwd(PortId::Phys(me.id, me.primary_port().index))
    } else {
        policy
    }
}

/// `n` random probe packets (with ingress ports) for `ex`: destinations
/// biased toward the announced pool (supernet hosts, nested-/24 hosts)
/// with a sliver of unroutable 203.0.113.0/24, sources split across the
/// inbound policies' quarters, destination ports biased toward
/// [`CLAUSE_PORTS`].
pub fn packets(ex: &GeneratedExchange, seed: u64, n: usize) -> Vec<(PortId, Packet)> {
    let mut rng = Rng::new(seed ^ 0xDEAD_BEEF);
    let ports: Vec<PortId> = ex
        .compiler
        .participants()
        .values()
        .flat_map(|c| c.port_ids())
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let from = *rng.pick(&ports);
        let dst = match rng.below(20) {
            0..=13 => Ipv4Addr::new(10, rng.below(6) as u8, 0, 1 + rng.below(200) as u8),
            14..=16 => Ipv4Addr::new(
                10,
                rng.below(6) as u8,
                1 + rng.below(2) as u8,
                1 + rng.below(200) as u8,
            ),
            _ => Ipv4Addr::new(203, 0, 113, 1 + rng.below(200) as u8),
        };
        let src = if rng.chance(1, 2) {
            Ipv4Addr::new(9, 0, 0, 1 + rng.below(200) as u8)
        } else {
            Ipv4Addr::new(200, 0, 0, 1 + rng.below(200) as u8)
        };
        let dport = if rng.chance(3, 5) {
            *rng.pick(&CLAUSE_PORTS)
        } else {
            1024 + rng.below(40_000) as u16
        };
        out.push((
            from,
            Packet::tcp(src, dst, 1024 + rng.below(1000) as u16, dport),
        ));
    }
    out
}

/// `n` random probes for an *arbitrary* exchange (any compiler + route
/// server, not just generated ones): destinations are representative
/// hosts of randomly chosen announced prefixes (plus a sliver of
/// unroutable addresses), sources split low/high for inbound-policy
/// coverage, destination ports biased toward [`CLAUSE_PORTS`]. This is
/// the sampler for workloads whose full [`probe_grid`] would be huge.
pub fn sample_probes(
    compiler: &SdxCompiler,
    rs: &RouteServer,
    seed: u64,
    n: usize,
) -> Vec<(PortId, Packet)> {
    let mut rng = Rng::new(seed ^ 0x5A17_B0A7);
    let ports: Vec<PortId> = compiler
        .participants()
        .values()
        .flat_map(|c| c.port_ids())
        .collect();
    let announced = rs.all_prefixes();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let from = *rng.pick(&ports);
        let dst = if announced.is_empty() || rng.chance(1, 10) {
            Ipv4Addr::new(203, 0, 113, 1 + rng.below(200) as u8)
        } else {
            let p = *rng.pick(&announced);
            Ipv4Addr(p.addr().0 + rng.below(p.size().min(256) - 1) as u32 + 1)
        };
        let src = if rng.chance(1, 2) {
            Ipv4Addr::new(9, 0, 0, 1 + rng.below(200) as u8)
        } else {
            Ipv4Addr::new(200, 0, 0, 1 + rng.below(200) as u8)
        };
        let dport = if rng.chance(3, 5) {
            *rng.pick(&CLAUSE_PORTS)
        } else {
            1024 + rng.below(40_000) as u16
        };
        out.push((from, Packet::tcp(src, dst, 4321, dport)));
    }
    out
}

/// A systematic probe grid for fixture exchanges: every physical port ×
/// (one representative host per announced prefix + one unroutable
/// address) × low/high source × the clause ports. Exhaustive for
/// Figure-1-sized fixtures; use [`packets`] for big synthetic IXPs.
pub fn probe_grid(compiler: &SdxCompiler, rs: &RouteServer) -> Vec<(PortId, Packet)> {
    let mut dsts: Vec<Ipv4Addr> = rs
        .all_prefixes()
        .iter()
        .map(|p| Ipv4Addr(p.addr().0 + 9))
        .collect();
    dsts.push(Ipv4Addr::new(203, 0, 113, 9));
    let srcs = [Ipv4Addr::new(9, 0, 0, 1), Ipv4Addr::new(200, 0, 0, 1)];
    let mut out = Vec::new();
    for cfg in compiler.participants().values() {
        for port in cfg.port_ids() {
            for &dst in &dsts {
                for &src in &srcs {
                    for &dport in &[80u16, 443, 22, 8080] {
                        out.push((port, Packet::tcp(src, dst, 4321, dport)));
                    }
                }
            }
        }
    }
    out
}
