//! # sdx-oracle — the packet-level semantic oracle
//!
//! The SDX compiler (in `sdx-core`) turns participant policies, the route
//! server's Adj-RIB-Out, and BGP best routes into one composed switch
//! classifier. This crate answers the question *"did it compile the right
//! thing?"* by evaluating the same symbolic packet two independent ways:
//!
//! * [`spec::SpecInterpreter`] — the **reference interpreter**. It reads
//!   the *specification* directly: each participant's virtual-switch
//!   policy (via [`sdx_policy::eval`]'s denotational semantics), joined
//!   with the route server's consistency filters and best-route defaults.
//!   It never looks at a compiled rule.
//! * [`fabric::FabricEvaluator`] — the **fabric evaluator**. It plays the
//!   border router (FIB lookup, VNH resolution, ARP tagging — all read
//!   from the [`sdx_core::compiler::CompileReport`]) and then steps the
//!   packet through the compiled classifier rule by rule, with a bounded
//!   walk that proves loop freedom.
//! * [`diff::Differential`] — the harness asserting the two agree, with
//!   per-stage [`trace::Trace`]s rendered on mismatch and mirrored into
//!   the `sdx-telemetry` journal as `oracle.*` events.
//! * [`synth`] — deterministic, seedable generators for random exchanges
//!   (participants, RIBs, export policies, policies) and probe packets,
//!   driven by proptest in the differential test suite.
//!
//! What each side trusts is spelled out in `DESIGN.md` §12, along with the
//! oracle's known exclusions (MAC-field matches, mod-only clauses, and
//! friends).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod fabric;
pub mod schedule;
pub mod spec;
pub mod synth;
pub mod trace;

use sdx_bgp::route_server::RouteServer;
use sdx_net::{Ipv4Addr, ParticipantId, PortId, Prefix};

pub use diff::{boundary_probes, run_smoke_sharded, Differential, Mismatch, SmokeStats};
pub use fabric::FabricEvaluator;
pub use schedule::{reoptimize_verified, UpdateVerifier};
pub use spec::SpecInterpreter;
pub use trace::{Trace, TraceStep};

/// Where a packet ends up, in terms both evaluation strategies share.
///
/// Destination MACs are deliberately *not* part of the verdict: the spec
/// side has no notion of the fabric's VMAC tags, and §4.1's guarantee is
/// about delivery port and (post-rewrite) destination address, which is
/// what participants observe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Delivered at a physical port, carrying this destination address.
    Deliver {
        /// The physical delivery port.
        port: PortId,
        /// The delivered packet's destination IP (after any rewrites).
        nw_dst: Ipv4Addr,
    },
    /// Dropped: no route, no matching rule, or hairpin suppression.
    Drop,
    /// More than one delivery — multicast. The spec side emits this only
    /// for policies the compiler would reject; the fabric side emits it
    /// if the compiled tables ever duplicate a packet.
    Multi(Vec<(PortId, Ipv4Addr)>),
    /// The fabric walk revisited a state or exceeded its step budget —
    /// a forwarding loop. Never produced by the spec side, so any loop
    /// is automatically a mismatch.
    NonTerminating,
}

impl core::fmt::Display for Outcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Outcome::Deliver { port, nw_dst } => write!(f, "deliver at {port} (dst {nw_dst})"),
            Outcome::Drop => write!(f, "drop"),
            Outcome::Multi(outs) => {
                write!(f, "multicast to ")?;
                for (i, (port, dst)) in outs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{port} (dst {dst})")?;
                }
                Ok(())
            }
            Outcome::NonTerminating => write!(f, "NON-TERMINATING (forwarding loop)"),
        }
    }
}

/// The border router's FIB decision, shared verbatim by both oracle sides:
/// the longest announced prefix covering `dst` for which the route server
/// exports a best route to `viewer`. `None` means the router holds no
/// usable route and the packet never enters the fabric.
///
/// Both sides trusting this one function is deliberate — the border
/// router runs *unmodified BGP* (§4.2), so its LPM-over-received-routes
/// behaviour is part of the specification, not of the artifact under
/// test.
pub(crate) fn routed_lpm(
    rs: &RouteServer,
    announced: &[Prefix],
    viewer: ParticipantId,
    dst: Ipv4Addr,
) -> Option<Prefix> {
    announced
        .iter()
        .copied()
        .filter(|p| p.contains(dst) && rs.best_for(viewer, *p).is_some())
        .max_by_key(|p| p.len())
}
