//! The fabric evaluator: the same packet, but through the **compiled
//! artifact** instead of the spec.
//!
//! This side plays the hardware. It reads everything from the
//! [`CompileReport`]:
//!
//! 1. **Border router / FIB**: the sender's LPM decision ([`routed_lpm`],
//!    shared with the spec side — unmodified BGP is part of the spec),
//!    then the *exact* `(sender, prefix)` entry of [`CompileReport::vnh_of`]
//!    to learn whether that route was rewritten to a virtual next hop.
//! 2. **ARP**: a VNH resolves to its FEC's VMAC via
//!    [`CompileReport::vmac_for`] (the report's `arp_bindings`); a real
//!    next hop resolves to the participant port that owns the address,
//!    mirroring the controller's static port bindings. No binding, no
//!    frame.
//! 3. **Classifier walk**: first-match stepping over the composed rule
//!    table, re-injecting outputs that land on virtual ports, with a
//!    seen-set and a step budget so forwarding loops are *detected and
//!    reported* ([`Outcome::NonTerminating`]) instead of hanging the
//!    harness. The optimized pipeline emits a single-lookup classifier, so
//!    a healthy walk takes exactly one step — the loop check is there to
//!    catch compilers that stop guaranteeing that.
//!
//! Nothing in here consults a policy or the route server's decision
//! process beyond the FIB; if this side and the spec side agree on every
//! packet, the compiler preserved the semantics.

use sdx_bgp::route_server::RouteServer;
use sdx_core::compiler::{CompileReport, SdxCompiler};
use sdx_net::{Ipv4Addr, LocatedPacket, MacAddr, Packet, PortId, Prefix};
use sdx_openflow::table::FlowTable;

use crate::trace::{fmt_match, Trace};
use crate::{routed_lpm, Outcome};

/// Walks beyond this many classifier steps are declared non-terminating.
/// The compiled pipeline needs exactly one step per packet; 32 leaves
/// room for any future multi-table design while still bounding the walk.
const STEP_BUDGET: usize = 32;

/// The fabric-side oracle: border-router FIB + ARP + compiled classifier.
pub struct FabricEvaluator<'a> {
    compiler: &'a SdxCompiler,
    rs: &'a RouteServer,
    report: &'a CompileReport,
    /// When set, classifier steps walk this *deployed* flow table —
    /// priorities, patch history and all — instead of the report's
    /// pristine classifier. This is how the harness checks that a
    /// delta-patched table is packet-equivalent to a from-scratch
    /// compilation.
    table: Option<&'a FlowTable>,
    announced: Vec<Prefix>,
}

impl<'a> FabricEvaluator<'a> {
    /// An evaluator over `report` as compiled from `compiler` + `rs`.
    /// The announced-prefix list is snapshotted here; rebuild after BGP
    /// churn (the report would be stale anyway).
    pub fn new(compiler: &'a SdxCompiler, rs: &'a RouteServer, report: &'a CompileReport) -> Self {
        FabricEvaluator {
            compiler,
            rs,
            report,
            table: None,
            announced: rs.all_prefixes(),
        }
    }

    /// An evaluator whose classifier stage reads the deployed `table`
    /// (highest-priority first match over live [`FlowEntry`] buckets)
    /// rather than `report.classifier`. The FIB and ARP stages still come
    /// from `report` — pass the report the controller actually committed.
    ///
    /// [`FlowEntry`]: sdx_openflow::table::FlowEntry
    pub fn over_table(
        compiler: &'a SdxCompiler,
        rs: &'a RouteServer,
        report: &'a CompileReport,
        table: &'a FlowTable,
    ) -> Self {
        FabricEvaluator {
            compiler,
            rs,
            report,
            table: Some(table),
            announced: rs.all_prefixes(),
        }
    }

    /// Evaluates a packet entering the fabric at `from`, returning the
    /// compiled outcome and the stage-by-stage trace.
    pub fn verdict(&self, from: PortId, pkt: &Packet) -> (Outcome, Trace) {
        let mut t = Trace::new("fabric");
        let sender = from.participant();

        // Stage 0: the border router's FIB.
        let Some(p_star) = routed_lpm(self.rs, &self.announced, sender, pkt.nw_dst) else {
            t.push(
                "route",
                format!("no FIB entry covers {}: router drops", pkt.nw_dst),
            );
            return (Outcome::Drop, t);
        };
        t.push("route", format!("FIB matches {p_star}"));

        // Stage 0b: ARP for the route's next hop — the VMAC tag for
        // rewritten routes, the peer's physical MAC otherwise.
        let dl_dst = match self.report.vnh_of.get(&(sender, p_star)) {
            Some(vnh) => {
                let Some(vmac) = self.report.vmac_for(*vnh) else {
                    t.push(
                        "arp",
                        format!("route carries VNH {vnh} but no FEC owns it: ARP fails, drop"),
                    );
                    return (Outcome::Drop, t);
                };
                t.push(
                    "arp",
                    format!("route carries VNH {vnh}; SDX ARP answers VMAC {vmac}"),
                );
                vmac
            }
            None => {
                let best = self
                    .rs
                    .best_for(sender, p_star)
                    .expect("p_star was chosen because a best route exists");
                let nh = best.attrs.next_hop;
                // Un-rewritten routes carry a real peering-LAN next hop;
                // the controller statically binds every participant
                // port's addr → MAC (install_static_arp).
                let Some(mac) = self
                    .compiler
                    .participants()
                    .values()
                    .flat_map(|cfg| cfg.ports.iter())
                    .find(|port| port.addr == nh)
                    .map(|port| port.mac)
                else {
                    t.push(
                        "arp",
                        format!("no static ARP binding for next hop {nh}: drop"),
                    );
                    return (Outcome::Drop, t);
                };
                t.push("arp", format!("next hop {nh} resolves to {mac}"));
                mac
            }
        };

        let dl_src = match from {
            PortId::Phys(_, idx) => self
                .compiler
                .participant(sender)
                .and_then(|cfg| cfg.port_mac(idx))
                .unwrap_or(MacAddr::ZERO),
            PortId::Virt(_) => MacAddr::ZERO,
        };

        let start = LocatedPacket::at(from, pkt.with_macs(dl_src, dl_dst));
        let outcome = self.walk(from, start, &mut t);
        (outcome, t)
    }

    /// Bounded first-match stepping over the composed classifier.
    fn walk(&self, from: PortId, start: LocatedPacket, t: &mut Trace) -> Outcome {
        let mut queue = vec![start];
        let mut seen: Vec<LocatedPacket> = Vec::new();
        let mut delivered: Vec<(PortId, Ipv4Addr)> = Vec::new();
        let mut steps = 0usize;

        while let Some(lp) = queue.pop() {
            if seen.contains(&lp) {
                t.push(
                    "classifier",
                    format!("revisited state at {}: forwarding loop", lp.loc),
                );
                return Outcome::NonTerminating;
            }
            seen.push(lp);
            steps += 1;
            if steps > STEP_BUDGET {
                t.push(
                    "classifier",
                    format!("step budget of {STEP_BUDGET} exhausted: declaring a loop"),
                );
                return Outcome::NonTerminating;
            }

            let outs: Vec<LocatedPacket> = match self.table {
                Some(table) => {
                    // Deployed-table mode: highest-priority first match
                    // over the live entries, buckets applied as installed.
                    // `classify` answers through the compiled matcher; the
                    // oracle dual-runs the linear reference walk and
                    // asserts `(index, entry)` identity on every probe, so
                    // the fast path can never silently change semantics.
                    let fast = table.classify(&lp);
                    let linear = table.classify_linear(&lp);
                    assert_eq!(
                        fast.map(|(i, e)| (i, e.priority, e.pattern)),
                        linear.map(|(i, e)| (i, e.priority, e.pattern)),
                        "compiled matcher diverged from the linear walk at {} \
                         (epoch {}, {} entries)",
                        lp.loc,
                        table.epoch(),
                        table.len(),
                    );
                    let Some((idx, entry)) = fast else {
                        t.push("classifier", format!("table miss at {}", lp.loc));
                        continue;
                    };
                    if entry.is_drop() {
                        t.push(
                            "classifier",
                            format!(
                                "entry #{idx} prio {} [{}] -> drop",
                                entry.priority,
                                fmt_match(&entry.pattern)
                            ),
                        );
                        continue;
                    }
                    t.push(
                        "classifier",
                        format!(
                            "entry #{idx} prio {} [{}] -> {} bucket(s)",
                            entry.priority,
                            fmt_match(&entry.pattern),
                            entry.buckets.len()
                        ),
                    );
                    FlowTable::apply_entry(entry, &lp)
                }
                None => {
                    let rules = self.report.classifier.rules();
                    let Some((idx, rule)) = rules
                        .iter()
                        .enumerate()
                        .find(|(_, r)| r.matches.matches(&lp))
                    else {
                        // from_rules guarantees totality; a miss means the
                        // table was built some other way. Report, don't
                        // panic.
                        t.push("classifier", format!("table miss at {}", lp.loc));
                        continue;
                    };
                    if rule.is_drop() {
                        t.push(
                            "classifier",
                            format!("rule #{idx} [{}] -> drop", fmt_match(&rule.matches)),
                        );
                        continue;
                    }
                    t.push(
                        "classifier",
                        format!(
                            "rule #{idx} [{}] -> {} action(s)",
                            fmt_match(&rule.matches),
                            rule.actions.len()
                        ),
                    );
                    rule.actions.iter().map(|a| a.apply(&lp)).collect()
                }
            };
            for out in outs {
                match out.loc {
                    PortId::Phys(..) => {
                        if out.loc == from {
                            t.push(
                                "deliver",
                                format!("{} is the ingress port: hairpin suppressed", out.loc),
                            );
                        } else {
                            let d = (out.loc, out.pkt.nw_dst);
                            if !delivered.contains(&d) {
                                t.push(
                                    "deliver",
                                    format!("delivered at {} (dst {})", out.loc, out.pkt.nw_dst),
                                );
                                delivered.push(d);
                            }
                        }
                    }
                    PortId::Virt(_) => {
                        t.push(
                            "classifier",
                            format!("output re-enters the fabric at {}", out.loc),
                        );
                        queue.push(out);
                    }
                }
            }
        }

        match delivered.len() {
            0 => Outcome::Drop,
            1 => {
                let (port, nw_dst) = delivered[0];
                Outcome::Deliver { port, nw_dst }
            }
            _ => Outcome::Multi(delivered),
        }
    }
}
