//! The differential harness: spec verdict vs fabric verdict, packet by
//! packet, with readable counterexamples.

use core::fmt;

use sdx_bgp::route_server::RouteServer;
use sdx_core::compiler::{CompileReport, SdxCompiler};
use sdx_core::vnh::VnhAllocator;
use sdx_core::{ShardPlan, Sharding};
use sdx_net::{Ipv4Addr, Packet, PortId};
use sdx_telemetry::{Event, Registry};

use crate::fabric::FabricEvaluator;
use crate::spec::SpecInterpreter;
use crate::synth;
use crate::trace::Trace;
use crate::Outcome;

/// A packet on which the two evaluations disagreed — the harness's whole
/// reason to exist. Displays as a per-stage, side-by-side story.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The ingress port the packet entered at.
    pub from: PortId,
    /// The offending packet.
    pub pkt: Packet,
    /// What the specification says should happen.
    pub spec: Outcome,
    /// What the compiled fabric actually does.
    pub fabric: Outcome,
    /// The spec side's stage-by-stage decisions.
    pub spec_trace: Trace,
    /// The fabric side's stage-by-stage decisions.
    pub fabric_trace: Trace,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle mismatch: packet in at {} ({} -> {}, dstport {})",
            self.from, self.pkt.nw_src, self.pkt.nw_dst, self.pkt.tp_dst
        )?;
        writeln!(f, "  spec says:   {}", self.spec)?;
        writeln!(f, "  fabric says: {}", self.fabric)?;
        writeln!(f, "spec trace:")?;
        write!(f, "{}", self.spec_trace.render())?;
        writeln!(f, "fabric trace:")?;
        write!(f, "{}", self.fabric_trace.render())
    }
}

impl Mismatch {
    /// Mirrors the mismatch into `reg`'s journal: one `oracle.mismatch`
    /// event with the verdict summary, then every trace step from both
    /// sides as `oracle.spec.*` / `oracle.fabric.*` events.
    pub fn emit(&self, reg: &Registry) {
        reg.record_event(Event::Custom {
            name: "oracle.mismatch".to_string(),
            detail: format!(
                "at {} dst {} dstport {}: spec {} vs fabric {}",
                self.from, self.pkt.nw_dst, self.pkt.tp_dst, self.spec, self.fabric
            ),
        });
        self.spec_trace.emit(reg);
        self.fabric_trace.emit(reg);
    }
}

/// Both oracle sides over one compiled exchange.
pub struct Differential<'a> {
    spec: SpecInterpreter<'a>,
    fabric: FabricEvaluator<'a>,
}

impl<'a> Differential<'a> {
    /// A harness over `report` as compiled from `compiler` + `rs`.
    pub fn new(compiler: &'a SdxCompiler, rs: &'a RouteServer, report: &'a CompileReport) -> Self {
        Differential {
            spec: SpecInterpreter::new(compiler, rs),
            fabric: FabricEvaluator::new(compiler, rs, report),
        }
    }

    /// A harness whose fabric side walks the *deployed* flow table
    /// (patch history and all) instead of the report's classifier — the
    /// check that delta reconciliation left the data plane
    /// packet-equivalent to what a from-scratch compile would install.
    pub fn over_table(
        compiler: &'a SdxCompiler,
        rs: &'a RouteServer,
        report: &'a CompileReport,
        table: &'a sdx_openflow::table::FlowTable,
    ) -> Self {
        Differential {
            spec: SpecInterpreter::new(compiler, rs),
            fabric: FabricEvaluator::over_table(compiler, rs, report, table),
        }
    }

    /// Evaluates one packet both ways. `Ok` is the agreed outcome; `Err`
    /// carries the full mismatch (boxed — it holds both traces).
    pub fn check(&self, from: PortId, pkt: &Packet) -> Result<Outcome, Box<Mismatch>> {
        let (spec, spec_trace) = self.spec.verdict(from, pkt);
        let (fabric, fabric_trace) = self.fabric.verdict(from, pkt);
        if spec == fabric {
            Ok(spec)
        } else {
            Err(Box::new(Mismatch {
                from,
                pkt: *pkt,
                spec,
                fabric,
                spec_trace,
                fabric_trace,
            }))
        }
    }

    /// Checks every probe, returning how many packets were *delivered*
    /// (so callers can assert the run wasn't vacuously all-drops), or the
    /// first mismatch.
    pub fn check_all(&self, probes: &[(PortId, Packet)]) -> Result<usize, Box<Mismatch>> {
        let mut delivered = 0;
        for (from, pkt) in probes {
            if matches!(self.check(*from, pkt)?, Outcome::Deliver { .. }) {
                delivered += 1;
            }
        }
        Ok(delivered)
    }
}

/// Aggregate counts from a [`run_smoke`] sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SmokeStats {
    /// Exchanges generated and compiled.
    pub exchanges: usize,
    /// Packets checked across all exchanges.
    pub packets: usize,
    /// Packets both sides agreed were delivered somewhere.
    pub delivers: usize,
    /// Packets both sides agreed were dropped.
    pub drops: usize,
}

impl fmt::Display for SmokeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exchanges, {} packets ({} delivered, {} dropped)",
            self.exchanges, self.packets, self.delivers, self.drops
        )
    }
}

/// The deterministic smoke sweep CI runs: `exchanges` random IXPs from
/// consecutive seeds starting at `seed`, `packets_per` probes each,
/// differentially checked. Returns counts or the first mismatch.
pub fn run_smoke(
    seed: u64,
    exchanges: usize,
    packets_per: usize,
) -> Result<SmokeStats, Box<Mismatch>> {
    let mut stats = SmokeStats {
        exchanges,
        packets: 0,
        delivers: 0,
        drops: 0,
    };
    for i in 0..exchanges {
        let case = seed.wrapping_add(i as u64);
        let mut ex = synth::exchange(case);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        let report = ex
            .compiler
            .compile_all(&ex.rs, &mut vnh)
            .unwrap_or_else(|e| {
                panic!("generated exchange (seed {case}) failed to compile: {e:?}")
            });
        let diff = Differential::new(&ex.compiler, &ex.rs, &report);
        for (from, pkt) in synth::packets(&ex, case, packets_per) {
            match diff.check(from, &pkt)? {
                Outcome::Deliver { .. } => stats.delivers += 1,
                Outcome::Drop => stats.drops += 1,
                _ => {}
            }
            stats.packets += 1;
        }
    }
    Ok(stats)
}

/// Probes aimed where sharding could go wrong: for every shard boundary
/// in `plan`, the first address of the upper slice and the last address
/// of the lower one (the two destinations a cross-shard merge bug would
/// misclassify first), from every participant port, cycling through the
/// policy clause ports so wide-match policies straddling the boundary
/// get exercised too.
pub fn boundary_probes(compiler: &SdxCompiler, plan: &ShardPlan) -> Vec<(PortId, Packet)> {
    let ports: Vec<PortId> = compiler
        .participants()
        .values()
        .flat_map(|c| c.port_ids())
        .collect();
    let mut out = Vec::new();
    let src = Ipv4Addr::new(9, 9, 9, 9);
    for b in plan.boundaries() {
        let below = Ipv4Addr(b.0.wrapping_sub(1));
        for (i, &from) in ports.iter().enumerate() {
            for &dst in &[b, below] {
                let dport = synth::CLAUSE_PORTS[i % synth::CLAUSE_PORTS.len()];
                out.push((from, Packet::tcp(src, dst, 4096, dport)));
                out.push((from, Packet::tcp(src, dst, 4096, 40_000)));
            }
        }
    }
    out
}

/// [`run_smoke`], compiled with [`Sharding::Shards`]`(shards)` over a
/// partitioned allocator: every random probe plus a sweep of
/// [`boundary_probes`] must get the verdict the spec interpreter gives —
/// the spec knows nothing about shards, so any merge seam shows up as a
/// mismatch. Returns counts or the first mismatch.
pub fn run_smoke_sharded(
    seed: u64,
    exchanges: usize,
    packets_per: usize,
    shards: usize,
) -> Result<SmokeStats, Box<Mismatch>> {
    let mut stats = SmokeStats {
        exchanges,
        packets: 0,
        delivers: 0,
        drops: 0,
    };
    for i in 0..exchanges {
        let case = seed.wrapping_add(i as u64);
        let mut ex = synth::exchange(case);
        ex.compiler.options.sharding = Sharding::Shards(shards);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        let report = ex
            .compiler
            .compile_all(&ex.rs, &mut vnh)
            .unwrap_or_else(|e| {
                panic!("generated exchange (seed {case}) failed to compile sharded: {e:?}")
            });
        let plan = ex
            .compiler
            .shard_plan()
            .expect("sharded compile leaves a plan")
            .clone();
        let diff = Differential::new(&ex.compiler, &ex.rs, &report);
        let mut probes = synth::packets(&ex, case, packets_per);
        probes.extend(boundary_probes(&ex.compiler, &plan));
        for (from, pkt) in probes {
            match diff.check(from, &pkt)? {
                Outcome::Deliver { .. } => stats.delivers += 1,
                Outcome::Drop => stats.drops += 1,
                _ => {}
            }
            stats.packets += 1;
        }
    }
    Ok(stats)
}
