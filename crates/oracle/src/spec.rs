//! The reference interpreter: SDX forwarding semantics read straight off
//! the specification.
//!
//! A packet from participant X is handled exactly as §3–§4 of the paper
//! prescribe, with **no compiled artifact in the loop**:
//!
//! 1. X's border router does an LPM over the routes the route server
//!    exported to it; no route → the packet never enters the fabric.
//! 2. X's outbound policy (including global fragments, via
//!    [`SdxCompiler::effective_outbound`]) is evaluated denotationally by
//!    [`sdx_policy::eval`]. A matching `fwd(Y)` clause applies **only if**
//!    BGP consistency holds: Y must have exported a route for the packet's
//!    best-match prefix (or for the rewritten address, for wide-area-LB
//!    clauses). Inapplicable or absent clauses fall to the BGP default.
//! 3. The chosen receiver's inbound policy picks the physical delivery
//!    port; unmatched traffic falls through to the receiver's primary
//!    port (the NEXT_HOP its announcements carry). Port-steering clauses
//!    (`fwd(E1)`) deliver directly, bypassing the owner's inbound policy.
//! 4. A delivery back out the ingress port is hairpin-suppressed.
//!
//! Divergences between this interpreter and the compiled fabric are, by
//! construction, compiler bugs (or spec-model bugs — both worth finding).

use sdx_bgp::route_server::RouteServer;
use sdx_core::compiler::SdxCompiler;
use sdx_core::vswitch::participant_name;
use sdx_net::{LocatedPacket, Packet, ParticipantId, PortId, Prefix};
use sdx_policy::eval::eval_unicast;

use crate::trace::Trace;
use crate::{routed_lpm, Outcome};

/// Where stage 1 (the sender's outbound policy + consistency filter)
/// decided the packet goes next.
enum Next {
    /// No clause applied: follow the BGP best route with the original
    /// packet.
    Default,
    /// A consistent `fwd(Y)` (or routed rewrite): enter Y's virtual
    /// switch carrying the clause's output packet.
    Stage2(ParticipantId, Packet),
    /// Port steering (`fwd(E1)`): deliver at the exact port, bypassing
    /// the owner's inbound policy.
    Direct(PortId, Packet),
}

/// The spec-side oracle. Holds the policy book (compiler) and route
/// server it interprets; both are read-only.
pub struct SpecInterpreter<'a> {
    compiler: &'a SdxCompiler,
    rs: &'a RouteServer,
    announced: Vec<Prefix>,
}

impl<'a> SpecInterpreter<'a> {
    /// An interpreter over `compiler`'s participants/policies and `rs`'s
    /// routes. The announced-prefix list is snapshotted here; rebuild the
    /// interpreter after BGP churn.
    pub fn new(compiler: &'a SdxCompiler, rs: &'a RouteServer) -> Self {
        SpecInterpreter {
            compiler,
            rs,
            announced: rs.all_prefixes(),
        }
    }

    /// Evaluates a packet entering the fabric at `from`, returning the
    /// specified outcome and the stage-by-stage trace.
    pub fn verdict(&self, from: PortId, pkt: &Packet) -> (Outcome, Trace) {
        let mut t = Trace::new("spec");
        let sender = from.participant();

        // Stage 0: the sender's border router. No usable route, no packet.
        let Some(p_star) = routed_lpm(self.rs, &self.announced, sender, pkt.nw_dst) else {
            t.push(
                "route",
                format!(
                    "no route exported to {} covers {}: router drops",
                    participant_name(sender),
                    pkt.nw_dst
                ),
            );
            return (Outcome::Drop, t);
        };
        t.push(
            "route",
            format!("{} matches {p_star} (longest exported prefix)", pkt.nw_dst),
        );

        // Stage 1: outbound policy + BGP consistency.
        let next = match self.stage1(from, pkt, p_star, &mut t) {
            Ok(next) => next,
            Err(outcome) => return (outcome, t),
        };
        let (receiver, pkt2) = match next {
            Next::Direct(port, out) => {
                t.push(
                    "deliver",
                    format!("port steering delivers at {port}, bypassing inbound policy"),
                );
                return (self.deliver(from, port, &out, &mut t), t);
            }
            Next::Stage2(nh, out) => (nh, out),
            Next::Default => {
                let best = self
                    .rs
                    .best_for(sender, p_star)
                    .expect("p_star was chosen because a best route exists");
                let nh = best.source.participant;
                t.push(
                    "default",
                    format!(
                        "BGP best route for {p_star} is via {}",
                        participant_name(nh)
                    ),
                );
                (nh, *pkt)
            }
        };

        // Stage 2: the receiver's inbound policy, then primary-port
        // delivery.
        let port = match self.stage2(receiver, &pkt2, &mut t) {
            Ok(port) => port,
            Err(outcome) => return (outcome, t),
        };
        (self.deliver(from, port, &pkt2, &mut t), t)
    }

    /// Outbound evaluation. `Err` carries an early outcome (policy shapes
    /// the compiler rejects, reported rather than guessed at).
    fn stage1(
        &self,
        from: PortId,
        pkt: &Packet,
        p_star: Prefix,
        t: &mut Trace,
    ) -> Result<Next, Outcome> {
        let sender = from.participant();
        let Some(pol) = self.compiler.effective_outbound(sender) else {
            t.push("outbound", "no outbound policy: default path");
            return Ok(Next::Default);
        };
        let lp = LocatedPacket::at(from, *pkt);
        let out = match eval_unicast(&pol, &lp) {
            Ok(Some(out)) => out,
            Ok(None) => {
                t.push("outbound", "no clause matched: default path");
                return Ok(Next::Default);
            }
            Err(outs) => {
                t.push(
                    "outbound",
                    "outbound policy multicasts — the compiler rejects this shape",
                );
                return Err(Outcome::Multi(
                    outs.iter().map(|o| (o.loc, o.pkt.nw_dst)).collect(),
                ));
            }
        };

        let rewritten = out.pkt.nw_dst != pkt.nw_dst;
        if rewritten {
            // Wide-area load balancing (§3.2): consistency is checked on
            // the *rewritten* address.
            return Ok(match out.loc {
                PortId::Virt(nh) => {
                    if self
                        .rs
                        .reachable_via_addr(sender, out.pkt.nw_dst)
                        .contains(&nh)
                    {
                        t.push(
                            "consistency",
                            format!(
                                "rewrite to {} is reachable via {}: clause applies",
                                out.pkt.nw_dst,
                                participant_name(nh)
                            ),
                        );
                        Next::Stage2(nh, out.pkt)
                    } else {
                        t.push(
                            "consistency",
                            format!(
                                "{} did not export a route for rewritten {}: default path, original packet",
                                participant_name(nh),
                                out.pkt.nw_dst
                            ),
                        );
                        Next::Default
                    }
                }
                PortId::Phys(..) if out.loc != from => {
                    t.push(
                        "consistency",
                        "rewrite with a port-steering target cannot be consistency-checked: \
                         the compiler drops the rule; default path, original packet",
                    );
                    Next::Default
                }
                _ => {
                    // Rewrite without an explicit fwd: follow the
                    // rewritten address's own best route.
                    match self.rs.best_for_addr(sender, out.pkt.nw_dst) {
                        Some(r) => {
                            let nh = r.source.participant;
                            t.push(
                                "consistency",
                                format!(
                                    "rewrite to {} follows its best route via {}",
                                    out.pkt.nw_dst,
                                    participant_name(nh)
                                ),
                            );
                            Next::Stage2(nh, out.pkt)
                        }
                        None => {
                            t.push(
                                "consistency",
                                format!(
                                    "rewritten address {} is unroutable: default path, original packet",
                                    out.pkt.nw_dst
                                ),
                            );
                            Next::Default
                        }
                    }
                }
            });
        }

        Ok(match out.loc {
            loc if loc == from => {
                t.push(
                    "outbound",
                    "clause modifies without forwarding: the fabric sheds the mods and \
                     keeps the default path (known exclusion)",
                );
                Next::Default
            }
            PortId::Virt(nh) => {
                if self.rs.reachable_via(sender, p_star).contains(&nh) {
                    t.push(
                        "consistency",
                        format!(
                            "{} exported a route for {p_star}: fwd({}) applies",
                            participant_name(nh),
                            participant_name(nh)
                        ),
                    );
                    Next::Stage2(nh, out.pkt)
                } else {
                    t.push(
                        "consistency",
                        format!(
                            "{} did not export a route for {p_star}: fwd({}) suppressed, default path",
                            participant_name(nh),
                            participant_name(nh)
                        ),
                    );
                    Next::Default
                }
            }
            PortId::Phys(owner, idx) => {
                if self.compiler.participant(owner).is_none() {
                    t.push(
                        "outbound",
                        format!(
                            "steering target {}:{idx} belongs to no participant: rule dropped, default path",
                            participant_name(owner)
                        ),
                    );
                    Next::Default
                } else {
                    Next::Direct(out.loc, out.pkt)
                }
            }
        })
    }

    /// Inbound evaluation at the receiver's virtual switch: the clause's
    /// physical port, or the primary-port fallback.
    fn stage2(
        &self,
        receiver: ParticipantId,
        pkt: &Packet,
        t: &mut Trace,
    ) -> Result<PortId, Outcome> {
        let Some(cfg) = self.compiler.participant(receiver) else {
            t.push(
                "inbound",
                format!(
                    "{} has no participant config: no stage-2 block, packet dropped",
                    participant_name(receiver)
                ),
            );
            return Err(Outcome::Drop);
        };
        if let Some(inb) = cfg.inbound.as_ref() {
            let lp = LocatedPacket::at(PortId::Virt(receiver), *pkt);
            match eval_unicast(inb, &lp) {
                Ok(Some(out)) => match out.loc {
                    port @ PortId::Phys(..) => {
                        t.push(
                            "inbound",
                            format!(
                                "{}'s inbound policy picks {port}",
                                participant_name(receiver)
                            ),
                        );
                        return Ok(port);
                    }
                    other => {
                        // The compiler rejects inbound clauses without a
                        // physical target; if we ever get here the policy
                        // could not have compiled.
                        t.push(
                            "inbound",
                            format!(
                                "inbound clause escapes the virtual switch (to {other}) — \
                                 the compiler rejects this shape; treating as fall-through"
                            ),
                        );
                    }
                },
                Ok(None) => {
                    t.push(
                        "inbound",
                        "no inbound clause matched (explicit drops fall through to delivery)",
                    );
                }
                Err(outs) => {
                    t.push("inbound", "inbound policy multicasts");
                    return Err(Outcome::Multi(
                        outs.iter().map(|o| (o.loc, o.pkt.nw_dst)).collect(),
                    ));
                }
            }
        }
        let primary = cfg.primary_port();
        let port = PortId::Phys(receiver, primary.index);
        t.push(
            "inbound",
            format!(
                "fallback delivery at {}'s primary port {port}",
                participant_name(receiver)
            ),
        );
        Ok(port)
    }

    /// Final delivery with hairpin suppression (a switch never emits a
    /// frame back out its ingress port).
    fn deliver(&self, from: PortId, port: PortId, pkt: &Packet, t: &mut Trace) -> Outcome {
        if port == from {
            t.push(
                "deliver",
                format!("{port} is the ingress port: hairpin suppressed"),
            );
            return Outcome::Drop;
        }
        t.push(
            "deliver",
            format!("delivered at {port} (dst {})", pkt.nw_dst),
        );
        Outcome::Deliver {
            port,
            nw_dst: pkt.nw_dst,
        }
    }
}
