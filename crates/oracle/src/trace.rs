//! Per-stage evaluation traces.
//!
//! Every oracle verdict carries a [`Trace`]: one step per decision the
//! evaluation made (route lookup, ARP resolution, clause application,
//! classifier rule hit, delivery). When the differential harness finds a
//! mismatch, the shrunk counterexample renders both sides' traces as a
//! human-readable stage-by-stage story, and mirrors them into the
//! `sdx-telemetry` journal as [`Event::Custom`] entries named
//! `oracle.<side>.<stage>` so the replay tooling sees them too.

use sdx_net::HeaderMatch;
use sdx_telemetry::{Event, Registry};

/// One decision the evaluation made.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// The pipeline stage: `route`, `arp`, `outbound`, `consistency`,
    /// `default`, `inbound`, `classifier`, or `deliver`.
    pub stage: &'static str,
    /// Human-readable detail of what was decided and why.
    pub detail: String,
}

/// An ordered stage-by-stage record of one evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    /// Which oracle side produced it: `spec` or `fabric`.
    pub side: &'static str,
    steps: Vec<TraceStep>,
}

impl Trace {
    /// An empty trace for `side` (`"spec"` or `"fabric"`).
    pub fn new(side: &'static str) -> Self {
        Trace {
            side,
            steps: Vec::new(),
        }
    }

    /// Appends a step.
    pub fn push(&mut self, stage: &'static str, detail: impl Into<String>) {
        self.steps.push(TraceStep {
            stage,
            detail: detail.into(),
        });
    }

    /// The recorded steps, in evaluation order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Renders the trace as indented `[side] stage: detail` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&format!("  [{}] {:<11} {}\n", self.side, s.stage, s.detail));
        }
        out
    }

    /// Mirrors every step into `reg`'s journal as
    /// `Event::Custom { name: "oracle.<side>.<stage>", .. }`.
    pub fn emit(&self, reg: &Registry) {
        for s in &self.steps {
            reg.record_event(Event::Custom {
                name: format!("oracle.{}.{}", self.side, s.stage),
                detail: s.detail.clone(),
            });
        }
    }
}

/// Compact rendering of a [`HeaderMatch`] for classifier-step traces:
/// only the constrained fields, `*` for a full wildcard.
pub fn fmt_match(m: &HeaderMatch) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(p) = m.in_port {
        parts.push(format!("in_port={p}"));
    }
    if let Some(mac) = m.dl_src {
        parts.push(format!("dl_src={mac}"));
    }
    if let Some(mac) = m.dl_dst {
        parts.push(format!("dl_dst={mac}"));
    }
    if let Some(e) = m.eth_type {
        parts.push(format!("eth_type={:#06x}", e.value()));
    }
    if let Some(p) = m.nw_src {
        parts.push(format!("srcip={p}"));
    }
    if let Some(p) = m.nw_dst {
        parts.push(format!("dstip={p}"));
    }
    if let Some(p) = m.nw_proto {
        parts.push(format!("proto={}", p.value()));
    }
    if let Some(p) = m.tp_src {
        parts.push(format!("srcport={p}"));
    }
    if let Some(p) = m.tp_dst {
        parts.push(format!("dstport={p}"));
    }
    if parts.is_empty() {
        "*".to_string()
    } else {
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{prefix, FieldMatch};

    #[test]
    fn render_and_emit() {
        let mut t = Trace::new("spec");
        t.push("route", "10.0.0.9 matches 10.0.0.0/8");
        t.push("deliver", "at B1");
        let r = t.render();
        assert!(r.contains("[spec] route"));
        assert!(r.contains("10.0.0.0/8"));

        let reg = Registry::new();
        t.emit(&reg);
        let kinds = reg.journal().kinds();
        assert_eq!(kinds, vec!["custom", "custom"]);
        let entries = reg.journal().entries();
        assert!(matches!(
            &entries[0].event,
            Event::Custom { name, .. } if name == "oracle.spec.route"
        ));
    }

    #[test]
    fn match_formatting() {
        assert_eq!(fmt_match(&HeaderMatch::any()), "*");
        let m = HeaderMatch::of(FieldMatch::TpDst(80)).and(FieldMatch::NwDst(prefix("10.0.0.0/8")));
        let s = fmt_match(&m);
        assert!(s.contains("dstport=80"));
        assert!(s.contains("dstip=10.0.0.0/8"));
    }
}
