//! Micro-benchmarks for classifier composition — the inner loop of SDX
//! compilation (§4.3.1). Measures parallel and sequential composition at
//! several classifier sizes, plus the disjoint-concatenation shortcut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_net::{ip, prefix, FieldMatch, Ipv4Addr, Prefix};
use sdx_net::{ParticipantId, PortId};
use sdx_policy::{compile, Policy, Pred};

/// A policy of `n` disjoint destination-block clauses.
fn block_policy(n: usize) -> Policy {
    let mut pol = Policy::drop();
    for i in 0..n {
        let block = Prefix::new(
            Ipv4Addr::new(10, (i >> 4) as u8, ((i & 15) << 4) as u8, 0),
            20,
        );
        pol = pol
            + (Policy::filter(Pred::Test(FieldMatch::NwDst(block)))
                >> Policy::fwd(PortId::Virt(ParticipantId(1 + (i % 7) as u32))));
    }
    pol
}

/// A policy of `n` *overlapping* clauses (forces the quadratic path).
fn overlapping_policy(n: usize) -> Policy {
    let mut pol = Policy::drop();
    for i in 0..n {
        pol = pol
            + (Policy::match_(FieldMatch::TpDst(80 + (i % 3) as u16))
                >> Policy::fwd(PortId::Virt(ParticipantId(1 + i as u32))));
    }
    pol
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_compile");
    for n in [16usize, 64, 256] {
        let disjoint = block_policy(n);
        g.bench_with_input(
            BenchmarkId::new("disjoint_clauses", n),
            &disjoint,
            |b, p| b.iter(|| compile(p)),
        );
    }
    for n in [4usize, 8, 16] {
        let overlapping = overlapping_policy(n);
        g.bench_with_input(
            BenchmarkId::new("overlapping_clauses", n),
            &overlapping,
            |b, p| b.iter(|| compile(p)),
        );
    }
    g.finish();
}

fn bench_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier_composition");
    for n in [16usize, 64, 256] {
        let c1 = compile(&block_policy(n));
        let c2 = compile(
            &((Policy::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1")))
                >> Policy::fwd(PortId::Phys(ParticipantId(9), 1)))
                + (Policy::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1")))
                    >> Policy::fwd(PortId::Phys(ParticipantId(9), 2)))),
        );
        g.bench_with_input(
            BenchmarkId::new("sequential", n),
            &(c1.clone(), c2.clone()),
            |b, (a, z)| b.iter(|| a.sequential(z)),
        );
        g.bench_with_input(BenchmarkId::new("parallel", n), &(c1, c2), |b, (a, z)| {
            b.iter(|| a.parallel(z))
        });
    }
    g.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    use sdx_net::{LocatedPacket, Packet};
    let classifier = compile(&block_policy(256));
    let pkt = LocatedPacket::at(
        PortId::Phys(ParticipantId(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip("10.7.128.5"), 40_000, 80),
    );
    c.bench_function("classifier_evaluate_256_rules", |b| {
        b.iter(|| classifier.evaluate(&pkt))
    });
}

criterion_group!(benches, bench_compile, bench_composition, bench_evaluate);
criterion_main!(benches);
