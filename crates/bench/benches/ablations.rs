//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **pair pruning** (§4.3.1 "compose only participants that exchange
//!   traffic") vs. the naive quadratic cross product;
//! * **memoization** of raw policy compilations vs. recompiling;
//! * **FEC grouping** (§4.2 VNH/VMAC compression) vs. one group per
//!   prefix — measured in both time and resulting rule count;
//! * **two-stage incremental** (§4.3.2 fast path) vs. a full pipeline
//!   re-run per update.

use criterion::{criterion_group, criterion_main, Criterion};
use sdx_bench::Workbench;
use sdx_core::vnh::VnhAllocator;
use sdx_net::Prefix;

fn ablation_pair_pruning(c: &mut Criterion) {
    // The optimization targets the *composition* step specifically, so the
    // bench times `compose_time` (via iter_custom) rather than the whole
    // pipeline — VNH computation would otherwise bury the difference.
    let mut g = c.benchmark_group("ablation_pair_pruning_compose");
    g.sample_size(10);
    let wb = Workbench::new(100, 10_000, 6400, 21);
    g.bench_function("optimized", |b| {
        let mut compiler = wb.compiler();
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let mut vnh = VnhAllocator::default();
                let r = compiler.compile_all(&wb.rs, &mut vnh).expect("compiles");
                total += r.stats.compose_time;
            }
            total
        })
    });
    g.bench_function("naive_cross_product", |b| {
        let mut compiler = wb.compiler();
        compiler.options.pair_pruning = false;
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let mut vnh = VnhAllocator::default();
                let r = compiler.compile_all(&wb.rs, &mut vnh).expect("compiles");
                total += r.stats.compose_time;
            }
            total
        })
    });
    g.finish();
}

fn ablation_memoization(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_memoization");
    g.sample_size(10);
    let wb = Workbench::new(100, 10_000, 6400, 22);
    g.bench_function("memoized", |b| {
        let mut compiler = wb.compiler();
        b.iter(|| {
            let mut vnh = VnhAllocator::default();
            compiler.compile_all(&wb.rs, &mut vnh).expect("compiles")
        })
    });
    g.bench_function("no_memo", |b| {
        let mut compiler = wb.compiler();
        compiler.options.memoize = false;
        b.iter(|| {
            let mut vnh = VnhAllocator::default();
            compiler.compile_all(&wb.rs, &mut vnh).expect("compiles")
        })
    });
    g.finish();
}

fn ablation_fec_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fec_grouping");
    g.sample_size(10);
    let wb = Workbench::new(100, 10_000, 6400, 23);
    // Report the rule-count impact once, outside the timed loop.
    {
        let mut compiler = wb.compiler();
        let mut vnh = VnhAllocator::default();
        let grouped = compiler.compile_all(&wb.rs, &mut vnh).expect("compiles");
        let mut compiler2 = wb.compiler();
        compiler2.options.fec_grouping = false;
        let mut vnh2 = VnhAllocator::default();
        let ungrouped = compiler2.compile_all(&wb.rs, &mut vnh2).expect("compiles");
        eprintln!(
            "[ablation_fec_grouping] rules with grouping: {}, without: {} ({:.1}x)",
            grouped.stats.forwarding_rules,
            ungrouped.stats.forwarding_rules,
            ungrouped.stats.forwarding_rules as f64 / grouped.stats.forwarding_rules.max(1) as f64,
        );
    }
    g.bench_function("grouped", |b| {
        let mut compiler = wb.compiler();
        b.iter(|| {
            let mut vnh = VnhAllocator::default();
            compiler.compile_all(&wb.rs, &mut vnh).expect("compiles")
        })
    });
    g.bench_function("per_prefix", |b| {
        let mut compiler = wb.compiler();
        compiler.options.fec_grouping = false;
        b.iter(|| {
            let mut vnh = VnhAllocator::default();
            compiler.compile_all(&wb.rs, &mut vnh).expect("compiles")
        })
    });
    g.finish();
}

fn ablation_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_incremental");
    g.sample_size(10);
    let wb = Workbench::new(100, 10_000, 6400, 24);
    let mut compiler = wb.compiler();
    let mut vnh = VnhAllocator::default();
    let base = compiler.compile_all(&wb.rs, &mut vnh).expect("base");
    let target: Prefix = *base.vnh_of.keys().map(|(_, p)| p).next().expect("affected");

    g.bench_function("fast_path_per_update", |b| {
        b.iter(|| {
            compiler
                .fast_update(&wb.rs, &mut vnh, target)
                .expect("delta")
        })
    });
    g.bench_function("full_recompile_per_update", |b| {
        b.iter(|| {
            let mut vnh = VnhAllocator::default();
            compiler.compile_all(&wb.rs, &mut vnh).expect("compiles")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_pair_pruning,
    ablation_memoization,
    ablation_fec_grouping,
    ablation_incremental
);
criterion_main!(benches);
