//! Incremental-update benchmarks: the Figure 10 measurement as a
//! Criterion bench — per-update fast-path latency — and burst handling
//! (Figure 9's unit of work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdx_bench::Workbench;
use sdx_core::vnh::VnhAllocator;
use sdx_net::Prefix;

fn bench_fast_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast_update");
    for n in [100usize, 300] {
        let wb = Workbench::new(n, 25_000, 12_800, 10 + n as u64);
        let mut compiler = wb.compiler();
        let mut vnh = VnhAllocator::default();
        let base = compiler.compile_all(&wb.rs, &mut vnh).expect("base");
        let mut affected: Vec<Prefix> = base.vnh_of.keys().map(|(_, p)| *p).collect();
        affected.sort();
        affected.dedup();
        let mut rng = StdRng::seed_from_u64(3);
        affected.shuffle(&mut rng);
        let targets: Vec<Prefix> = affected.into_iter().take(32).collect();

        g.bench_with_input(
            BenchmarkId::new("single_update", n),
            &targets,
            |b, targets| {
                let mut i = 0usize;
                b.iter(|| {
                    let p = targets[i % targets.len()];
                    i += 1;
                    compiler.fast_update(&wb.rs, &mut vnh, p).expect("delta")
                })
            },
        );
    }
    g.finish();
}

fn bench_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast_update_burst");
    g.sample_size(10);
    let wb = Workbench::new(200, 25_000, 12_800, 77);
    let mut compiler = wb.compiler();
    let mut vnh = VnhAllocator::default();
    let base = compiler.compile_all(&wb.rs, &mut vnh).expect("base");
    let mut affected: Vec<Prefix> = base.vnh_of.keys().map(|(_, p)| *p).collect();
    affected.sort();
    affected.dedup();
    let mut rng = StdRng::seed_from_u64(4);
    affected.shuffle(&mut rng);

    for size in [10usize, 50, 100] {
        let burst: Vec<Prefix> = affected.iter().copied().take(size).collect();
        g.bench_with_input(BenchmarkId::new("burst_size", size), &burst, |b, burst| {
            b.iter(|| {
                compiler
                    .fast_update_burst(&wb.rs, &mut vnh, burst)
                    .expect("delta")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fast_update, bench_burst);
criterion_main!(benches);
