//! End-to-end pipeline benchmarks: the Figure 8 measurement as a
//! Criterion bench (initial compilation at several workload scales), plus
//! the FEC/MDS computation in isolation (Figure 6's engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_bench::Workbench;
use sdx_core::fec::minimum_disjoint_subsets;
use sdx_core::vnh::VnhAllocator;
use sdx_ixp::topology::{build, TopologyParams};
use sdx_net::Prefix;

fn bench_initial_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("initial_compile");
    g.sample_size(10);
    for (n, px) in [(100usize, 6400usize), (100, 12_800), (200, 6400)] {
        let wb = Workbench::new(n, 25_000, px, 88);
        g.bench_with_input(
            BenchmarkId::new("participants_policyprefixes", format!("{n}x{px}")),
            &wb,
            |b, wb| {
                // Memo persists across iterations, as in a live controller.
                let mut compiler = wb.compiler();
                b.iter(|| {
                    let mut vnh = VnhAllocator::default();
                    compiler.compile_all(&wb.rs, &mut vnh).expect("compiles")
                })
            },
        );
    }
    g.finish();
}

fn bench_mds(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimum_disjoint_subsets");
    for n in [100usize, 300] {
        let ixp = build(&TopologyParams {
            participants: n,
            prefixes: 25_000,
            seed: 6,
            ..Default::default()
        });
        let sets: Vec<Vec<Prefix>> = ixp
            .announcement_sets()
            .into_iter()
            .map(|(_, ps)| ps)
            .collect();
        g.bench_with_input(BenchmarkId::new("participants", n), &sets, |b, sets| {
            b.iter(|| minimum_disjoint_subsets(sets))
        });
    }
    g.finish();
}

fn bench_route_server_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_server");
    g.sample_size(10);
    let ixp = build(&TopologyParams {
        participants: 100,
        prefixes: 10_000,
        seed: 5,
        ..Default::default()
    });
    g.bench_function("full_table_load_100x10k", |b| b.iter(|| ixp.route_server()));
    g.finish();
}

criterion_group!(
    benches,
    bench_initial_compile,
    bench_mds,
    bench_route_server_convergence
);
criterion_main!(benches);
