//! Substrate micro-benchmarks: the building blocks everything else sits
//! on — prefix-trie longest-prefix match, BGP wire codec, the decision
//! process, AS-path regex matching, and flow-table lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx_bgp::aspath_re::AsPathRegex;
use sdx_bgp::attrs::{AsPath, PathAttributes};
use sdx_bgp::msg::{BgpMessage, UpdateMessage};
use sdx_bgp::wire;
use sdx_net::{ip, Ipv4Addr, Prefix, PrefixTrie};

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_trie");
    for n in [1_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut trie = PrefixTrie::new();
        for i in 0..n {
            trie.insert(Prefix::new(Ipv4Addr(rng.gen()), 8 + (i % 25) as u8), i);
        }
        let probes: Vec<Ipv4Addr> = (0..1024).map(|_| Ipv4Addr(rng.gen())).collect();
        g.bench_with_input(BenchmarkId::new("lpm_1024_lookups", n), &trie, |b, t| {
            b.iter(|| {
                let mut hits = 0usize;
                for &a in &probes {
                    if t.lookup(a).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let update = UpdateMessage::announce(
        (0..32u32).map(|i| Prefix::new(Ipv4Addr::new(10, i as u8, 0, 0), 16)),
        PathAttributes::new(AsPath::sequence([65001, 3356, 43515]), ip("172.16.0.1")),
    );
    let msg = BgpMessage::Update(update);
    let encoded = wire::encode(&msg);
    c.bench_function("bgp_wire_encode_32_nlri", |b| b.iter(|| wire::encode(&msg)));
    c.bench_function("bgp_wire_decode_32_nlri", |b| {
        b.iter(|| {
            let mut buf = encoded.clone();
            wire::decode(&mut buf).expect("valid")
        })
    });
}

fn bench_decision(c: &mut Criterion) {
    use sdx_bgp::decision::best_route;
    use sdx_bgp::rib::{Route, RouteSource};
    use sdx_net::{Asn, ParticipantId, RouterId};
    let routes: Vec<Route> = (0..64u32)
        .map(|i| Route {
            source: RouteSource {
                participant: ParticipantId(i),
                asn: Asn(65000 + i),
                router_id: RouterId(i * 7919 % 101),
                peer_addr: Ipv4Addr(0xac100000 + i),
            },
            attrs: PathAttributes::new(
                AsPath::sequence((0..(1 + i % 5)).map(|h| 1000 + h)),
                Ipv4Addr(0xac100000 + i),
            ),
        })
        .collect();
    c.bench_function("bgp_decision_64_candidates", |b| {
        b.iter(|| best_route(routes.iter()).cloned())
    });
}

fn bench_aspath_regex(c: &mut Criterion) {
    let re = AsPathRegex::compile(".*43515$").expect("compiles");
    let paths: Vec<AsPath> = (0..256u32)
        .map(|i| {
            AsPath::sequence([
                65000 + i,
                3356,
                if i.is_multiple_of(3) { 43515 } else { 15169 },
            ])
        })
        .collect();
    c.bench_function("aspath_regex_256_paths", |b| {
        b.iter(|| paths.iter().filter(|p| re.is_match(p)).count())
    });
}

fn bench_flow_table(c: &mut Criterion) {
    use sdx_net::{
        FieldMatch, HeaderMatch, LocatedPacket, MacAddr, Mod, Packet, ParticipantId, PortId,
    };
    use sdx_openflow::table::{FlowEntry, FlowTable};
    let mut table = FlowTable::new();
    for i in 0..2000u32 {
        table.install(FlowEntry::new(
            2000 - i,
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(i))),
            vec![vec![Mod::SetLoc(PortId::Phys(ParticipantId(i % 64), 1))]],
        ));
    }
    let pkt = LocatedPacket::at(
        PortId::Phys(ParticipantId(1), 1),
        Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80)
            .with_macs(MacAddr::physical(1), MacAddr::vmac(1500)),
    );
    c.bench_function("flow_table_lookup_2000_entries", |b| {
        b.iter(|| table.lookup(&pkt).is_some())
    });
}

criterion_group!(
    benches,
    bench_trie,
    bench_wire,
    bench_decision,
    bench_aspath_regex,
    bench_flow_table
);
criterion_main!(benches);
