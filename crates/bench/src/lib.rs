//! # sdx-bench — the experiment harness
//!
//! One `repro_*` binary per table/figure of the paper's evaluation, plus
//! Criterion micro-benches (in `benches/`). Each binary prints the rows or
//! series the paper reports, as an ASCII table and as JSON lines (for
//! plotting), and EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! The shared machinery here builds paper-scale workloads, runs the
//! controller pipeline, and formats results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use sdx_core::compiler::{CompileReport, SdxCompiler};
use sdx_core::vnh::VnhAllocator;
use sdx_ixp::policy_workload::{assign_policies, PolicyWorkloadParams};
use sdx_ixp::topology::{build, SyntheticIxp, TopologyParams};

/// A ready-to-compile experiment instance.
pub struct Workbench {
    /// The synthetic IXP with policies installed.
    pub ixp: SyntheticIxp,
    /// Its route server, fully converged.
    pub rs: sdx_bgp::route_server::RouteServer,
}

impl Workbench {
    /// Builds an IXP of `participants`/`prefixes` with the §6.1 policy
    /// workload over `policy_prefixes` destination prefixes.
    pub fn new(participants: usize, prefixes: usize, policy_prefixes: usize, seed: u64) -> Self {
        let mut ixp = build(&TopologyParams {
            participants,
            prefixes,
            seed,
            ..Default::default()
        });
        assign_policies(
            &mut ixp,
            &PolicyWorkloadParams {
                policy_prefixes,
                seed: seed.wrapping_mul(31).wrapping_add(7),
                ..Default::default()
            },
        );
        let rs = ixp.route_server();
        Workbench { ixp, rs }
    }

    /// A fresh compiler loaded with this workbench's participants.
    pub fn compiler(&self) -> SdxCompiler {
        let mut c = SdxCompiler::new();
        for p in &self.ixp.participants {
            c.upsert_participant(p.clone());
        }
        c
    }

    /// One full pipeline run.
    pub fn compile(&self) -> CompileReport {
        let mut compiler = self.compiler();
        let mut vnh = VnhAllocator::default();
        compiler
            .compile_all(&self.rs, &mut vnh)
            .expect("workload compiles")
    }
}

/// Formats a duration in the most readable unit.
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(10) {
        format!("{:.1}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(10) {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

/// Prints an ASCII table: header + rows, column-aligned.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Emits one JSON line per row to stdout (machine-readable companion).
pub fn print_json(experiment: &str, rows: &[serde_json::Value]) {
    for row in rows {
        let mut obj = row.clone();
        if let Some(map) = obj.as_object_mut() {
            map.insert(
                "experiment".to_string(),
                serde_json::Value::String(experiment.to_string()),
            );
        }
        println!("{obj}");
    }
}

/// Quantile of a sorted slice (nearest-rank).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_compiles_end_to_end() {
        let wb = Workbench::new(50, 1000, 200, 1);
        let report = wb.compile();
        assert!(report.stats.group_count > 0);
        assert!(report.stats.forwarding_rules > 0);
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.5), 50.0);
        assert_eq!(quantile(&v, 0.75), 75.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0s");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(9)), "9.0µs");
    }
}
