//! # sdx-bench — the experiment harness
//!
//! One `repro_*` binary per table/figure of the paper's evaluation, plus
//! Criterion micro-benches (in `benches/`). Each binary prints the rows or
//! series the paper reports, as an ASCII table and as JSON lines (for
//! plotting), and EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! The shared machinery here builds paper-scale workloads, runs the
//! controller pipeline, and formats results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use sdx_telemetry::{Json, MetricsSnapshot};

use sdx_core::compiler::{CompileReport, SdxCompiler};
use sdx_core::vnh::VnhAllocator;
use sdx_ixp::policy_workload::{assign_policies, PolicyWorkloadParams};
use sdx_ixp::topology::{build, SyntheticIxp, TopologyParams};

/// A ready-to-compile experiment instance.
pub struct Workbench {
    /// The synthetic IXP with policies installed.
    pub ixp: SyntheticIxp,
    /// Its route server, fully converged.
    pub rs: sdx_bgp::route_server::RouteServer,
}

impl Workbench {
    /// Builds an IXP of `participants`/`prefixes` with the §6.1 policy
    /// workload over `policy_prefixes` destination prefixes.
    pub fn new(participants: usize, prefixes: usize, policy_prefixes: usize, seed: u64) -> Self {
        let mut ixp = build(&TopologyParams {
            participants,
            prefixes,
            seed,
            ..Default::default()
        });
        assign_policies(
            &mut ixp,
            &PolicyWorkloadParams {
                policy_prefixes,
                seed: seed.wrapping_mul(31).wrapping_add(7),
                ..Default::default()
            },
        );
        let rs = ixp.route_server();
        Workbench { ixp, rs }
    }

    /// A fresh compiler loaded with this workbench's participants.
    pub fn compiler(&self) -> SdxCompiler {
        let mut c = SdxCompiler::new();
        for p in &self.ixp.participants {
            c.upsert_participant(p.clone());
        }
        c
    }

    /// One full pipeline run.
    pub fn compile(&self) -> CompileReport {
        let mut compiler = self.compiler();
        let mut vnh = VnhAllocator::default();
        compiler
            .compile_all(&self.rs, &mut vnh)
            .expect("workload compiles")
    }
}

/// Formats a duration in the most readable unit.
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(10) {
        format!("{:.1}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(10) {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

/// Prints an ASCII table: header + rows, column-aligned.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Builds a JSON object row from `(key, value)` pairs.
pub fn row(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)))
}

/// Emits one JSON line per row to stdout (machine-readable companion).
pub fn print_json(experiment: &str, rows: &[Json]) {
    for r in rows {
        let mut obj = vec![("experiment".to_string(), Json::from(experiment))];
        if let Json::Obj(pairs) = r {
            obj.extend(pairs.iter().cloned());
        }
        println!("{}", Json::Obj(obj));
    }
}

/// The `--json <path>` argument, if the binary was invoked with one.
pub fn json_path_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Writes the full machine-readable report for an experiment:
/// `{"experiment", "rows", "metrics"}`, where `metrics` is the
/// [`MetricsSnapshot`] collected while the experiment ran.
pub fn write_json_report(
    path: &str,
    experiment: &str,
    rows: &[Json],
    metrics: &MetricsSnapshot,
) -> std::io::Result<()> {
    let doc = Json::obj([
        ("experiment".to_string(), Json::from(experiment)),
        ("rows".to_string(), Json::Arr(rows.to_vec())),
        ("metrics".to_string(), metrics.to_json()),
    ]);
    std::fs::write(path, doc.pretty())
}

/// The shared reporting contract of every `repro_*` binary: rows as JSON
/// lines on stdout, plus — when `--json <path>` was passed — the full
/// `{experiment, rows, metrics}` report written to the path.
pub fn report(experiment: &str, rows: &[Json], metrics: &MetricsSnapshot) {
    print_json(experiment, rows);
    if let Some(path) = json_path_from_args() {
        write_json_report(&path, experiment, rows, metrics).expect("write --json report");
        eprintln!("wrote {path}");
    }
}

/// Quantile of a sorted slice (nearest-rank).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_compiles_end_to_end() {
        let wb = Workbench::new(50, 1000, 200, 1);
        let report = wb.compile();
        assert!(report.stats.group_count > 0);
        assert!(report.stats.forwarding_rules > 0);
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.5), 50.0);
        assert_eq!(quantile(&v, 0.75), 75.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
    }

    #[test]
    fn report_round_trips_through_a_file() {
        let reg = sdx_telemetry::Registry::new();
        reg.inc("bench.test.count");
        reg.observe_duration("bench.stage", Duration::from_millis(3));
        let rows = vec![row([
            ("participants", 100usize.into()),
            ("p50_ms", 1.5.into()),
        ])];
        let path = std::env::temp_dir().join("sdx_bench_report_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        write_json_report(path, "figX", &rows, &reg.snapshot()).expect("write");
        let text = std::fs::read_to_string(path).expect("read back");
        let doc = Json::parse(&text).expect("parses");
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("figX"));
        let first = &doc.get("rows").and_then(Json::as_arr).expect("rows")[0];
        assert_eq!(first.get("participants").and_then(Json::as_u64), Some(100));
        let metrics = doc.get("metrics").expect("metrics");
        assert_eq!(
            metrics
                .get("counters")
                .and_then(|c| c.get("bench.test.count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(metrics
            .get("histograms")
            .and_then(|h| h.get("bench.stage"))
            .is_some());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0s");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(9)), "9.0µs");
    }
}
