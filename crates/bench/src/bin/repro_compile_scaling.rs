//! Compile-pipeline scaling — the PR-3 performance experiment.
//!
//! Measures one full `compile_all` over a paper-scale workload (≥50
//! participants, ≥5k policy prefixes by default) under each pipeline
//! configuration:
//!
//! * `serial/scan` — the ablation baseline: single-threaded, every BGP
//!   join a full Loc-RIB scan (the pre-index pipeline's behaviour);
//! * `serial/indexed` — inverted announcer index + decision cache, still
//!   single-threaded (isolates the index speedup);
//! * `threads(N)/indexed` — the parallel phased pipeline;
//! * `auto/indexed` — `available_parallelism` workers.
//!
//! Every configuration must produce identical rule and group counts — the
//! binary asserts this, so a determinism regression fails the bench (and
//! CI's bench-smoke job) before anyone reads the numbers.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_compile_scaling
//! [--quick] [--json out.json]`

use sdx_bench::{fmt_duration, print_table, row, Workbench};
use sdx_core::compiler::Parallelism;
use sdx_core::vnh::VnhAllocator;
use sdx_telemetry::MetricsSnapshot;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Workload scale: 200 participants × 24k prefixes, policies over 6k
    // of them (comfortably past the ≥50-participant/≥5k-prefix floor; the
    // scan baseline's cost grows with participants × Loc-RIB size, which
    // is exactly the quadratic blowup the inverted index removes).
    // --quick (CI smoke) shrinks it.
    let (participants, prefixes, policy_prefixes, reps) = if quick {
        (30usize, 2_000usize, 800usize, 1usize)
    } else {
        (200, 24_000, 6_000, 3)
    };
    let configs: [(&str, Parallelism, bool); 5] = [
        ("serial/scan", Parallelism::Serial, false),
        ("serial/indexed", Parallelism::Serial, true),
        ("threads(2)/indexed", Parallelism::Threads(2), true),
        ("threads(4)/indexed", Parallelism::Threads(4), true),
        ("auto/indexed", Parallelism::Auto, true),
    ];

    let wb = Workbench::new(participants, prefixes, policy_prefixes, 42);
    let mut metrics = MetricsSnapshot::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut baseline_total = None;
    let mut baseline_counts = None;
    for &(name, parallelism, index_acceleration) in &configs {
        let mut compiler = wb.compiler();
        compiler.options.parallelism = parallelism;
        compiler.options.index_acceleration = index_acceleration;
        // Warm-up primes the policy memo (mirrors a long-lived
        // controller); each measured run then gets a *cold* route-server
        // clone so the indexed configs can't coast on a decision cache
        // warmed by a previous rep.
        let rs = wb.rs.clone();
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(&rs, &mut vnh).expect("warm-up");
        let mut best = None;
        for _ in 0..reps {
            let rs = wb.rs.clone();
            let mut vnh = VnhAllocator::default();
            let report = compiler.compile_all(&rs, &mut vnh).expect("compile");
            metrics.absorb(report.metrics_snapshot());
            let faster = best
                .as_ref()
                .is_none_or(|b: &sdx_core::CompileReport| report.stats.total < b.stats.total);
            if faster {
                best = Some(report);
            }
        }
        let report = best.expect("at least one rep");
        let counts = (report.stats.group_count, report.stats.rule_count);
        match baseline_counts {
            None => baseline_counts = Some(counts),
            Some(expected) => assert_eq!(
                counts, expected,
                "{name}: rule/group counts diverged from the serial/scan \
                 baseline — pipeline determinism is broken"
            ),
        }
        let total = report.stats.total;
        let speedup = match baseline_total {
            None => {
                baseline_total = Some(total);
                1.0
            }
            Some(base) => base.as_secs_f64() / total.as_secs_f64().max(1e-9),
        };
        rows.push(vec![
            name.to_string(),
            report.stats.group_count.to_string(),
            report.stats.rule_count.to_string(),
            fmt_duration(total),
            fmt_duration(report.stats.vnh_time),
            fmt_duration(report.stats.compose_time),
            format!("{speedup:.2}x"),
        ]);
        json.push(row([
            ("config", name.into()),
            ("participants", participants.into()),
            ("prefixes", prefixes.into()),
            ("policy_prefixes", policy_prefixes.into()),
            ("prefix_groups", report.stats.group_count.into()),
            ("rules", report.stats.rule_count.into()),
            ("compile_ms", (total.as_secs_f64() * 1e3).into()),
            ("fec_ms", (report.stats.vnh_time.as_secs_f64() * 1e3).into()),
            (
                "compose_ms",
                (report.stats.compose_time.as_secs_f64() * 1e3).into(),
            ),
            ("speedup_vs_baseline", speedup.into()),
        ]));
    }
    print_table(
        &format!(
            "Compile scaling: {participants} participants, {prefixes} prefixes, \
             {policy_prefixes} policy prefixes (best of {reps})"
        ),
        &[
            "config", "groups", "rules", "compile", "FEC+VNH", "compose", "speedup",
        ],
        &rows,
    );
    println!(
        "\n  determinism: every configuration produced identical rule and\n  \
         group counts (asserted). speedup is vs the serial/scan baseline;\n  \
         the indexed win is machine-independent, the threads(N) win needs\n  \
         ≥N cores."
    );
    sdx_bench::report("compile_scaling", &json, &metrics);
}
