//! Differential-oracle smoke sweep — the PR-4 correctness experiment.
//!
//! Generates random IXPs (participants, RIBs, export policies, DSL
//! policies) from consecutive deterministic seeds, compiles each through
//! the full pipeline, and runs every probe packet through both oracle
//! sides: the specification interpreter (policies ⋈ route server,
//! bypassing the compiler) and the compiled-fabric evaluator (rule
//! tables + VNH/VMAC tagging + ARP bindings). Any disagreement prints
//! the per-stage counterexample trace and exits non-zero.
//!
//! This is the bounded-time CI version of `cargo test -p sdx-oracle`:
//! `--quick` still sweeps ≥200 packet cases, always from the same seed,
//! so a red run is reproducible bit-for-bit.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_oracle_smoke
//! [--quick] [--seed N] [--json out.json]`

use sdx_bench::{print_table, row};
use sdx_oracle::diff::run_smoke;
use sdx_telemetry::{Event, Registry};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(42);
    // --quick (CI smoke) still clears the ≥200-case floor; the full sweep
    // is sized for an overnight soak, not a PR gate.
    let (exchanges, packets_per) = if quick { (40usize, 6usize) } else { (200, 25) };

    let t0 = std::time::Instant::now();
    let stats = match run_smoke(seed, exchanges, packets_per) {
        Ok(stats) => stats,
        Err(mismatch) => {
            // The whole point of the harness: a readable, per-stage,
            // side-by-side story of where spec and fabric diverged.
            eprintln!("{mismatch}");
            eprintln!("reproduce with: --seed {seed} (deterministic)");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();
    assert!(
        stats.packets >= 200,
        "smoke sweep must cover at least 200 cases, got {}",
        stats.packets
    );
    assert!(
        stats.delivers > 0 && stats.drops > 0,
        "a healthy sweep exercises both verdicts: {stats}"
    );

    let reg = Registry::new();
    reg.add("oracle.smoke.exchanges", stats.exchanges as u64);
    reg.add("oracle.smoke.packets", stats.packets as u64);
    reg.add("oracle.smoke.delivers", stats.delivers as u64);
    reg.add("oracle.smoke.drops", stats.drops as u64);
    reg.observe_duration("oracle.smoke.total", elapsed);
    reg.record_event(Event::Custom {
        name: "oracle_smoke_completed".to_string(),
        detail: format!("seed {seed}: {stats}"),
    });

    print_table(
        &format!("Differential oracle smoke (seed {seed})"),
        &[
            "exchanges",
            "packets",
            "delivered",
            "dropped",
            "mismatches",
            "elapsed",
        ],
        &[vec![
            stats.exchanges.to_string(),
            stats.packets.to_string(),
            stats.delivers.to_string(),
            stats.drops.to_string(),
            "0".to_string(),
            format!("{:.2}s", elapsed.as_secs_f64()),
        ]],
    );
    println!(
        "\n  every packet agreed: spec interpreter ≡ compiled fabric across\n  \
         {} random exchanges. mismatches print a per-stage trace and fail\n  \
         the run.",
        stats.exchanges
    );
    let json = vec![row([
        ("seed", seed.into()),
        ("exchanges", stats.exchanges.into()),
        ("packets", stats.packets.into()),
        ("delivered", stats.delivers.into()),
        ("dropped", stats.drops.into()),
        ("mismatches", 0usize.into()),
        ("elapsed_ms", (elapsed.as_secs_f64() * 1e3).into()),
    ])];
    sdx_bench::report("oracle_smoke", &json, &reg.snapshot());
}
