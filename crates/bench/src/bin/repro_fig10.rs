//! Reproduces **Figure 10** — CDF of the time to process one BGP update.
//!
//! Replays a §4.3.2-calibrated update trace through the controller's fast
//! path and measures the per-update processing time (route-server ingest +
//! fast recompilation of the affected slice). The paper's claim: the
//! tables are recomputed in **under 100 ms most of the time**, giving
//! sub-second convergence; the CDF shifts right with more participants.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig10`

use std::time::Instant;

use sdx_bench::{print_json, print_table, quantile, Workbench};
use sdx_core::vnh::VnhAllocator;
use sdx_ixp::updates::{generate, TraceParams};

fn main() {
    let participants = [100usize, 200, 300];
    let mut rows = Vec::new();
    let mut json = Vec::new();

    for &n in &participants {
        let wb = Workbench::new(n, 25_000, 12_800, 10 + n as u64);
        let mut compiler = wb.compiler();
        let mut vnh = VnhAllocator::default();
        compiler
            .compile_all(&wb.rs, &mut vnh)
            .expect("base compile");
        let mut rs = wb.rs.clone();

        // A few hours of trace gives a few thousand update events.
        let trace = generate(
            &wb.ixp,
            &TraceParams {
                duration_secs: 4 * 3600,
                session_resets: 0,
                ..Default::default()
            },
        );

        let mut times_ms: Vec<f64> = Vec::new();
        for burst in &trace.bursts {
            for (from, update) in &burst.updates {
                let t0 = Instant::now();
                let events = rs.process_update(*from, update);
                for ev in events {
                    if let sdx_bgp::route_server::RouteServerEvent::PrefixChanged(p) = ev {
                        let _ = compiler.fast_update(&rs, &mut vnh, p).expect("fast path");
                    }
                }
                times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
        times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let samples = times_ms.len();
        let row_q: Vec<f64> = [0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| quantile(&times_ms, q))
            .collect();
        rows.push(vec![
            n.to_string(),
            samples.to_string(),
            format!("{:.2}ms", row_q[0]),
            format!("{:.2}ms", row_q[1]),
            format!("{:.2}ms", row_q[2]),
            format!("{:.2}ms", row_q[3]),
            format!("{:.2}ms", row_q[4]),
            format!(
                "{:.1}%",
                100.0 * times_ms.iter().filter(|&&t| t < 100.0).count() as f64 / samples as f64
            ),
        ]);
        json.push(serde_json::json!({
            "participants": n,
            "samples": samples,
            "p50_ms": row_q[0],
            "p75_ms": row_q[1],
            "p90_ms": row_q[2],
            "p99_ms": row_q[3],
            "max_ms": row_q[4],
            "pct_under_100ms": 100.0 * times_ms.iter().filter(|&&t| t < 100.0).count() as f64 / samples as f64,
        }));
    }
    print_table(
        "Figure 10: time to process a single BGP update (CDF quantiles)",
        &[
            "participants",
            "updates",
            "p50",
            "p75",
            "p90",
            "p99",
            "max",
            "<100ms",
        ],
        &rows,
    );
    println!(
        "\n  expected shape (paper): sub-second always; under 100 ms most of\n  \
         the time; distribution shifts right as participants grow."
    );
    print_json("fig10", &json);
}
