//! Reproduces **Figure 10** — CDF of the time to process one BGP update.
//!
//! Replays a §4.3.2-calibrated update trace through the controller's fast
//! path and measures the per-update processing time (route-server ingest +
//! fast recompilation of the affected slice). The paper's claim: the
//! tables are recomputed in **under 100 ms most of the time**, giving
//! sub-second convergence; the CDF shifts right with more participants.
//!
//! Timing goes through the telemetry registry — one `fastpath.update.nN`
//! histogram per participant count — so the `--json` report carries the
//! same distribution the table summarizes.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig10 [--json out.json]`

use std::time::Duration;

use sdx_bench::{print_table, row, Workbench};
use sdx_core::vnh::VnhAllocator;
use sdx_ixp::updates::{generate, TraceParams};
use sdx_telemetry::Registry;

fn main() {
    let participants = [100usize, 200, 300];
    let reg = Registry::new();
    let mut rows = Vec::new();
    let mut json = Vec::new();

    for &n in &participants {
        let wb = Workbench::new(n, 25_000, 12_800, 10 + n as u64);
        let mut compiler = wb.compiler();
        let mut vnh = VnhAllocator::default();
        compiler
            .compile_all(&wb.rs, &mut vnh)
            .expect("base compile");
        let mut rs = wb.rs.clone();

        // A few hours of trace gives a few thousand update events.
        let trace = generate(
            &wb.ixp,
            &TraceParams {
                duration_secs: 4 * 3600,
                session_resets: 0,
                ..Default::default()
            },
        );

        let key = format!("fastpath.update.n{n}");
        let under = reg.counter(&format!("fastpath.update.n{n}.under_100ms.count"));
        for burst in &trace.bursts {
            for (from, update) in &burst.updates {
                let ((), took) = reg.timed(&key, || {
                    let events = rs.process_update(*from, update);
                    for ev in events {
                        if let sdx_bgp::route_server::RouteServerEvent::PrefixChanged(p) = ev {
                            let _ = compiler.fast_update(&rs, &mut vnh, p).expect("fast path");
                        }
                    }
                });
                if took < Duration::from_millis(100) {
                    under.inc();
                }
            }
        }

        let h = reg.histogram(&key).snapshot();
        let samples = h.count;
        let ms = |ns: u64| ns as f64 / 1e6;
        let pct_under = 100.0 * under.get() as f64 / samples.max(1) as f64;
        rows.push(vec![
            n.to_string(),
            samples.to_string(),
            format!("{:.2}ms", ms(h.p50)),
            format!("{:.2}ms", ms(h.p90)),
            format!("{:.2}ms", ms(h.p99)),
            format!("{:.2}ms", ms(h.max)),
            format!("{pct_under:.1}%"),
        ]);
        json.push(row([
            ("participants", n.into()),
            ("samples", samples.into()),
            ("p50_ms", ms(h.p50).into()),
            ("p90_ms", ms(h.p90).into()),
            ("p99_ms", ms(h.p99).into()),
            ("max_ms", ms(h.max).into()),
            ("pct_under_100ms", pct_under.into()),
        ]));
    }
    print_table(
        "Figure 10: time to process a single BGP update (CDF quantiles)",
        &[
            "participants",
            "updates",
            "p50",
            "p90",
            "p99",
            "max",
            "<100ms",
        ],
        &rows,
    );
    println!(
        "\n  expected shape (paper): sub-second always; under 100 ms most of\n  \
         the time; distribution shifts right as participants grow."
    );
    sdx_bench::report("fig10", &json, &reg.snapshot());
}
