//! Daemon load reproduction — `sdxd` under loopback BGP fire.
//!
//! The claim under test: the runtime's event loop sustains realistic
//! exchange-point churn *end to end over real sockets* — TCP BGP
//! sessions in, coalesced recompiles in the middle, flow-mod batches
//! streamed to a switch agent out — without falling behind. Two peer
//! threads (the B and C of the Figure 1 topology, policies intact so
//! every announcement is policy-affected and lands delta rules) blast
//! distinct-prefix announcements over their sessions as fast as TCP
//! will carry them; the daemon coalesces the backlog into burst
//! compiles and holds the agent at the ack barrier for each batch.
//!
//! Reported per run:
//!
//! * `updates_per_sec` — wire-to-compiled throughput (target ≥ 1000);
//! * `coalescing_ratio` — updates absorbed per compile (> 1 means the
//!   burst machinery is actually earning its keep);
//! * `queue_depth_max` / `p99` — switch-channel send-queue occupancy;
//! * `latency_us_*` — update→flow-mod latency percentiles, BGP message
//!   arrival to delta batch applied.
//!
//! The run ends with a scheduled re-optimization folding every delta
//! into the base table, and asserts the agent's table is equal to the
//! daemon's — the load test doubles as an end-to-end consistency check.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_daemon_load
//! [--quick] [--json out.json]`

use std::time::Instant;

use sdx_bench::{print_table, report, row};
use sdx_bgp::{BgpMessage, ExportPolicy};
use sdx_core::{ParticipantConfig, SdxController};
use sdx_ixp::testkit::{figure1_inbound_b, figure1_outbound_a};
use sdx_net::{prefix, ParticipantId, Prefix};
use sdx_runtime::{daemon, spawn_agent, DaemonConfig, TestPeer};
use sdx_telemetry::Json;

/// The Figure 1 exchange, empty-RIB: routes arrive over the wire.
fn exchange() -> SdxController {
    let mut ctl = SdxController::new();
    ctl.add_participant(
        ParticipantConfig::new(1, 65001, 1).with_outbound(figure1_outbound_a()),
        ExportPolicy::allow_all(),
    );
    let mut b_export = ExportPolicy::allow_all();
    b_export.deny(ParticipantId(1), prefix("40.0.0.0/8"));
    ctl.add_participant(
        ParticipantConfig::new(2, 65002, 2).with_inbound(figure1_inbound_b()),
        b_export,
    );
    ctl.add_participant(
        ParticipantConfig::new(3, 65003, 1),
        ExportPolicy::allow_all(),
    );
    ctl.add_participant(
        ParticipantConfig::new(4, 65004, 1),
        ExportPolicy::allow_all(),
    );
    ctl
}

/// Distinct /16 for (peer p, update i): first octet partitions peers,
/// second walks the update index. Disjoint from every Figure 1 prefix.
fn load_prefix(p: usize, i: usize) -> Prefix {
    prefix(&format!("{}.{}.0.0/16", 64 + p * 32 + i / 256, i % 256))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_peer = if quick { 600 } else { 2000 };
    let peers: &[(usize, u32)] = &[(0, 65002), (1, 65003)];
    let total_updates = per_peer * peers.len();

    let handle = daemon::start(exchange(), DaemonConfig::default()).expect("daemon start");
    let reg = handle.telemetry().clone();
    let agent = spawn_agent(handle.openflow_addr).expect("agent");
    let t0 = Instant::now();

    let senders: Vec<_> = peers
        .iter()
        .map(|&(p, asn)| {
            let addr = handle.bgp_addr;
            std::thread::spawn(move || {
                let cfg = ParticipantConfig::new(p as u32 + 2, asn, if p == 0 { 2 } else { 1 });
                let mut peer = TestPeer::establish(addr, asn, 90).expect("establish");
                for i in 0..per_peer {
                    let update = cfg.announce([load_prefix(p, i)], &[asn, 300]);
                    peer.send(&BgpMessage::Update(update)).expect("send");
                }
                peer
            })
        })
        .collect();
    // Keep the sessions open until the backlog is fully absorbed.
    let peers_alive: Vec<TestPeer> = senders
        .into_iter()
        .map(|h| h.join().expect("sender"))
        .collect();
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let done = reg
            .snapshot()
            .counters
            .get("daemon.updates.count")
            .copied()
            .unwrap_or(0);
        if done >= total_updates as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon fell behind: {done}/{total_updates}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let elapsed = t0.elapsed();

    // Fold every fast-path delta into the base table over the same
    // channel, then stop and compare tables.
    handle.reoptimize();
    let daemon_report = handle.stop();
    drop(peers_alive);
    let agent_fabric = agent.join();

    let snap = reg.snapshot();
    let updates_per_sec = total_updates as f64 / elapsed.as_secs_f64();
    let coalescing_ratio = daemon_report.updates as f64 / daemon_report.compiles.max(1) as f64;
    let depth = snap
        .histograms
        .get("daemon.channel.depth_samples")
        .copied()
        .unwrap_or_default();
    let latency = snap
        .histograms
        .get("daemon.update_to_flowmod_us")
        .copied()
        .unwrap_or_default();

    let rows = vec![row([
        ("peers", Json::from(peers.len() as u64)),
        ("updates", Json::from(total_updates as u64)),
        ("elapsed_ms", Json::from(elapsed.as_millis() as u64)),
        ("updates_per_sec", Json::from(updates_per_sec)),
        ("compiles", Json::from(daemon_report.compiles)),
        ("coalescing_ratio", Json::from(coalescing_ratio)),
        (
            "coalesced_bursts",
            Json::from(daemon_report.coalesced_bursts),
        ),
        (
            "batches_streamed",
            Json::from(daemon_report.batches_streamed),
        ),
        ("queue_depth_max", Json::from(depth.max)),
        ("queue_depth_p99", Json::from(depth.p99)),
        ("latency_us_p50", Json::from(latency.p50)),
        ("latency_us_p90", Json::from(latency.p90)),
        ("latency_us_p99", Json::from(latency.p99)),
    ])];

    print_table(
        "Daemon load (loopback BGP -> coalesced compiles -> switch agent)",
        &[
            "updates",
            "upd/s",
            "compiles",
            "coalesce",
            "q-depth max",
            "lat p50 us",
            "lat p99 us",
        ],
        &[vec![
            total_updates.to_string(),
            format!("{updates_per_sec:.0}"),
            daemon_report.compiles.to_string(),
            format!("{coalescing_ratio:.1}x"),
            depth.max.to_string(),
            latency.p50.to_string(),
            latency.p99.to_string(),
        ]],
    );
    report("daemon_load", &rows, &snap);

    assert_eq!(
        snap.counters
            .get("daemon.channel_lost.count")
            .copied()
            .unwrap_or(0),
        0,
        "a switch channel was dropped mid-run"
    );
    assert!(
        agent_fabric.switch.table() == daemon_report.fabric.switch.table(),
        "agent table diverged from the daemon's after {total_updates} updates"
    );
    // Quick mode runs on shared CI hardware; the full run owns the box.
    let floor = if quick { 500.0 } else { 1000.0 };
    assert!(
        updates_per_sec >= floor,
        "throughput floor: {updates_per_sec:.0} upd/s < {floor}"
    );
    assert!(
        coalescing_ratio >= 1.0,
        "coalescing ratio degenerate: {coalescing_ratio}"
    );
}
