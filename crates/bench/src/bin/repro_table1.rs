//! Reproduces **Table 1** — the IXP dataset characterization.
//!
//! For each of AMS-IX / DE-CIX / LINX, generates a six-day synthetic BGP
//! update trace against a population with the published peer and prefix
//! counts, calibrated in two steps: the burst-rate multiplier is set from
//! the published update volumes, and the path-exploration factor maps
//! routing *events* (what our generator produces) to collector-observed
//! *messages* (what RIS counts — every event is heard once per collector
//! peer, times BGP path exploration). Session-reset churn is injected and
//! discarded exactly as the paper's methodology (Zhang et al.) does.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_table1 [--json out.json]`

use sdx_bench::{print_table, row};
use sdx_ixp::dataset::{IxpDataset, ALL, MEASUREMENT_WINDOW_SECS};
use sdx_ixp::topology::{build, TopologyParams};
use sdx_ixp::updates::{generate, TraceParams};
use sdx_telemetry::Registry;

/// Calibration pass: expected distinct touched prefixes given `events`
/// samples (with replacement) from a pool of size `pool`.
fn expected_distinct(events: f64, pool: f64) -> f64 {
    pool * (1.0 - (-events / pool).exp())
}

fn reproduce(dataset: &IxpDataset, scale: usize) -> (u64, f64, usize) {
    // Scale the prefix table down (default 1:4) to keep the run fast; all
    // reported fractions are scale-free and the updates column is
    // calibrated against the scaled event count.
    let prefixes = dataset.prefixes / scale;
    let ixp = build(&TopologyParams {
        participants: dataset.collector_peers,
        prefixes,
        seed: 0xDA7A + dataset.collector_peers as u64,
        ..Default::default()
    });

    // Pass 1: baseline event count at rate 1.
    let base = generate(
        &ixp,
        &TraceParams {
            duration_secs: MEASUREMENT_WINDOW_SECS,
            churny_fraction: 0.2, // placeholder; only events matter here
            session_resets: 0,
            ..Default::default()
        },
    );
    let base_events = base.stats.updates as f64;

    // Choose the burst-rate multiplier so the expected distinct touched
    // prefixes hit the published percentage, then the exploration factor
    // so observed messages hit the published volume.
    let target_touched = dataset.pct_prefixes_with_updates / 100.0 * prefixes as f64;
    // Solve pool & rate: fix pool = 1.35 × target (some churny prefixes
    // stay quiet), then pick the rate multiplier m so that
    // expected_distinct(base_events × m, pool) = target.
    let pool = (target_touched * 1.35).min(prefixes as f64 * 0.9);
    let mut m = 1.0f64;
    for _ in 0..60 {
        let d = expected_distinct(base_events * m, pool);
        m *= (target_touched / d).clamp(0.5, 2.0);
    }
    let churny_fraction = pool / prefixes as f64;

    let events_est = base_events * m;
    let exploration = dataset.updates as f64 / events_est / scale as f64;

    let trace = generate(
        &ixp,
        &TraceParams {
            duration_secs: MEASUREMENT_WINDOW_SECS,
            churny_fraction,
            session_resets: 2,
            burst_rate_multiplier: m,
            exploration_mean: exploration.max(1.0) * scale as f64,
            ..Default::default()
        },
    );
    (
        trace.stats.observed_updates,
        trace.stats.pct_prefixes_with_updates,
        trace.stats.bursts,
    )
}

fn main() {
    let scale = 4usize;
    let reg = Registry::new();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for d in &ALL {
        let (updates, pct, bursts) = reg.time("trace.generate", || reproduce(d, scale));
        reg.add("trace.updates.count", updates);
        rows.push(vec![
            d.name.to_string(),
            format!("{}/{}", d.collector_peers, d.total_peers),
            format!("{}", d.prefixes),
            format!("{}", d.updates),
            format!("{updates}"),
            format!("{:.2}%", d.pct_prefixes_with_updates),
            format!("{pct:.2}%"),
            format!("{bursts}"),
        ]);
        json.push(row([
            ("ixp", d.name.into()),
            ("collector_peers", d.collector_peers.into()),
            ("total_peers", d.total_peers.into()),
            ("prefixes", d.prefixes.into()),
            ("updates_paper", d.updates.into()),
            ("updates_measured", updates.into()),
            ("pct_updated_paper", d.pct_prefixes_with_updates.into()),
            ("pct_updated_measured", pct.into()),
            ("bursts", bursts.into()),
            ("prefix_scale", scale.into()),
        ]));
    }
    print_table(
        "Table 1: IXP datasets (paper vs. regenerated synthetic trace)",
        &[
            "IXP",
            "peers",
            "prefixes",
            "updates(paper)",
            "updates(ours)",
            "%upd(paper)",
            "%upd(ours)",
            "bursts",
        ],
        &rows,
    );
    println!(
        "\n  note: traces regenerated at 1:{scale} prefix scale; update volumes\n  \
         calibrated via burst rate + path-exploration factor; session-reset\n  \
         churn injected and discarded per the paper's methodology."
    );
    sdx_bench::report("table1", &json, &reg.snapshot());
}
