//! Reproduces **Figure 5a** — the application-specific peering deployment.
//!
//! The paper's live experiment (Figure 4a): an ISP (AS C) hosts a client
//! sending UDP flows toward an AWS prefix reachable via two upstreams,
//! AS A and AS B. At **t = 565 s** AS C installs an application-specific
//! peering policy (port-80 traffic via AS B); at **t = 1253 s** AS B
//! withdraws its route, and the SDX must shift all traffic back to AS A —
//! keeping the data plane consistent with BGP.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig5a [--json out.json]`

use sdx_bench::print_table;
use sdx_bgp::msg::UpdateMessage;
use sdx_bgp::route_server::ExportPolicy;
use sdx_core::controller::SdxController;
use sdx_core::participant::ParticipantConfig;
use sdx_ixp::traffic::{udp_flow, Event, SeriesKey, TrafficSim};
use sdx_net::{ip, prefix, FieldMatch, ParticipantId, PortId};
use sdx_policy::Policy as P;
use sdx_telemetry::Json;

fn main() {
    let pid = ParticipantId;
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1); // upstream A (Wisconsin TP)
    let b = ParticipantConfig::new(2, 65002, 1); // upstream B (Clemson TP)
    let c = ParticipantConfig::new(3, 65003, 1); // client ISP
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c, ExportPolicy::allow_all());
    // Both upstreams announce the Amazon /16; A's path is shorter, so
    // default traffic goes via A.
    ctl.rs.process_update(
        pid(1),
        &a.announce([prefix("54.198.0.0/16")], &[65001, 14618]),
    );
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("54.198.0.0/16")], &[65002, 7018, 14618]),
    );
    let fabric = ctl.deploy().expect("deploy");

    // Three 1 Mbps UDP flows, varying destination port (the paper varies
    // source/destination addressing and ports).
    let client = PortId::Phys(pid(3), 1);
    let flows = vec![
        udp_flow(
            "web",
            client,
            ip("99.0.0.10"),
            ip("54.198.0.50"),
            80,
            1.0,
            (0.0, 1800.0),
        ),
        udp_flow(
            "https",
            client,
            ip("99.0.0.11"),
            ip("54.198.0.50"),
            443,
            1.0,
            (0.0, 1800.0),
        ),
        udp_flow(
            "dns",
            client,
            ip("99.0.0.12"),
            ip("54.198.0.50"),
            53,
            1.0,
            (0.0, 1800.0),
        ),
    ];
    let events = vec![
        Event::SetOutbound {
            at: 565.0,
            participant: pid(3),
            policy: Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
        },
        Event::Bgp {
            at: 1253.0,
            from: pid(2),
            update: UpdateMessage::withdraw([prefix("54.198.0.0/16")]),
        },
    ];

    // Keep a handle on the controller's registry: the sim consumes the
    // controller, but the shared sink keeps collecting.
    let telemetry = ctl.telemetry.clone();
    let sim = TrafficSim {
        controller: ctl,
        fabric,
        flows,
        events,
        series_key: SeriesKey::EgressParticipant,
    };
    let series = sim.run(1800.0);

    // Report the rate per upstream in each phase (plus the raw series as
    // JSON for plotting).
    let phase = |t: f64| {
        (
            series.rate_at("via-P1", t).unwrap_or(0.0),
            series.rate_at("via-P2", t).unwrap_or(0.0),
        )
    };
    let phases = [
        ("0–565s (default routing)", 300.0),
        ("565–1253s (policy active)", 900.0),
        ("1253–1800s (after withdrawal)", 1500.0),
    ];
    let mut rows = Vec::new();
    for (label, t) in phases {
        let (via_a, via_b) = phase(t);
        rows.push(vec![
            label.to_string(),
            format!("{via_a:.1} Mbps"),
            format!("{via_b:.1} Mbps"),
        ]);
    }
    print_table(
        "Figure 5a: application-specific peering (traffic per upstream)",
        &["phase", "via AS A", "via AS B"],
        &rows,
    );
    println!(
        "\n  expected shape (paper): all 3 Mbps via A until the policy at\n  \
         t=565 s moves the 1 Mbps port-80 flow to B; B's withdrawal at\n  \
         t=1253 s returns all traffic to A (forwarding consistent with BGP)."
    );

    let json: Vec<Json> = series
        .points
        .iter()
        .filter(|(t, _)| (*t as u64).is_multiple_of(30))
        .map(|(t, rates)| {
            let mut pairs = vec![("t".to_string(), Json::from(*t))];
            for (k, r) in series.keys.iter().zip(rates) {
                pairs.push((k.clone(), Json::from(*r)));
            }
            Json::Obj(pairs)
        })
        .collect();
    sdx_bench::report("fig5a", &json, &telemetry.snapshot());
}
