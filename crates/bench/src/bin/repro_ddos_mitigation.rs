//! DDoS time-to-mitigation — the policy-lifecycle experiment (ROADMAP
//! item 5, the paper's §2 "remote drop / upstream blocking" application).
//!
//! Scenario: an ixp50-scale exchange is mid-churn (a `sdx_ixp::updates`
//! trace replaying through the incremental sharded compiler) when one
//! participant — the victim — comes under attack and pushes its
//! mitigation as a [`PolicyDelta`]: an inbound clause steering the
//! attack's source half into its scrubbing port, plus an export-policy
//! deny that upstream-blocks the worst attacker peers at the BGP level
//! (no exported route ⇒ the attackers' traffic toward the victim is
//! dropped at the fabric edge, before it ever crosses the exchange).
//!
//! Both mutations flow through the *same* incremental machinery as route
//! churn: per-(participant, shard) invalidation keeps every other
//! viewer's units cache-served, keyed VNH identity keeps untouched FECs
//! on their labels, and the reconcile diff rides dependency-ordered
//! waves. The numbers reported:
//!
//! * **time-to-mitigation** — wall clock from the victim's decision to
//!   the last wave barrier of the committed update;
//! * **flow-mods vs naive full swap** — mods the waves carried vs the
//!   delete-all + install-all a non-incremental controller would push;
//! * **units recompiled** — `policy.dirty_units` / shard recompile and
//!   cache-serve counters around the push.
//!
//! Verification gates (all asserted before any number is printed): the
//! attack probe delivers before and drops after, scrubbed traffic exits
//! the scrub port, the patched table is differentially checked against
//! the spec interpreter over the versioned policy store (zero
//! mismatches), and a from-scratch controller with the same final state
//! forwards sampled probes identically.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_ddos_mitigation
//! [--quick] [--json out.json]`

use std::time::{Duration, Instant};

use sdx_bench::{fmt_duration, print_table, row, Workbench};
use sdx_bgp::route_server::ExportPolicy;
use sdx_core::controller::SdxController;
use sdx_core::schedule::ScheduleOpts;
use sdx_core::shard::Sharding;
use sdx_ixp::updates::{self, TraceParams};
use sdx_net::{FieldMatch, Ipv4Addr, Packet, ParticipantId, PortId, Prefix};
use sdx_oracle::{synth, Differential, Outcome};
use sdx_policy::{Policy as P, PolicyDelta};
use sdx_telemetry::SharedRegistry;

/// Picks the victim: the *smallest* announcer with a second (scrub)
/// port — small so the narrow-invalidation claim is visible (its export
/// deny should touch only a handful of shards), multi-port so the scrub
/// appliance has somewhere to live.
fn pick_victim(ixp: &sdx_ixp::topology::SyntheticIxp) -> (ParticipantId, u8) {
    ixp.participants
        .iter()
        .zip(&ixp.announcements)
        .filter(|(cfg, _)| cfg.ports.len() >= 2)
        .min_by_key(|(_, ann)| ann.len())
        .map(|(cfg, _)| (cfg.id, cfg.ports[1].index))
        .expect("workload has no multi-port participant to host a scrub port")
}

/// The first physical port of a participant.
fn entry_port(ctl: &SdxController, id: ParticipantId) -> PortId {
    let cfg = ctl.compiler.participant(id).expect("registered");
    PortId::Phys(id, cfg.ports[0].index)
}

/// Agreed (spec == fabric-model) verdict for one probe against the
/// deployed table — any disagreement is a hard failure.
fn verdict(
    ctl: &SdxController,
    table: &sdx_openflow::table::FlowTable,
    from: PortId,
    pkt: &Packet,
) -> Outcome {
    let report = ctl.report.as_ref().expect("compiled");
    Differential::over_table(&ctl.compiler, &ctl.rs, report, table)
        .check(from, pkt)
        .unwrap_or_else(|m| panic!("oracle mismatch on targeted probe: {m}"))
}

fn counter(reg: &SharedRegistry, key: &str) -> u64 {
    reg.snapshot().counters.get(key).copied().unwrap_or(0)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // ixp50: the acceptance-scale exchange. Quick keeps the same 50
    // participants (victim/attacker structure must survive) but shrinks
    // the table and the trace so CI smoke finishes in seconds.
    let (prefixes, policy_prefixes, duration_secs, probe_n) = if quick {
        (800usize, 200usize, 60u64, 300usize)
    } else {
        (3000, 800, 300, 800)
    };
    let participants = 50usize;
    let seed = 17u64;

    let wb = Workbench::new(participants, prefixes, policy_prefixes, seed);
    let trace = updates::generate(
        &wb.ixp,
        &TraceParams {
            duration_secs,
            seed: seed.wrapping_add(1),
            ..Default::default()
        },
    );

    let reg = SharedRegistry::new();
    let mut ctl = SdxController::new();
    ctl.compiler = wb.compiler();
    ctl.rs = wb.rs.clone();
    ctl.telemetry = reg.clone();
    ctl.set_sharding(Sharding::Shards(8));

    // The victim and its attacked service block. The synthetic universe
    // is deliberately multi-homed (every 100.x prefix picks up transit
    // re-announcers), so the victim announces the attacked /16 itself,
    // outside the universe: sole announcer by construction, which is
    // what makes the export deny a true upstream *block* — no alternate
    // route, so the attackers' traffic drops at the fabric edge.
    let (victim, scrub_port) = pick_victim(&wb.ixp);
    let victim_prefix = Prefix::new(Ipv4Addr::new(66, 66, 0, 0), 16);
    let vcfg = ctl
        .compiler
        .participant(victim)
        .expect("victim registered")
        .clone();
    ctl.rs.process_update(
        victim,
        &vcfg.announce([victim_prefix], &[65_000 + victim.0, 777]),
    );

    let t = Instant::now();
    let mut fabric = ctl.deploy().expect("ixp50 deploys");
    let deploy_ms = t.elapsed();

    let attackers: Vec<ParticipantId> = ctl
        .compiler
        .participants()
        .keys()
        .copied()
        .filter(|&p| p != victim)
        .take(3)
        .collect();
    let bystander = ctl
        .compiler
        .participants()
        .keys()
        .copied()
        .find(|p| *p != victim && !attackers.contains(p))
        .expect("a peer that is neither victim nor attacker");

    // The attack flow: high-source-half traffic from an attacker port
    // toward the victim's solo prefix. dport 9999 keeps the probe clear
    // of the workload's port-keyed outbound policies, so the pre-attack
    // path is the plain BGP best route — straight to the victim.
    let attack_dst = Ipv4Addr(victim_prefix.addr().0 + 9);
    let attack_pkt = Packet::tcp(Ipv4Addr::new(200, 66, 6, 6), attack_dst, 4321, 9999);
    let attack_from = entry_port(&ctl, attackers[0]);
    let bystander_from = entry_port(&ctl, bystander);

    // ---- Churn, act one: the exchange is busy when the attack starts.
    let split = trace.bursts.len() / 2;
    let mut churn_before = Duration::ZERO;
    for burst in &trace.bursts[..split] {
        for (from, msg) in &burst.updates {
            ctl.rs.process_update(*from, msg);
        }
        let t = Instant::now();
        ctl.reoptimize(&mut fabric).expect("burst reoptimize");
        churn_before += t.elapsed();
    }
    let _ = fabric.drain_batches();

    // Baseline gate: before mitigation the attack traffic *delivers* at
    // the victim (that is what makes it an attack).
    let pre = verdict(&ctl, fabric.switch.table(), attack_from, &attack_pkt);
    let attack_delivered_before = match pre {
        Outcome::Deliver { port, .. } => {
            assert_eq!(
                port.participant(),
                victim,
                "attack flow should reach the victim"
            );
            true
        }
        other => panic!("pre-attack probe must deliver at the victim, got {other:?}"),
    };

    // ---- The mitigation push: one PolicyDelta + one export deny,
    // staged together, compiled once, committed through scheduled waves.
    let table_before = fabric.switch.table().len();
    let dirty0 = counter(&reg, "policy.dirty_units.count");
    let recompiled0 = counter(&reg, "compile.shard.recompiled.count");
    let skipped0 = counter(&reg, "compile.shard.skipped.count");
    let pruned0 = counter(&reg, "compile.shard.unit_pruned.count");

    let scrub = P::match_(FieldMatch::NwSrc(Prefix::new(
        Ipv4Addr::new(128, 0, 0, 0),
        1,
    ))) >> P::fwd(PortId::Phys(victim, scrub_port));
    let delta = PolicyDelta::new().replace_inbound(victim, scrub);
    let mut export = ExportPolicy::allow_all();
    for &a in &attackers {
        for p in ctl.rs.loc_rib().announced_by(victim).collect::<Vec<_>>() {
            export.deny(a, p);
        }
    }

    let t0 = Instant::now();
    ctl.rs.set_export_policy(victim, export);
    let prepared = ctl
        .apply_policy_delta_scheduled(&delta, &mut fabric)
        .expect("mitigation stages and compiles");
    let waves = prepared.plan.wave_count();
    let sched = ctl
        .commit_scheduled(&mut fabric, prepared, &ScheduleOpts::default(), None)
        .expect("mitigation waves commit");
    let time_to_mitigation = t0.elapsed();
    let _ = fabric.drain_batches();

    let flow_mods: usize = sched.applied.iter().map(|w| w.mods).sum();
    let table_after = fabric.switch.table().len();
    // A naive controller swaps the whole table: delete every old rule,
    // install every new one.
    let naive_swap_mods = table_before + table_after;
    let flow_mod_fraction = flow_mods as f64 / naive_swap_mods as f64;
    let units_dirtied = counter(&reg, "policy.dirty_units.count") - dirty0;
    let shards_recompiled = counter(&reg, "compile.shard.recompiled.count") - recompiled0;
    let shards_skipped = counter(&reg, "compile.shard.skipped.count") - skipped0;
    let units_pruned = counter(&reg, "compile.shard.unit_pruned.count") - pruned0;

    // Narrowness gate: the push dirties only the victim's units — the
    // inbound clause compiles in stage 2 (no phase-A units at all), and
    // the export deny reaches just the shards holding the victim's own
    // announcements, with unit pruning serving every other viewer's
    // units from cache inside those shards.
    let total_units = participants as u64 * 8;
    assert!(
        units_dirtied <= 8,
        "a one-participant delta dirtied {units_dirtied} units (> one viewer's worth)"
    );
    assert!(
        units_dirtied + units_pruned < total_units,
        "the push recompiled the world: {units_dirtied} dirty + {units_pruned} pruned"
    );
    assert!(
        flow_mod_fraction < 0.25,
        "mitigation flow-mods not a small fraction of a full swap: \
         {flow_mods}/{naive_swap_mods} = {flow_mod_fraction:.3}"
    );

    // Effect gates: attacker traffic now drops at the edge (upstream
    // blocking), scrubbed traffic exits the victim's scrub port, and a
    // clean bystander flow still delivers.
    let post = verdict(&ctl, fabric.switch.table(), attack_from, &attack_pkt);
    assert_eq!(
        post,
        Outcome::Drop,
        "attack flow must be dropped after the deny"
    );
    let scrubbed = verdict(&ctl, fabric.switch.table(), bystander_from, &attack_pkt);
    match scrubbed {
        Outcome::Deliver { port, .. } => assert_eq!(
            port,
            PortId::Phys(victim, scrub_port),
            "high-source-half traffic should exit the scrub port"
        ),
        other => panic!("scrub probe should deliver, got {other:?}"),
    }
    let clean_pkt = Packet::tcp(Ipv4Addr::new(9, 0, 0, 1), attack_dst, 4321, 9999);
    let clean = verdict(&ctl, fabric.switch.table(), bystander_from, &clean_pkt);
    assert!(
        matches!(clean, Outcome::Deliver { .. }),
        "low-half bystander traffic must keep flowing, got {clean:?}"
    );

    // Oracle gate: the patched table, differentially checked against the
    // spec interpreter over the versioned policy store.
    let probes = synth::sample_probes(&ctl.compiler, &ctl.rs, seed, probe_n);
    let report = ctl.report.as_ref().expect("compiled");
    let delivered = Differential::over_table(&ctl.compiler, &ctl.rs, report, fabric.switch.table())
        .check_all(&probes)
        .unwrap_or_else(|m| panic!("post-mitigation oracle mismatch: {m}"));
    assert!(delivered > 0, "probe sample vacuous");

    // From-scratch gate: a cold controller handed the same final state
    // (participants with the staged policies, the same RIB and export
    // table) must forward every sampled probe identically — and its
    // full compile is the cost the incremental path avoided.
    let mut cold = SdxController::new();
    for cfg in ctl.compiler.participants().values() {
        cold.compiler.upsert_participant(cfg.clone());
    }
    cold.rs = ctl.rs.clone();
    let t = Instant::now();
    let mut cold_fabric = cold.deploy().expect("cold deploy");
    let cold_compile_ms = t.elapsed();
    for (from, pkt) in &probes {
        let warm: Vec<_> = fabric.send(*from, *pkt);
        let scratch: Vec<_> = cold_fabric.send(*from, *pkt);
        assert_eq!(
            warm.iter().map(|d| (d.loc, d.pkt)).collect::<Vec<_>>(),
            scratch.iter().map(|d| (d.loc, d.pkt)).collect::<Vec<_>>(),
            "patched table diverged from scratch for {pkt:?} in at {from}"
        );
    }

    // ---- Churn, act two: the mitigation must survive continued churn.
    let mut churn_after = Duration::ZERO;
    for burst in &trace.bursts[split..] {
        for (from, msg) in &burst.updates {
            ctl.rs.process_update(*from, msg);
        }
        let t = Instant::now();
        ctl.reoptimize(&mut fabric).expect("post-mitigation burst");
        churn_after += t.elapsed();
    }
    let _ = fabric.drain_batches();
    let still = verdict(&ctl, fabric.switch.table(), attack_from, &attack_pkt);
    assert_eq!(
        still,
        Outcome::Drop,
        "mitigation must survive continued churn"
    );

    let rows = vec![vec![
        victim.0.to_string(),
        attackers.len().to_string(),
        fmt_duration(time_to_mitigation),
        waves.to_string(),
        format!("{flow_mods}/{naive_swap_mods}"),
        format!("{:.1}%", flow_mod_fraction * 100.0),
        units_dirtied.to_string(),
        format!("{shards_recompiled}/{}", shards_recompiled + shards_skipped),
        fmt_duration(cold_compile_ms),
    ]];
    print_table(
        &format!(
            "DDoS time-to-mitigation: {participants} participants, {prefixes} prefixes, \
             {policy_prefixes} policy prefixes, attack at burst {split}/{}",
            trace.bursts.len()
        ),
        &[
            "victim",
            "attackers",
            "mitigation",
            "waves",
            "mods/naive",
            "fraction",
            "units",
            "shards",
            "cold swap",
        ],
        &rows,
    );
    println!(
        "\n  the victim's push (inbound scrub steer + upstream-block export deny)\n  \
         compiled incrementally mid-churn and committed through {waves} dependency\n  \
         wave(s) in {} — vs {} for the full-swap recompile a non-incremental\n  \
         controller would pay. attack traffic verified dropped at the fabric edge,\n  \
         scrubbed traffic verified onto port {scrub_port}, {delivered} sampled deliveries\n  \
         differentially matched, and the patched table equals a from-scratch deploy.",
        fmt_duration(time_to_mitigation),
        fmt_duration(cold_compile_ms),
    );

    let json = vec![row([
        ("quick", quick.into()),
        ("participants", participants.into()),
        ("prefixes", prefixes.into()),
        ("policy_prefixes", policy_prefixes.into()),
        ("shards", 8usize.into()),
        ("bursts_before", split.into()),
        ("bursts_after", (trace.bursts.len() - split).into()),
        ("deploy_ms", (deploy_ms.as_secs_f64() * 1e3).into()),
        ("churn_before_ms", (churn_before.as_secs_f64() * 1e3).into()),
        ("churn_after_ms", (churn_after.as_secs_f64() * 1e3).into()),
        ("victim", (victim.0 as usize).into()),
        ("attackers", attackers.len().into()),
        (
            "time_to_mitigation_ms",
            (time_to_mitigation.as_secs_f64() * 1e3).into(),
        ),
        ("waves", waves.into()),
        ("flow_mods", flow_mods.into()),
        ("naive_swap_mods", naive_swap_mods.into()),
        ("flow_mod_fraction", flow_mod_fraction.into()),
        ("units_dirtied", (units_dirtied as usize).into()),
        ("units_pruned", (units_pruned as usize).into()),
        ("shards_recompiled", (shards_recompiled as usize).into()),
        ("shards_skipped", (shards_skipped as usize).into()),
        (
            "cold_compile_ms",
            (cold_compile_ms.as_secs_f64() * 1e3).into(),
        ),
        ("oracle_probes", probes.len().into()),
        ("oracle_delivered", delivered.into()),
        ("oracle_mismatches", 0usize.into()),
        ("mitigation_applied", true.into()),
        ("attack_delivered_before", attack_delivered_before.into()),
        ("attack_dropped_after", true.into()),
        ("scrub_steered", true.into()),
        ("survives_churn", true.into()),
        ("equivalent_to_scratch", true.into()),
    ])];
    sdx_bench::report("ddos_mitigation", &json, &reg.snapshot());
}
