//! Reproduces **Figure 6** — prefix groups vs. prefixes with SDX policies.
//!
//! The paper's experiment (§6.2): take the top `N ∈ {100, 200, 300}` ASes
//! by announced-prefix count; select `x` prefixes at random from the
//! routing table as the set with SDX policies (`p_x`); intersect each AS's
//! announcement set with `p_x`; run the Minimum Disjoint Subset algorithm
//! over the collection. The paper finds the group count **sub-linear** in
//! the prefix count and far below it.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig6 [--json out.json]`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdx_bench::{print_table, row};
use sdx_core::fec::minimum_disjoint_subsets;
use sdx_ixp::topology::{build, TopologyParams};
use sdx_net::Prefix;
use sdx_telemetry::Registry;

fn main() {
    let sweep: Vec<usize> = vec![1000, 2500, 5000, 7500, 10_000, 15_000, 20_000, 25_000];
    let participants = [100usize, 200, 300];

    let reg = Registry::new();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &n in &participants {
        // One AMS-IX-like population per N; the same table is reused
        // across the x sweep, as in the paper.
        let ixp = build(&TopologyParams {
            participants: n,
            prefixes: 25_000,
            seed: 6 + n as u64,
            ..Default::default()
        });
        let sets = ixp.announcement_sets();
        let mut all_prefixes: Vec<Prefix> =
            sets.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
        all_prefixes.sort();
        all_prefixes.dedup();
        let mut rng = StdRng::seed_from_u64(66 + n as u64);
        all_prefixes.shuffle(&mut rng);

        for &x in &sweep {
            let px: std::collections::BTreeSet<Prefix> =
                all_prefixes.iter().copied().take(x).collect();
            // p'_i = p_i ∩ p_x
            let restricted: Vec<Vec<Prefix>> = sets
                .iter()
                .map(|(_, ps)| ps.iter().copied().filter(|p| px.contains(p)).collect())
                .collect();
            let groups = reg
                .time("compile.mds", || minimum_disjoint_subsets(&restricted))
                .len();
            rows.push(vec![
                n.to_string(),
                x.to_string(),
                groups.to_string(),
                format!("{:.1}x", x as f64 / groups.max(1) as f64),
            ]);
            json.push(row([
                ("participants", n.into()),
                ("prefixes", x.into()),
                ("prefix_groups", groups.into()),
            ]));
        }
    }
    print_table(
        "Figure 6: prefix groups vs prefixes with SDX policies",
        &["participants", "prefixes", "prefix groups", "compression"],
        &rows,
    );
    println!(
        "\n  expected shape (paper): sub-linear growth; groups ≪ prefixes;\n  \
         compression ratio improves as prefixes grow; more participants ⇒ more groups."
    );
    sdx_bench::report("fig6", &json, &reg.snapshot());
}
