//! Data-plane throughput reproduction — the compiled-matcher experiment.
//!
//! The claim under test: classifying a packet against the deployed flow
//! table through the `CompiledMatcher` (hash indexes over `dl_dst` /
//! `in_port`, an `nw_dst` prefix trie, a residual list) is substantially
//! faster than the linear first-match walk the table started with, and
//! batched classification amortizes dispatch further. Three deployed
//! workloads are measured: the paper's Figure 1 exchange (tiny table —
//! the fast path must not *lose* badly there), the 50-participant
//! synthetic IXP, and a scaled-up exchange.
//!
//! Every probe is first dual-run through `classify` and
//! `classify_linear`; a single `(index, priority, pattern)` mismatch
//! aborts the run. The committed acceptance bound — re-asserted by CI
//! from the JSON report — is compiled ≥ 5× linear packets/sec on the
//! ixp50 workload (≥ 2.5× under `--quick`, which runs shorter timed
//! windows on smaller probe sets).
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_dataplane_mpps
//! [--quick] [--seed N] [--json out.json]`

use std::hint::black_box;
use std::time::{Duration, Instant};

use sdx_bench::{print_table, row, Workbench};
use sdx_core::controller::SdxController;
use sdx_net::LocatedPacket;
use sdx_openflow::table::FlowTable;
use sdx_telemetry::{Json, SharedRegistry};

/// One measured workload: a deployed table plus fabric-tagged probes.
struct Measured {
    name: &'static str,
    rules: usize,
    probes: usize,
    mismatches: usize,
    build: Duration,
    approx_bytes: usize,
    linear_pps: f64,
    compiled_pps: f64,
    batched_pps: f64,
    exact_hits: u64,
    trie_hits: u64,
    residual_hits: u64,
    misses: u64,
}

/// Runs `f` repeatedly until `min_dur` has elapsed (at least twice) and
/// returns packets/sec. `f` must return a value derived from its walk so
/// the optimizer cannot delete the loop; the value is black-boxed.
fn pps(min_dur: Duration, n_probes: usize, mut f: impl FnMut() -> u64) -> f64 {
    black_box(f()); // warm caches before the timed window
    let t0 = Instant::now();
    let mut sink = 0u64;
    let mut packets = 0u64;
    let mut iters = 0u32;
    while iters < 2 || t0.elapsed() < min_dur {
        sink = sink.wrapping_add(f());
        packets += n_probes as u64;
        iters += 1;
    }
    let elapsed = t0.elapsed();
    black_box(sink);
    packets as f64 / elapsed.as_secs_f64()
}

/// Fabric-tags raw `(ingress, packet)` probes exactly as the data plane
/// would: the sender's border router FIBs + ARPs the packet, producing
/// the located frame the switch actually classifies. Unroutable probes
/// (the synthesizer mixes some in) are dropped at the router, same as in
/// the real pipeline.
fn tag_probes(
    fabric: &mut sdx_openflow::Fabric,
    raw: Vec<(sdx_net::PortId, sdx_net::Packet)>,
) -> Vec<LocatedPacket> {
    let mut arp = fabric.arp.clone();
    let mut probes = Vec::with_capacity(raw.len());
    for (port, pkt) in raw {
        if let Some(lp) = fabric
            .router_mut(port)
            .and_then(|r| r.forward(pkt, &mut arp))
        {
            probes.push(lp);
        }
    }
    probes
}

fn measure(
    name: &'static str,
    mut ctl: SdxController,
    seed: u64,
    n_probes: usize,
    min_dur: Duration,
) -> Measured {
    let mut fabric = ctl.deploy().expect("deploy workload");
    let raw = sdx_oracle::synth::sample_probes(&ctl.compiler, &ctl.rs, seed, n_probes);
    let probes = tag_probes(&mut fabric, raw);
    assert!(
        probes.len() * 2 >= n_probes,
        "{name}: too few routable probes ({} of {n_probes})",
        probes.len(),
    );

    let table: &FlowTable = fabric.switch.table();
    // `install_classifier` bulk-built the index once; force a fresh timed
    // rebuild so the reported build cost is for exactly this table.
    let mut rebuilt = table.clone();
    rebuilt.rebuild_matcher();
    let table = &rebuilt;

    // Zero-mismatch gate before anything is timed.
    let mismatches = probes
        .iter()
        .filter(|lp| {
            let fast = table.classify(lp).map(|(i, e)| (i, e.priority, e.pattern));
            let lin = table
                .classify_linear(lp)
                .map(|(i, e)| (i, e.priority, e.pattern));
            fast != lin
        })
        .count();
    assert_eq!(
        mismatches, 0,
        "{name}: compiled matcher diverged from linear"
    );

    let linear_pps = pps(min_dur, probes.len(), || {
        probes
            .iter()
            .map(|lp| table.classify_linear(lp).map_or(0, |(i, _)| i as u64 + 1))
            .sum()
    });
    let compiled_pps = pps(min_dur, probes.len(), || {
        probes
            .iter()
            .map(|lp| table.classify(lp).map_or(0, |(i, _)| i as u64 + 1))
            .sum()
    });
    let batched_pps = pps(min_dur, probes.len(), || {
        table
            .classify_batch(&probes)
            .iter()
            .map(|r| r.map_or(0, |i| i as u64 + 1))
            .sum()
    });

    let s = table.matcher_stats();
    Measured {
        name,
        rules: table.len(),
        probes: probes.len(),
        mismatches,
        build: Duration::from_nanos(s.last_build_nanos),
        approx_bytes: s.approx_bytes,
        linear_pps,
        compiled_pps,
        batched_pps,
        exact_hits: s.exact_hits,
        trie_hits: s.trie_hits,
        residual_hits: s.residual_hits,
        misses: s.miss_count,
    }
}

fn fmt_pps(pps: f64) -> String {
    format!("{:.2} Mpps", pps / 1e6)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(42);
    let min_dur = Duration::from_millis(if quick { 60 } else { 300 });
    let n_probes = if quick { 768 } else { 2048 };

    let mut measured = Vec::new();

    measured.push(measure(
        "figure1",
        sdx_ixp::testkit::figure1_controller(),
        seed,
        if quick { 256 } else { 512 },
        min_dur,
    ));

    {
        let (compiler, rs) = sdx_ixp::testkit::ixp50();
        let mut ctl = SdxController::new();
        ctl.compiler = compiler;
        ctl.rs = rs;
        measured.push(measure("ixp50", ctl, seed, n_probes, min_dur));
    }

    {
        let (parts, prefixes, policy) = if quick {
            (60, 3000, 800)
        } else {
            (120, 9000, 2400)
        };
        let wb = Workbench::new(parts, prefixes, policy, 7);
        let mut ctl = SdxController::new();
        ctl.compiler = wb.compiler();
        ctl.rs = wb.rs;
        measured.push(measure("scaled", ctl, seed, n_probes, min_dur));
    }

    let reg = SharedRegistry::new();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for m in &measured {
        let speedup = m.compiled_pps / m.linear_pps;
        let batched_speedup = m.batched_pps / m.linear_pps;
        reg.add("matcher.exact.hit.count", m.exact_hits);
        reg.add("matcher.trie.hit.count", m.trie_hits);
        reg.add("matcher.residual.hit.count", m.residual_hits);
        reg.add("matcher.miss.count", m.misses);
        reg.observe("matcher.build.nanos", m.build.as_nanos() as u64);
        reg.observe("matcher.approx.bytes", m.approx_bytes as u64);
        rows.push(vec![
            m.name.to_string(),
            m.rules.to_string(),
            m.probes.to_string(),
            sdx_bench::fmt_duration(m.build),
            format!("{:.1} KiB", m.approx_bytes as f64 / 1024.0),
            fmt_pps(m.linear_pps),
            fmt_pps(m.compiled_pps),
            fmt_pps(m.batched_pps),
            format!("{speedup:.1}x"),
            format!("{batched_speedup:.1}x"),
        ]);
        json.push(row([
            ("workload", Json::from(m.name)),
            ("quick", Json::Bool(quick)),
            ("rules", Json::from(m.rules as u64)),
            ("probes", Json::from(m.probes as u64)),
            ("mismatches", Json::from(m.mismatches as u64)),
            ("build_us", Json::Float(m.build.as_secs_f64() * 1e6)),
            ("matcher_bytes", Json::from(m.approx_bytes as u64)),
            ("linear_pps", Json::Float(m.linear_pps)),
            ("compiled_pps", Json::Float(m.compiled_pps)),
            ("batched_pps", Json::Float(m.batched_pps)),
            ("speedup", Json::Float(speedup)),
            ("batched_speedup", Json::Float(batched_speedup)),
            ("exact_hits", Json::from(m.exact_hits)),
            ("trie_hits", Json::from(m.trie_hits)),
            ("residual_hits", Json::from(m.residual_hits)),
            ("miss_count", Json::from(m.misses)),
        ]));
    }

    print_table(
        "data-plane classification throughput",
        &[
            "workload",
            "rules",
            "probes",
            "build",
            "index",
            "linear",
            "compiled",
            "batched",
            "speedup",
            "batched-x",
        ],
        &rows,
    );

    let ixp50 = measured
        .iter()
        .find(|m| m.name == "ixp50")
        .expect("ixp50 row");
    let speedup = ixp50.compiled_pps / ixp50.linear_pps;
    let floor = if quick { 2.5 } else { 5.0 };
    println!(
        "\nixp50: compiled {:.1}x linear, batched {:.1}x (floor {floor:.1}x), 0 mismatches over {} probes",
        speedup,
        ixp50.batched_pps / ixp50.linear_pps,
        measured.iter().map(|m| m.probes).sum::<usize>(),
    );
    assert!(
        speedup >= floor,
        "ixp50 compiled speedup {speedup:.2}x under the {floor}x floor"
    );

    sdx_bench::report("dataplane_mpps", &json, &reg.snapshot());
}
