//! Reproduces **Figure 5b** — the wide-area load-balancer deployment.
//!
//! The paper's second live experiment (Figure 4b): an AWS tenant — a
//! *remote* SDX participant with no physical presence carrying traffic —
//! announces an anycast service address and, at **t = 246 s**, installs a
//! policy rewriting the destination of requests from one client block to a
//! second server instance. Traffic that all flowed to instance #1 splits
//! across both instances, purely through SDX data-plane rewriting (no DNS
//! involved).
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig5b [--json out.json]`

use sdx_bench::print_table;
use sdx_bgp::route_server::ExportPolicy;
use sdx_core::controller::SdxController;
use sdx_core::participant::ParticipantConfig;
use sdx_ixp::traffic::{udp_flow, Event, SeriesKey, TrafficSim};
use sdx_net::{ip, prefix, FieldMatch, Mod, ParticipantId, PortId};
use sdx_policy::{Policy as P, Pred};
use sdx_telemetry::Json;

fn main() {
    let pid = ParticipantId;
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1); // client-hosting ISP
    let b = ParticipantConfig::new(2, 65002, 1); // transit toward AWS
    let d = ParticipantConfig::new(4, 65004, 1); // the AWS tenant (remote)
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(d.clone(), ExportPolicy::allow_all());
    // B reaches both AWS instances; D originates the anycast service
    // prefix at the SDX.
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("54.198.0.0/24")], &[65002, 14618]),
    );
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("54.230.0.0/24")], &[65002, 14618]),
    );
    ctl.rs
        .process_update(pid(4), &d.announce([prefix("74.125.1.0/24")], &[65004]));

    // From t=0 the tenant maps every client to instance #1 (the paper's
    // initial state: all request traffic reaches instance #1).
    let lb_initial = P::filter(Pred::Test(FieldMatch::NwDst(prefix("74.125.1.0/24"))))
        >> P::modify(Mod::SetNwDst(ip("54.198.0.10")));
    ctl.compiler.add_global_policy(pid(4), lb_initial);
    let fabric = ctl.deploy().expect("deploy");

    // At t=246 s the tenant splits load: requests from 204.57.0.0/16 go to
    // instance #2. (The controller API install_wide_area_lb performs the
    // ownership check; the simulator drives the same path via events.)
    let lb_split = (P::filter(
        Pred::Test(FieldMatch::NwDst(prefix("74.125.1.0/24")))
            & Pred::Test(FieldMatch::NwSrc(prefix("204.57.0.0/16"))),
    ) >> P::modify(Mod::SetNwDst(ip("54.230.0.10"))))
        + (P::filter(
            Pred::Test(FieldMatch::NwDst(prefix("74.125.1.0/24")))
                & !Pred::Test(FieldMatch::NwSrc(prefix("204.57.0.0/16"))),
        ) >> P::modify(Mod::SetNwDst(ip("54.198.0.10"))));

    let client = PortId::Phys(pid(1), 1);
    let flows = vec![
        udp_flow(
            "client-204.57",
            client,
            ip("204.57.0.67"),
            ip("74.125.1.1"),
            80,
            1.0,
            (0.0, 600.0),
        ),
        udp_flow(
            "client-other",
            client,
            ip("99.0.0.10"),
            ip("74.125.1.1"),
            80,
            1.0,
            (0.0, 600.0),
        ),
    ];
    // Keep a handle on the controller's registry: the sim consumes the
    // controller, but the shared sink keeps collecting.
    let telemetry = ctl.telemetry.clone();
    let sim = TrafficSim {
        controller: ctl,
        fabric,
        flows,
        events: vec![Event::GlobalPolicy {
            at: 246.0,
            owner: pid(4),
            policy: Some(lb_split),
        }],
        series_key: SeriesKey::DestinationIp,
    };
    let series = sim.run(600.0);

    let rate = |key: &str, t: f64| series.rate_at(key, t).unwrap_or(0.0);
    let mut rows = Vec::new();
    for (label, t) in [
        ("0–246s (before policy)", 120.0),
        ("246–600s (after policy)", 420.0),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{:.1} Mbps", rate("to-54.198.0.10", t)),
            format!("{:.1} Mbps", rate("to-54.230.0.10", t)),
        ]);
    }
    print_table(
        "Figure 5b: wide-area load balance (traffic per AWS instance)",
        &["phase", "instance #1", "instance #2"],
        &rows,
    );
    println!(
        "\n  expected shape (paper): 2 Mbps to instance #1 until t=246 s;\n  \
         afterwards the 204.57/16 client's 1 Mbps shifts to instance #2\n  \
         while the other client stays on instance #1."
    );

    let json: Vec<Json> = series
        .points
        .iter()
        .filter(|(t, _)| (*t as u64).is_multiple_of(15))
        .map(|(t, rates)| {
            let mut pairs = vec![("t".to_string(), Json::from(*t))];
            for (k, r) in series.keys.iter().zip(rates) {
                pairs.push((k.clone(), Json::from(*r)));
            }
            Json::Obj(pairs)
        })
        .collect();
    sdx_bench::report("fig5b", &json, &telemetry.snapshot());
}
