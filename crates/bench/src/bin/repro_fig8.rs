//! Reproduces **Figure 8** — initial compilation time vs. prefix groups.
//!
//! Sweeps the §6.1 policy workload's prefix-group knob for
//! `N ∈ {100, 200, 300}` participants and measures the wall-clock time of
//! a full pipeline run (policy compilation + VNH computation +
//! composition). The paper reports minutes at 1,000 groups (Python);
//! the **shape** to reproduce is super-linear (≈quadratic) growth in the
//! group count, driven by pairwise policy interaction, with VNH
//! computation a visible fraction of the total.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig8 [--json out.json]`

use sdx_bench::{fmt_duration, print_table, row, Workbench};
use sdx_telemetry::MetricsSnapshot;

fn main() {
    let participants = [100usize, 200, 300];
    // policy_prefixes sweeps the group count (≈ blocks of 16 prefixes).
    let sweep = [3_200usize, 6_400, 9_600, 12_800, 16_000, 19_200, 22_400];

    let mut metrics = MetricsSnapshot::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &n in &participants {
        for &px in &sweep {
            let wb = Workbench::new(n, 25_000, px, 8 + n as u64);
            // Warm-up run excluded (memo priming mirrors a long-lived
            // controller); then measure.
            let mut compiler = wb.compiler();
            let mut vnh = sdx_core::vnh::VnhAllocator::default();
            let _ = compiler.compile_all(&wb.rs, &mut vnh).expect("warm-up");
            let mut vnh = sdx_core::vnh::VnhAllocator::default();
            let report = compiler.compile_all(&wb.rs, &mut vnh).expect("compile");
            metrics.absorb(report.metrics_snapshot());
            rows.push(vec![
                n.to_string(),
                report.stats.group_count.to_string(),
                report.stats.forwarding_rules.to_string(),
                fmt_duration(report.stats.total),
                fmt_duration(report.stats.vnh_time),
                fmt_duration(report.stats.compose_time),
            ]);
            json.push(row([
                ("participants", n.into()),
                ("policy_prefixes", px.into()),
                ("prefix_groups", report.stats.group_count.into()),
                ("forwarding_rules", report.stats.forwarding_rules.into()),
                (
                    "compile_ms",
                    (report.stats.total.as_secs_f64() * 1e3).into(),
                ),
                ("vnh_ms", (report.stats.vnh_time.as_secs_f64() * 1e3).into()),
                (
                    "compose_ms",
                    (report.stats.compose_time.as_secs_f64() * 1e3).into(),
                ),
            ]));
        }
    }
    print_table(
        "Figure 8: initial compilation time vs prefix groups",
        &[
            "participants",
            "prefix groups",
            "flow rules",
            "compile",
            "VNH",
            "compose",
        ],
        &rows,
    );
    println!(
        "\n  expected shape (paper): compile time grows super-linearly\n  \
         (≈quadratically) with prefix groups; more participants ⇒ slower at\n  \
         equal group count. Absolute times are far below the paper's\n  \
         (Rust pipeline vs. their Python prototype)."
    );
    sdx_bench::report("fig8", &json, &metrics);
}
