//! Reproduces **Figure 9** — additional forwarding rules per update burst.
//!
//! The §4.3.2 fast path trades rules for time: every updated prefix gets a
//! fresh VNH and a privately recompiled rule slice at high priority,
//! bypassing the minimum-disjoint-subset optimization. This experiment
//! replays worst-case bursts (every update changes a best path) of 10–100
//! prefixes and counts the delta rules that must sit in the table until
//! background re-optimization coalesces them. The paper's shape: linear in
//! burst size, steeper with more participants (≈3,000 rules at 100
//! updates with 300 participants).
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig9 [--json out.json]`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdx_bench::{print_table, row, Workbench};
use sdx_core::vnh::VnhAllocator;
use sdx_net::Prefix;
use sdx_telemetry::MetricsSnapshot;

fn main() {
    let participants = [100usize, 200, 300];
    let burst_sizes = [10usize, 20, 40, 60, 80, 100];

    let mut metrics = MetricsSnapshot::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &n in &participants {
        let wb = Workbench::new(n, 25_000, 12_800, 9 + n as u64);
        let mut compiler = wb.compiler();
        let mut vnh = VnhAllocator::default();
        let base = compiler
            .compile_all(&wb.rs, &mut vnh)
            .expect("base compile");

        // Worst case: bursts drawn from the policy-affected prefixes, so
        // every update forces a fresh VNH and new rules.
        let mut affected: Vec<Prefix> = base.vnh_of.keys().map(|(_, p)| *p).collect();
        affected.sort();
        affected.dedup();
        let mut rng = StdRng::seed_from_u64(99 + n as u64);
        affected.shuffle(&mut rng);

        for &size in &burst_sizes {
            let burst: Vec<Prefix> = affected.iter().copied().take(size).collect();
            let delta = compiler
                .fast_update_burst(&wb.rs, &mut vnh, &burst)
                .expect("fast path");
            rows.push(vec![
                n.to_string(),
                size.to_string(),
                delta.additional_rules().to_string(),
                format!("{:.1}", delta.additional_rules() as f64 / size as f64),
            ]);
            json.push(row([
                ("participants", n.into()),
                ("burst_size", size.into()),
                ("additional_rules", delta.additional_rules().into()),
            ]));
        }
        metrics.absorb(compiler.telemetry().snapshot());
    }
    print_table(
        "Figure 9: additional rules vs BGP update burst size",
        &[
            "participants",
            "burst (updates)",
            "additional rules",
            "rules/update",
        ],
        &rows,
    );
    println!(
        "\n  expected shape (paper): additional rules grow linearly with the\n  \
         burst size; more participants with policies ⇒ steeper slope."
    );
    sdx_bench::report("fig9", &json, &metrics);
}
