//! Rule-churn reproduction — the delta-reconciliation experiment.
//!
//! The §4.3.2 claim under test: after the two-stage update path lands a
//! best-route change, background re-optimization should *patch* the
//! deployed table, not reinstall it. This binary deploys the
//! 50-participant workload, then runs seeded churn episodes: each picks
//! a VNH-rewritten `(viewer, prefix)` pair, withdraws the incumbent best
//! route (so the best route genuinely moves to the runner-up announcer),
//! and re-optimizes. The measured cost is the flow-mod batch the
//! reconciler actually sent — compared against the naive swap cost,
//! which is the full table size.
//!
//! A withdrawal is deliberately *harsher* than the single-pair
//! best-route flip of the acceptance bound (that one lives in
//! `tests/reconcile.rs` and costs <5% of the table): it moves the best
//! route for every viewer that preferred the incumbent, and each
//! affected FEC group rekeys. The bounds enforced here — and
//! re-asserted by CI from the committed JSON report — are: every
//! episode under 10% of the deployed rules, the median under 1/15th
//! (~6.7%), and the cheapest episode under the headline 5%.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_rule_churn
//! [--quick] [--seed N] [--json out.json]`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdx_bench::{print_table, row};
use sdx_bgp::msg::UpdateMessage;
use sdx_core::controller::SdxController;
use sdx_telemetry::Event;

/// Flow mods in the journal since the last clear: the adds + modifies +
/// deletes of every [`Event::FlowModBatchApplied`] the controller logged.
fn journaled_flowmods(ctl: &SdxController) -> usize {
    ctl.telemetry
        .journal()
        .entries()
        .iter()
        .filter_map(|e| match e.event {
            Event::FlowModBatchApplied {
                adds,
                modifies,
                deletes,
                ..
            } => Some(adds + modifies + deletes),
            _ => None,
        })
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(42);
    let episodes = if quick { 6usize } else { 20 };

    let (compiler, rs) = sdx_ixp::testkit::ixp50();
    let mut ctl = SdxController::new();
    ctl.compiler = compiler;
    ctl.rs = rs;
    let t0 = std::time::Instant::now();
    let mut fabric = ctl.deploy().expect("deploy ixp50");
    let deploy_elapsed = t0.elapsed();
    let total_rules = ctl
        .report
        .as_ref()
        .expect("deployed report")
        .stats
        .rule_count;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut worst = 0usize;
    let mut worst_rules = total_rules;
    for episode in 0..episodes {
        // A churn event that the classifier depends on, touching exactly
        // one prefix: withdraw the incumbent best route of a VNH-rewritten
        // (viewer, prefix) pair, so the best route moves to the runner-up
        // announcer (or the prefix goes dark). An announce-based flip
        // would be messier — an update the scanned viewer ignores can
        // still move other viewers' best routes, and the episode would no
        // longer be single-prefix.
        let report = ctl.report.as_ref().expect("report");
        let mut pairs: Vec<_> = report.vnh_of.keys().copied().collect();
        pairs.shuffle(&mut rng);
        let mut churned = None;
        for (viewer, p) in pairs {
            let Some(incumbent) = ctl.rs.best_for(viewer, p).map(|r| r.source.participant) else {
                continue;
            };
            let delta = ctl
                .process_update(incumbent, &UpdateMessage::withdraw([p]), &mut fabric)
                .expect("fast path");
            if !delta.rules.is_empty() {
                churned = Some(p);
                break;
            }
        }
        let p = churned.expect("workload always offers a best-route flip");

        ctl.telemetry.journal().clear();
        let t = std::time::Instant::now();
        ctl.reoptimize(&mut fabric).expect("reoptimize");
        let reopt = t.elapsed();

        let flowmods = journaled_flowmods(&ctl);
        let after = ctl.report.as_ref().expect("report").stats.rule_count;
        assert!(flowmods > 0, "a best-route flip must patch something");
        // Hard per-episode ceiling: even a prefix shared by many viewers'
        // FEC groups must patch under 10% of the table. The tighter 5%
        // median bound is asserted over the whole run below (and a plain
        // single-group churn sits near 2–3% — see tests/reconcile.rs).
        assert!(
            flowmods * 10 < after,
            "episode {episode}: churn on {p} cost {flowmods} flow mods — \
             not under 10% of {after} rules"
        );
        if flowmods > worst {
            worst = flowmods;
            worst_rules = after;
        }
        rows.push((episode, p, flowmods, after, reopt));
    }

    let mut sorted: Vec<usize> = rows.iter().map(|r| r.2).collect();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    assert!(
        median * 15 < total_rules,
        "median episode cost {median} flow mods — not under 1/15th of {total_rules} rules"
    );
    assert!(
        sorted[0] * 20 < total_rules,
        "even the cheapest episode ({} mods) missed the 5% bound on {total_rules} rules",
        sorted[0]
    );

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(e, p, mods, rules, reopt)| {
            vec![
                e.to_string(),
                p.to_string(),
                mods.to_string(),
                rules.to_string(),
                format!("{:.2}%", *mods as f64 * 100.0 / *rules as f64),
                sdx_bench::fmt_duration(*reopt),
            ]
        })
        .collect();
    print_table(
        &format!("Rule churn under delta reconciliation (seed {seed})"),
        &["episode", "prefix", "flowmods", "rules", "pct", "reopt"],
        &table_rows,
    );
    println!(
        "\n  median episode: {median} flow mods; worst: {worst} of {worst_rules} \
         deployed rules ({:.2}%).\n  a naive swap-the-classifier update would \
         have reinstalled the whole table\n  every time (deploy took {}).",
        worst as f64 * 100.0 / worst_rules as f64,
        sdx_bench::fmt_duration(deploy_elapsed),
    );

    let json: Vec<_> = rows
        .iter()
        .map(|(e, p, mods, rules, reopt)| {
            row([
                ("episode", (*e).into()),
                ("prefix", p.to_string().into()),
                ("flowmods", (*mods).into()),
                ("total_rules", (*rules).into()),
                ("naive_flowmods", (*rules).into()),
                ("reopt_ms", (reopt.as_secs_f64() * 1e3).into()),
            ])
        })
        .collect();
    sdx_bench::report("rule_churn", &json, &ctl.telemetry.snapshot());
}
