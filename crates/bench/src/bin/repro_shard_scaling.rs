//! Sharded-compilation scaling — the PR-9 performance experiment.
//!
//! Replays a calibrated AMS-IX-scale day against the compiler under each
//! sharding configuration: a full-table cold compile, then every burst
//! of a `sdx_ixp::updates` churn trace applied to the route server and
//! followed by an incremental `compile_all`. Unsharded, each burst pays
//! a full-table recompile; sharded, the compile-dirty set maps bursts to
//! shards and only those shards recompute their phase-A slices (the
//! per-viewer × per-prefix FEC signature pass that dominates at table
//! scale), everything else serving from the shard cache.
//!
//! Equivalence rides along, untimed: after the replay every sharded
//! configuration's final report is fingerprinted — total rules, total
//! groups, per-shard group counts bucketed by the config's own plan, and
//! an FNV-64 over the canonically relabeled classifier + groups — and
//! asserted identical to the unsharded baseline's. A speedup without
//! equality is a bug, not a result, so the binary refuses to print one.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_shard_scaling
//! [--quick] [--json out.json]`

use std::time::{Duration, Instant};

use sdx_bench::{fmt_duration, print_table, row, Workbench};
use sdx_core::shard::{canonicalize_report, ShardPlan, Sharding};
use sdx_core::vnh::VnhAllocator;
use sdx_core::CompileReport;
use sdx_ixp::updates::{self, TraceParams};
use sdx_telemetry::MetricsSnapshot;

/// FNV-64 over the canonical (relabeled) classifier and group structure:
/// two reports with the same fingerprint install the same rules on the
/// same FEC partition, whatever their VNH numbering was.
fn canonical_fingerprint(report: &CompileReport) -> u64 {
    let canon = canonicalize_report(report, VnhAllocator::default_pool());
    let text = format!(
        "{:?}|{:?}|{:?}",
        canon.classifier, canon.groups, canon.vnh_of
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Groups per shard under `plan` (a group belongs where its first
/// prefix lives) — the per-shard equality column.
fn groups_by_shard(report: &CompileReport, plan: &ShardPlan) -> Vec<usize> {
    let mut counts = vec![0usize; plan.len()];
    for g in report.groups.values().flatten() {
        if let Some(&p) = g.prefixes.first() {
            counts[plan.shard_of(p)] += 1;
        }
    }
    counts
}

struct ConfigResult {
    name: &'static str,
    initial: Duration,
    replay: Duration,
    bursts: usize,
    report: CompileReport,
    plan: Option<ShardPlan>,
    skipped: u64,
    recompiled: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Workload scale: 600 participants over a scaled full table (AMS-IX
    // hosts ~700 members; the prefix count is scaled so the replay
    // finishes in minutes while phase A keeps its real table-scale
    // dominance). The trace reproduces the §4.3.2 burst quantiles.
    // Quick mode still needs replays in the tens of milliseconds —
    // microsecond-scale bursts drown the speedup ratio in timer noise
    // and make the CI floor flaky.
    let (participants, prefixes, policy_prefixes, duration_secs) = if quick {
        (150usize, 10_000usize, 1_500usize, 300u64)
    } else {
        (600, 30_000, 4_000, 600)
    };
    let seed = 42u64;
    let configs: [(&'static str, Sharding); 5] = [
        ("off", Sharding::Off),
        ("shards(2)", Sharding::Shards(2)),
        ("shards(4)", Sharding::Shards(4)),
        ("shards(8)", Sharding::Shards(8)),
        ("auto", Sharding::Auto),
    ];

    let mut metrics = MetricsSnapshot::default();
    let mut results: Vec<ConfigResult> = Vec::new();
    for &(name, sharding) in &configs {
        // Every configuration replays the identical world: same seed,
        // same topology, same policies, same trace.
        let wb = Workbench::new(participants, prefixes, policy_prefixes, seed);
        let trace = updates::generate(
            &wb.ixp,
            &TraceParams {
                duration_secs,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
        );
        let mut compiler = wb.compiler();
        compiler.options.sharding = sharding;
        let mut rs = wb.rs.clone();
        let mut vnh = VnhAllocator::default();
        let t0 = Instant::now();
        let mut report = compiler.compile_all(&rs, &mut vnh).expect("cold compile");
        let initial = t0.elapsed();
        metrics.absorb(report.metrics_snapshot());
        let mut replay = Duration::ZERO;
        for burst in &trace.bursts {
            for (from, msg) in &burst.updates {
                rs.process_update(*from, msg);
            }
            let t = Instant::now();
            report = compiler.compile_all(&rs, &mut vnh).expect("burst compile");
            replay += t.elapsed();
        }
        let snap = compiler.telemetry().snapshot();
        results.push(ConfigResult {
            name,
            initial,
            replay,
            bursts: trace.bursts.len(),
            report,
            plan: compiler.shard_plan().cloned(),
            skipped: snap
                .counters
                .get("compile.shard.skipped.count")
                .copied()
                .unwrap_or(0),
            recompiled: snap
                .counters
                .get("compile.shard.recompiled.count")
                .copied()
                .unwrap_or(0),
        });
    }

    // Equivalence gate (untimed): every sharded config's final table
    // equals the unsharded baseline's, globally and per shard.
    let base = &results[0];
    let base_fp = canonical_fingerprint(&base.report);
    let base_groups: usize = base.report.groups.values().map(Vec::len).sum();
    let base_rules = base.report.classifier.rules().len();
    let mut mismatches = 0usize;
    for r in &results[1..] {
        let groups: usize = r.report.groups.values().map(Vec::len).sum();
        let rules = r.report.classifier.rules().len();
        assert_eq!(
            (groups, rules),
            (base_groups, base_rules),
            "{}: rule/group counts diverged from unsharded",
            r.name
        );
        let plan = r.plan.as_ref().expect("sharded config has a plan");
        assert_eq!(
            groups_by_shard(&r.report, plan),
            groups_by_shard(&base.report, plan),
            "{}: per-shard group counts diverged from unsharded",
            r.name
        );
        if canonical_fingerprint(&r.report) != base_fp {
            mismatches += 1;
            eprintln!("{}: canonical fingerprint diverged from unsharded", r.name);
        }
    }
    assert_eq!(mismatches, 0, "equivalence mismatches — numbers withheld");

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &results {
        let speedup = base.replay.as_secs_f64() / r.replay.as_secs_f64().max(1e-9);
        let shard_count = r.plan.as_ref().map_or(0, ShardPlan::len);
        rows.push(vec![
            r.name.to_string(),
            shard_count.to_string(),
            fmt_duration(r.initial),
            fmt_duration(r.replay),
            format!(
                "{:.1}",
                r.replay.as_secs_f64() * 1e3 / r.bursts.max(1) as f64
            ),
            r.recompiled.to_string(),
            r.skipped.to_string(),
            format!("{speedup:.2}x"),
        ]);
        json.push(row([
            ("config", r.name.into()),
            ("participants", participants.into()),
            ("prefixes", prefixes.into()),
            ("policy_prefixes", policy_prefixes.into()),
            ("shards", shard_count.into()),
            ("bursts", r.bursts.into()),
            ("initial_compile_ms", (r.initial.as_secs_f64() * 1e3).into()),
            ("replay_ms", (r.replay.as_secs_f64() * 1e3).into()),
            (
                "per_burst_ms",
                (r.replay.as_secs_f64() * 1e3 / r.bursts.max(1) as f64).into(),
            ),
            ("shards_recompiled", (r.recompiled as usize).into()),
            ("shards_skipped", (r.skipped as usize).into()),
            ("replay_speedup_vs_off", speedup.into()),
            (
                "groups",
                r.report.groups.values().map(Vec::len).sum::<usize>().into(),
            ),
            ("rules", r.report.classifier.rules().len().into()),
            ("equivalent_to_off", true.into()),
        ]));
    }
    print_table(
        &format!(
            "Shard scaling: {participants} participants, {prefixes} prefixes, \
             {policy_prefixes} policy prefixes, {}-burst replay ({duration_secs}s trace)",
            results[0].bursts
        ),
        &[
            "config",
            "shards",
            "cold",
            "replay",
            "ms/burst",
            "recompiled",
            "skipped",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\n  equivalence: every sharded configuration's final table matched the\n  \
         unsharded baseline rule-for-rule after canonical VNH relabeling, and\n  \
         per-shard group counts matched under each config's own plan (asserted\n  \
         before any number above was printed). speedup is replay wall-clock vs\n  \
         `off`: sharded bursts recompute only their dirty shards' FEC slices."
    );
    sdx_bench::report("shard_scaling", &json, &metrics);
}
