//! Update-safety reproduction — the scheduled-waves experiment.
//!
//! The claim under test: `core::schedule` turns a reconciliation batch
//! into dependency-ordered waves whose every intermediate table is
//! per-packet consistent (each probe sees its pre- or post-update
//! outcome, never a loop, never a stranded transient), while an
//! *unordered* switch agent — same mods, applied one at a time in an
//! adversarial interleaving — exposes transient violations the oracle
//! catches. The robustness half: a seeded `FlowModApply` fault on every
//! episode must be absorbed by bounded-backoff retries, and a forced
//! retry-exhaustion abort must park the fabric in the last verified-safe
//! intermediate state from which a plain re-optimization (the full-rebase
//! recovery path) converges.
//!
//! Per episode (seeded synthetic exchange + a policy restructuring):
//!
//! * plan the update (`prepare_scheduled`), freeze an [`UpdateVerifier`]
//!   over the full probe grid;
//! * **scheduled**: apply the waves in order to a table copy, counting
//!   oracle violations after every wave (must be 0);
//! * **unordered ablation**: apply the same mods one at a time in
//!   reverse dependency order, counting violations after every single
//!   mod (peak reported; the run must expose ≥1 somewhere);
//! * **fault drive**: commit the real fabric with every wave's first
//!   apply attempt failing and assert the retry/backoff accounting
//!   recovered all of them.
//!
//! One final episode forces retry exhaustion mid-plan and measures the
//! abort → parked → plain-reoptimize recovery.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_update_safety
//! [--quick] [--seed N] [--json out.json]`

use std::time::Instant;

use sdx_bench::{print_table, row};
use sdx_core::controller::SdxController;
use sdx_core::faults::{FaultPlan, InjectionPoint, ANY_WAVE};
use sdx_core::schedule::ScheduleOpts;
use sdx_core::SdxError;
use sdx_net::ParticipantId;
use sdx_openflow::fabric::Fabric;
use sdx_oracle::{synth, FabricEvaluator, UpdateVerifier};
use sdx_policy::Policy as P;
use sdx_telemetry::{Json, SharedRegistry};

/// A deployed synthetic exchange wired to the shared bench registry.
fn deployed(seed: u64, reg: &SharedRegistry) -> (SdxController, Fabric) {
    let ex = synth::exchange(seed);
    let mut ctl = SdxController::new();
    ctl.compiler = ex.compiler;
    ctl.rs = ex.rs;
    ctl.telemetry = reg.clone();
    let fabric = ctl.deploy().expect("synthetic exchange deploys");
    (ctl, fabric)
}

/// Restructure policies so the re-optimization has real dependency
/// structure: drop one participant's outbound program and (on odd seeds)
/// hand another a fresh two-clause program, so the diff mixes handler
/// retirements with new emitter/handler chains.
fn perturb(ctl: &mut SdxController, seed: u64) {
    let ids: Vec<ParticipantId> = ctl.compiler.participants().keys().copied().collect();
    ctl.set_outbound(ids[0], None);
    if seed % 2 == 1 && ids.len() > 1 {
        let policy = (P::match_(sdx_net::FieldMatch::TpDst(80))
            >> P::fwd(sdx_net::PortId::Virt(ids[0])))
            + (P::match_(sdx_net::FieldMatch::TpDst(443)) >> P::fwd(sdx_net::PortId::Virt(ids[0])));
        ctl.set_outbound(ids[1], Some(policy));
    }
}

/// Asserts the deployed table is packet-equivalent to a from-scratch
/// compile — the post-recovery sanity check.
fn assert_converged(ctl: &SdxController, fabric: &Fabric, what: &str) {
    let report = ctl.report.as_ref().expect("report");
    let deployed =
        FabricEvaluator::over_table(&ctl.compiler, &ctl.rs, report, fabric.switch.table());
    let pristine = FabricEvaluator::new(&ctl.compiler, &ctl.rs, report);
    for (from, pkt) in synth::probe_grid(&ctl.compiler, &ctl.rs) {
        assert_eq!(
            deployed.verdict(from, &pkt).0,
            pristine.verdict(from, &pkt).0,
            "{what}: deployed table diverged from scratch compile for probe from {from}"
        );
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let base_seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(1);
    let episodes = if quick { 4u64 } else { 10 };
    let opts = ScheduleOpts {
        max_attempts: 4,
        backoff_base_ms: 8,
    };

    let reg = SharedRegistry::new();
    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut total_unordered = 0usize;

    for seed in base_seed..base_seed + episodes {
        let (mut ctl, mut fabric) = deployed(seed, &reg);
        perturb(&mut ctl, seed);

        let prepared = ctl.prepare_scheduled(&mut fabric).expect("prepare");
        if prepared.plan.is_empty() {
            // Nothing to schedule for this seed: finish the (empty)
            // update so the controller state stays coherent, and move on.
            ctl.commit_scheduled(&mut fabric, prepared, &opts, None)
                .expect("empty commit");
            continue;
        }
        let report = ctl.report.as_ref().expect("new report");
        let probes = synth::probe_grid(&ctl.compiler, &ctl.rs);
        let verifier = UpdateVerifier::new(
            &ctl.compiler,
            &ctl.rs,
            report,
            fabric.switch.table(),
            &prepared.plan,
            probes,
        )
        .expect("planned waves apply to the pre-update table");

        // Scheduled mode: violations counted after every wave barrier.
        let mut scheduled_violations = 0usize;
        let mut staged = fabric.switch.table().clone();
        for wave in &prepared.plan.waves {
            staged.apply_batch(wave).expect("wave applies");
            scheduled_violations +=
                verifier.count_violations(&ctl.compiler, &ctl.rs, report, &staged);
        }
        assert_eq!(
            scheduled_violations, 0,
            "seed {seed}: scheduled waves exposed a transient violation"
        );

        // Unordered ablation: the same mods, one flow-mod at a time, in
        // *reverse* dependency order — the adversarial interleaving a
        // scheduler-less switch agent could produce. Mods whose
        // single-mod batch no longer applies (e.g. a re-add racing its
        // own delete) are skipped, as a real switch would reject them.
        let mut unordered_peak = 0usize;
        let mut unordered_bad_steps = 0usize;
        let mut chaos = fabric.switch.table().clone();
        let reversed: Vec<_> = prepared
            .plan
            .waves
            .iter()
            .flat_map(|w| w.mods.iter().cloned())
            .rev()
            .collect();
        for m in reversed {
            let single = sdx_openflow::flowmod::FlowModBatch {
                epoch: prepared.plan.epoch,
                mods: vec![m],
            };
            if chaos.apply_batch(&single).is_err() {
                continue;
            }
            let v = verifier.count_violations(&ctl.compiler, &ctl.rs, report, &chaos);
            unordered_peak = unordered_peak.max(v);
            unordered_bad_steps += usize::from(v > 0);
        }
        total_unordered += unordered_peak;

        // Fault drive: the real commit, with every wave's *first* apply
        // attempt forced to fail (fault crossings are counted per
        // concrete wave) — bounded backoff must absorb all of them.
        ctl.faults =
            FaultPlan::seeded(seed).fail_nth(InjectionPoint::FlowModApply { wave: ANY_WAVE }, 1);
        let t = Instant::now();
        let sched = ctl
            .commit_scheduled(&mut fabric, prepared, &opts, None)
            .expect("seeded single fault must be retried, not aborted");
        let commit = t.elapsed();
        assert_eq!(sched.applied.len(), sched.total_waves, "all waves land");
        assert!(sched.retries >= 1, "the seeded fault must have fired");
        assert!(
            sched.backoff_ms >= opts.backoff_base_ms,
            "retry must account backoff"
        );
        assert_converged(&ctl, &fabric, &format!("seed {seed}"));

        rows.push(vec![
            seed.to_string(),
            sched.total_waves.to_string(),
            prepared_width(&sched).to_string(),
            sched
                .applied
                .iter()
                .map(|w| w.mods)
                .sum::<usize>()
                .to_string(),
            verifier.probe_count().to_string(),
            scheduled_violations.to_string(),
            unordered_peak.to_string(),
            sched.retries.to_string(),
            format!("{}ms", sched.backoff_ms),
            sdx_bench::fmt_duration(commit),
        ]);
        json_rows.push(row([
            ("kind", "episode".into()),
            ("seed", seed.into()),
            ("waves", sched.total_waves.into()),
            ("max_wave_width", prepared_width(&sched).into()),
            (
                "mods",
                sched.applied.iter().map(|w| w.mods).sum::<usize>().into(),
            ),
            ("probes", verifier.probe_count().into()),
            ("scheduled_violations", scheduled_violations.into()),
            ("unordered_violations", unordered_peak.into()),
            ("unordered_bad_steps", unordered_bad_steps.into()),
            ("retries", sched.retries.into()),
            ("backoff_ms", sched.backoff_ms.into()),
            ("commit_ms", (commit.as_secs_f64() * 1e3).into()),
        ]));
    }
    assert!(
        !json_rows.is_empty(),
        "every seed planned an empty update — perturbation is broken"
    );
    assert!(
        total_unordered >= 1,
        "the unordered ablation never exposed a transient violation"
    );

    // Abort episode: find a seed whose plan has at least two waves, make
    // the second wave fail every attempt, and verify the abort parks the
    // fabric mid-plan from where a plain reoptimize (full-rebase
    // recovery) converges.
    let mut abort_row = None;
    for seed in base_seed..base_seed + 32 {
        let (mut ctl, mut fabric) = deployed(seed, &reg);
        perturb(&mut ctl, seed);
        let prepared = ctl.prepare_scheduled(&mut fabric).expect("prepare");
        if prepared.plan.wave_count() < 2 {
            ctl.commit_scheduled(&mut fabric, prepared, &opts, None)
                .expect("commit");
            continue;
        }
        let total = prepared.plan.wave_count();
        ctl.faults = FaultPlan::seeded(seed)
            .fail_with_probability(InjectionPoint::FlowModApply { wave: 1 }, 1.0);
        let t = Instant::now();
        let err = ctl
            .commit_scheduled(&mut fabric, prepared, &opts, None)
            .expect_err("a permanently failing wave must abort");
        let SdxError::UpdateAborted {
            wave,
            applied,
            attempts,
            ..
        } = err
        else {
            panic!("expected UpdateAborted, got {err}");
        };
        assert_eq!(wave, 1, "the seeded wave is the one that aborts");
        assert_eq!(applied, 1, "wave 0 landed before the park");
        assert_eq!(attempts, opts.max_attempts, "retries were exhausted");
        // Recovery: clear the fault and fall back to the plain
        // re-optimization path, which re-diffs the parked table.
        ctl.faults = FaultPlan::disabled();
        ctl.reoptimize(&mut fabric).expect("recovery reoptimize");
        let recovery = t.elapsed();
        assert_converged(&ctl, &fabric, &format!("abort recovery (seed {seed})"));
        println!(
            "\n  abort drill (seed {seed}): parked after wave {applied}/{total} with \
             {attempts} attempts,\n  plain reoptimize recovered in {} — deployed table \
             verified ≡ scratch compile.",
            sdx_bench::fmt_duration(recovery)
        );
        abort_row = Some(row([
            ("kind", "abort_recovery".into()),
            ("seed", seed.into()),
            ("abort_wave", wave.into()),
            ("waves_applied", applied.into()),
            ("waves_planned", total.into()),
            ("attempts", attempts.into()),
            ("recovered", true.into()),
            ("recovery_ms", (recovery.as_secs_f64() * 1e3).into()),
        ]));
        break;
    }
    let abort_row = abort_row.expect("no seed in range produced a multi-wave plan");
    json_rows.push(abort_row);

    print_table(
        &format!("Scheduled vs unordered update safety (seeds {base_seed}..)"),
        &[
            "seed", "waves", "width", "mods", "probes", "sched", "unord", "retries", "backoff",
            "commit",
        ],
        &rows,
    );
    println!(
        "\n  scheduled mode: 0 transient violations across every wave barrier;\n  \
         unordered ablation peaked at {total_unordered} violation(s) summed over episodes —\n  \
         the same flow mods, minus the dependency waves."
    );

    sdx_bench::report("update_safety", &json_rows, &reg.snapshot());
}

/// Widest wave of a finished schedule.
fn prepared_width(r: &sdx_core::schedule::ScheduleReport) -> usize {
    r.applied.iter().map(|w| w.mods).max().unwrap_or(0)
}
