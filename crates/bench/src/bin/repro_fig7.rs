//! Reproduces **Figure 7** — forwarding rules vs. prefix groups.
//!
//! Runs the full SDX pipeline on §6.1 policy workloads of increasing
//! scale (table size sweeps the resulting number of prefix groups, as the
//! paper selects group counts from its Figure 6 analysis) and reports the
//! number of forwarding rules in the compiled switch table, for
//! `N ∈ {100, 200, 300}` participants. The paper's shape: **linear** in
//! the number of prefix groups, ordered by participant count.
//!
//! Run: `cargo run --release -p sdx-bench --bin repro_fig7 [--json out.json]`

use sdx_bench::{print_table, row, Workbench};
use sdx_telemetry::MetricsSnapshot;

fn main() {
    let participants = [100usize, 200, 300];
    // policy_prefixes drives the number of prefix groups (§6.1 policies
    // reference aligned 16-prefix destination blocks).
    let sweep = [3_200usize, 6_400, 9_600, 12_800, 16_000, 19_200, 22_400];

    let mut metrics = MetricsSnapshot::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &n in &participants {
        for &px in &sweep {
            let wb = Workbench::new(n, 25_000, px, 7 + n as u64);
            let report = wb.compile();
            metrics.absorb(report.metrics_snapshot());
            rows.push(vec![
                n.to_string(),
                px.to_string(),
                report.stats.group_count.to_string(),
                report.stats.forwarding_rules.to_string(),
                format!(
                    "{:.1}",
                    report.stats.forwarding_rules as f64 / report.stats.group_count.max(1) as f64
                ),
            ]);
            json.push(row([
                ("participants", n.into()),
                ("policy_prefixes", px.into()),
                ("prefix_groups", report.stats.group_count.into()),
                ("forwarding_rules", report.stats.forwarding_rules.into()),
            ]));
        }
    }
    print_table(
        "Figure 7: forwarding rules vs prefix groups",
        &[
            "participants",
            "policy prefixes",
            "prefix groups",
            "flow rules",
            "rules/group",
        ],
        &rows,
    );
    println!(
        "\n  expected shape (paper): rules grow linearly with prefix groups\n  \
         (each group occupies a disjoint slice of flow space); more\n  \
         participants ⇒ more rules at equal group count."
    );
    sdx_bench::report("fig7", &json, &metrics);
}
