//! A minimal JSON document model with emitter and parser.
//!
//! Telemetry snapshots must be machine-readable without dragging a
//! serialization framework into the crate every other workspace member
//! depends on, so this module hand-rolls the small JSON subset the
//! subsystem needs: objects with ordered keys, arrays, strings, booleans,
//! null, and numbers. Integers are carried as `i128` so every `u64`
//! metric value (timer nanoseconds can legitimately reach `u64::MAX`)
//! round-trips exactly instead of losing precision through an `f64`.
//!
//! The parser is a strict recursive-descent over the RFC 8259 grammar —
//! enough for tests and downstream tooling to validate that emitted
//! documents are well-formed and to read values back out.

use std::fmt;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, carried exactly (covers all of `u64` and `i64`).
    Int(i128),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Member lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// The document with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    out.push_str(&format!("{}: ", Escaped(k)));
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i128::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(i128::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i128::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// A `&str` wrapper that displays as a quoted, escaped JSON string.
struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(v) if v.is_finite() => {
                // Keep a trailing `.0` so the value re-parses as a float.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no Inf/NaN; observability output degrades to null
            // rather than emitting an unparseable document.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for telemetry
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_and_reparses_exact_integers() {
        let doc = Json::obj([
            ("max".to_string(), Json::from(u64::MAX)),
            ("neg".to_string(), Json::from(-42i64)),
        ]);
        let text = doc.to_string();
        assert_eq!(text, format!("{{\"max\":{},\"neg\":-42}}", u64::MAX));
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back.get("max").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(back.get("neg").and_then(Json::as_i64), Some(-42));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::from("a\"b\\c\nd\te\u{1}");
        let text = doc.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn parses_nested_structures_and_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , true , null , \"x\" ] , \"b\" : { } } ")
            .expect("parses");
        let a = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1], Json::Float(2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4].as_str(), Some("x"));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "truex", "1 2", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::parse("3.0").expect("parses"), Json::Float(3.0));
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_output_reparses() {
        let doc = Json::obj([
            ("rows".to_string(), Json::Arr(vec![Json::from(1u64)])),
            ("empty".to_string(), Json::Obj(vec![])),
        ]);
        let pretty = doc.pretty();
        assert!(pretty.contains("\n  \"rows\": [\n"));
        assert_eq!(Json::parse(&pretty).expect("parses"), doc);
    }
}
