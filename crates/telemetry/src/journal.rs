//! A bounded structured event journal (ring buffer).
//!
//! The controller's lifecycle is a *sequence* — update received, fast-path
//! delta applied, background reoptimize completed, overlays retired — and
//! failure-injection tests need to assert on that sequence, not just on
//! end states. The [`Journal`] records typed [`Event`]s with monotonic
//! sequence numbers into a fixed-capacity ring: old entries are evicted
//! (and counted in [`dropped`](Journal::dropped)) rather than growing
//! without bound, so a long-lived controller under sustained churn keeps a
//! constant memory footprint.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json::Json;

/// A controller lifecycle event.
///
/// Participants are recorded as their raw `u32` ids and prefixes as
/// display strings, keeping this crate free of workspace dependencies (it
/// sits below every other crate).
#[derive(Clone, PartialEq, Debug)]
pub enum Event {
    /// A BGP update was processed by the route server; `prefixes` best
    /// paths changed.
    UpdateReceived {
        /// Sending participant.
        from: u32,
        /// Number of prefixes whose best route changed.
        prefixes: usize,
    },
    /// The fast path overlaid a delta on the fabric.
    DeltaApplied {
        /// Non-drop rules installed by the overlay.
        rules: usize,
        /// End-to-end fast-path latency, nanoseconds.
        latency_ns: u64,
    },
    /// Background re-optimization retired the accumulated overlays.
    OverlaysRetired {
        /// Overlay layers removed.
        layers: u32,
    },
    /// An atomic flow-mod batch landed on the fabric: the rule-level diff
    /// a delta-first reconciliation emitted instead of a table swap.
    FlowModBatchApplied {
        /// The controller commit epoch stamped on the batch.
        epoch: u64,
        /// Entries installed.
        adds: usize,
        /// Entries whose buckets were replaced in place.
        modifies: usize,
        /// Entries removed.
        deletes: usize,
    },
    /// One wave of a scheduled fabric update landed and passed its
    /// post-wave safety verification.
    UpdateWaveApplied {
        /// The controller commit epoch of the update.
        epoch: u64,
        /// Zero-based wave index.
        wave: usize,
        /// Total waves in the schedule.
        total: usize,
        /// Flow-mods in this wave.
        mods: usize,
        /// Attempts spent on the wave (1 = no retries).
        attempts: u32,
    },
    /// A scheduled fabric update was abandoned mid-flight: a wave
    /// exhausted its retry budget and the remaining waves were skipped,
    /// leaving the fabric parked in the last verified-safe state.
    UpdateAborted {
        /// The controller commit epoch of the update.
        epoch: u64,
        /// Zero-based index of the wave that kept failing.
        wave: usize,
        /// Waves committed before the abort.
        applied: usize,
        /// Total waves the schedule had.
        total: usize,
    },
    /// A full pipeline run completed and was committed to the fabric.
    ReoptimizeCompleted {
        /// Switch rules installed.
        rules: usize,
        /// FEC groups across all viewers.
        groups: usize,
        /// End-to-end reoptimize latency, nanoseconds.
        latency_ns: u64,
    },
    /// A transactional commit failed and was rolled back.
    TxnRolledBack {
        /// Which pipeline the transaction wrapped (`fastpath`/`reoptimize`).
        stage: String,
        /// Display form of the typed error.
        error: String,
    },
    /// A deterministic fault-injection point fired.
    FaultInjected {
        /// Display form of the injection point.
        point: String,
    },
    /// A supervised BGP session reached Established.
    SessionEstablished {
        /// The peer.
        peer: u32,
    },
    /// A supervised BGP session dropped.
    SessionReset {
        /// The peer.
        peer: u32,
    },
    /// Flap damping crossed the suppress threshold for a peer.
    SessionSuppressed {
        /// The peer.
        peer: u32,
    },
    /// A suppressed peer's penalty decayed below reuse; its pending
    /// prefix changes were released in one batch.
    SessionReleased {
        /// The peer.
        peer: u32,
        /// Prefixes drained from the pending set.
        pending: usize,
    },
    /// A participant policy (or global fragment) changed.
    PolicyChanged {
        /// The participant whose policy changed.
        participant: u32,
        /// `outbound`, `inbound`, or `global`.
        scope: String,
    },
    /// The socket daemon came up and is accepting connections.
    DaemonStarted {
        /// BGP peers configured.
        peers: usize,
        /// Switch channels configured.
        switches: usize,
    },
    /// The socket daemon drained its in-flight work and stopped cleanly.
    DaemonStopped {
        /// Updates processed over the daemon's lifetime.
        updates: u64,
        /// Delta compilations performed over the daemon's lifetime.
        compiles: u64,
    },
    /// A burst of queued updates was coalesced into one delta compile.
    BurstCoalesced {
        /// Updates folded into the batch.
        updates: usize,
        /// Distinct changed prefixes the batch produced.
        prefixes: usize,
    },
    /// An application-defined event.
    Custom {
        /// Event name.
        name: String,
        /// Free-form detail.
        detail: String,
    },
}

impl Event {
    /// The snake_case discriminant, for compact sequence assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::UpdateReceived { .. } => "update_received",
            Event::DeltaApplied { .. } => "delta_applied",
            Event::OverlaysRetired { .. } => "overlays_retired",
            Event::FlowModBatchApplied { .. } => "flowmod_batch_applied",
            Event::UpdateWaveApplied { .. } => "update_wave_applied",
            Event::UpdateAborted { .. } => "update_aborted",
            Event::ReoptimizeCompleted { .. } => "reoptimize_completed",
            Event::TxnRolledBack { .. } => "txn_rolled_back",
            Event::FaultInjected { .. } => "fault_injected",
            Event::SessionEstablished { .. } => "session_established",
            Event::SessionReset { .. } => "session_reset",
            Event::SessionSuppressed { .. } => "session_suppressed",
            Event::SessionReleased { .. } => "session_released",
            Event::PolicyChanged { .. } => "policy_changed",
            Event::DaemonStarted { .. } => "daemon_started",
            Event::DaemonStopped { .. } => "daemon_stopped",
            Event::BurstCoalesced { .. } => "burst_coalesced",
            Event::Custom { .. } => "custom",
        }
    }

    /// The event as a JSON object tagged with its `kind`.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("kind".to_string(), Json::from(self.kind()))];
        match self {
            Event::UpdateReceived { from, prefixes } => {
                pairs.push(("from".to_string(), Json::from(*from)));
                pairs.push(("prefixes".to_string(), Json::from(*prefixes)));
            }
            Event::DeltaApplied { rules, latency_ns } => {
                pairs.push(("rules".to_string(), Json::from(*rules)));
                pairs.push(("latency_ns".to_string(), Json::from(*latency_ns)));
            }
            Event::OverlaysRetired { layers } => {
                pairs.push(("layers".to_string(), Json::from(*layers)));
            }
            Event::FlowModBatchApplied {
                epoch,
                adds,
                modifies,
                deletes,
            } => {
                pairs.push(("epoch".to_string(), Json::from(*epoch)));
                pairs.push(("adds".to_string(), Json::from(*adds)));
                pairs.push(("modifies".to_string(), Json::from(*modifies)));
                pairs.push(("deletes".to_string(), Json::from(*deletes)));
            }
            Event::UpdateWaveApplied {
                epoch,
                wave,
                total,
                mods,
                attempts,
            } => {
                pairs.push(("epoch".to_string(), Json::from(*epoch)));
                pairs.push(("wave".to_string(), Json::from(*wave)));
                pairs.push(("total".to_string(), Json::from(*total)));
                pairs.push(("mods".to_string(), Json::from(*mods)));
                pairs.push(("attempts".to_string(), Json::from(u64::from(*attempts))));
            }
            Event::UpdateAborted {
                epoch,
                wave,
                applied,
                total,
            } => {
                pairs.push(("epoch".to_string(), Json::from(*epoch)));
                pairs.push(("wave".to_string(), Json::from(*wave)));
                pairs.push(("applied".to_string(), Json::from(*applied)));
                pairs.push(("total".to_string(), Json::from(*total)));
            }
            Event::ReoptimizeCompleted {
                rules,
                groups,
                latency_ns,
            } => {
                pairs.push(("rules".to_string(), Json::from(*rules)));
                pairs.push(("groups".to_string(), Json::from(*groups)));
                pairs.push(("latency_ns".to_string(), Json::from(*latency_ns)));
            }
            Event::TxnRolledBack { stage, error } => {
                pairs.push(("stage".to_string(), Json::from(stage.as_str())));
                pairs.push(("error".to_string(), Json::from(error.as_str())));
            }
            Event::FaultInjected { point } => {
                pairs.push(("point".to_string(), Json::from(point.as_str())));
            }
            Event::SessionEstablished { peer }
            | Event::SessionReset { peer }
            | Event::SessionSuppressed { peer } => {
                pairs.push(("peer".to_string(), Json::from(*peer)));
            }
            Event::SessionReleased { peer, pending } => {
                pairs.push(("peer".to_string(), Json::from(*peer)));
                pairs.push(("pending".to_string(), Json::from(*pending)));
            }
            Event::PolicyChanged { participant, scope } => {
                pairs.push(("participant".to_string(), Json::from(*participant)));
                pairs.push(("scope".to_string(), Json::from(scope.as_str())));
            }
            Event::DaemonStarted { peers, switches } => {
                pairs.push(("peers".to_string(), Json::from(*peers)));
                pairs.push(("switches".to_string(), Json::from(*switches)));
            }
            Event::DaemonStopped { updates, compiles } => {
                pairs.push(("updates".to_string(), Json::from(*updates)));
                pairs.push(("compiles".to_string(), Json::from(*compiles)));
            }
            Event::BurstCoalesced { updates, prefixes } => {
                pairs.push(("updates".to_string(), Json::from(*updates)));
                pairs.push(("prefixes".to_string(), Json::from(*prefixes)));
            }
            Event::Custom { name, detail } => {
                pairs.push(("name".to_string(), Json::from(name.as_str())));
                pairs.push(("detail".to_string(), Json::from(detail.as_str())));
            }
        }
        Json::Obj(pairs)
    }
}

/// A journaled event with its monotonic sequence number.
#[derive(Clone, PartialEq, Debug)]
pub struct JournalEntry {
    /// Position in the journal's lifetime stream (starts at 0, never
    /// reused; evicted entries leave a gap at the front, not in the
    /// numbering).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

impl JournalEntry {
    /// The entry as a JSON object (`seq` + the event's tagged members).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("seq".to_string(), Json::from(self.seq))];
        if let Json::Obj(event_pairs) = self.event.to_json() {
            pairs.extend(event_pairs);
        }
        Json::Obj(pairs)
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    entries: VecDeque<JournalEntry>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, thread-safe ring buffer of [`JournalEntry`]s.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    inner: Mutex<JournalInner>,
}

/// Default ring capacity (events, not bytes).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

impl Default for Journal {
    fn default() -> Self {
        Journal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// An empty journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("journal lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(JournalEntry { seq, event });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.inner
            .lock()
            .expect("journal lock")
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events' kinds, oldest first (sequence-assertion
    /// helper for tests).
    pub fn kinds(&self) -> Vec<&'static str> {
        self.inner
            .lock()
            .expect("journal lock")
            .entries
            .iter()
            .map(|e| e.event.kind())
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock").entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal lock").dropped
    }

    /// Discards every retained entry (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.inner.lock().expect("journal lock").entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> Event {
        Event::SessionReset { peer: n }
    }

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let j = Journal::new(8);
        for i in 0..5 {
            j.record(ev(i));
        }
        let entries = j.entries();
        assert_eq!(entries.len(), 5);
        assert_eq!(j.dropped(), 0);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.event, ev(i as u32));
        }
    }

    #[test]
    fn ring_wraparound_evicts_oldest_and_keeps_seq() {
        let j = Journal::new(4);
        for i in 0..10 {
            j.record(ev(i));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.capacity(), 4);
        assert_eq!(j.dropped(), 6);
        let entries = j.entries();
        // The survivors are exactly the last four, seq 6..=9, in order.
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(entries[0].event, ev(6));
        assert_eq!(entries[3].event, ev(9));
        // Sequence numbering continues across eviction.
        j.record(ev(10));
        assert_eq!(j.entries().last().unwrap().seq, 10);
        assert_eq!(j.dropped(), 7);
    }

    #[test]
    fn zero_capacity_folds_to_one() {
        let j = Journal::new(0);
        j.record(ev(1));
        j.record(ev(2));
        assert_eq!(j.len(), 1);
        assert_eq!(j.entries()[0].event, ev(2));
    }

    #[test]
    fn kinds_compresses_the_sequence() {
        let j = Journal::default();
        j.record(Event::UpdateReceived {
            from: 1,
            prefixes: 2,
        });
        j.record(Event::DeltaApplied {
            rules: 3,
            latency_ns: 500,
        });
        assert_eq!(j.kinds(), vec!["update_received", "delta_applied"]);
    }

    #[test]
    fn events_serialize_with_kind_tags() {
        let e = Event::TxnRolledBack {
            stage: "fastpath".into(),
            error: "VNH pool 10.0.0.0/30 exhausted".into(),
        };
        let json = e.to_json().to_string();
        assert!(json.starts_with("{\"kind\":\"txn_rolled_back\""), "{json}");
        let parsed = Json::parse(&json).expect("well-formed");
        assert_eq!(parsed.get("stage").and_then(Json::as_str), Some("fastpath"));
        let entry = JournalEntry { seq: 7, event: e };
        let entry_json = Json::parse(&entry.to_json().to_string()).expect("well-formed");
        assert_eq!(entry_json.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(
            entry_json.get("kind").and_then(Json::as_str),
            Some("txn_rolled_back")
        );
    }
}
