//! Metric primitives: counters, gauges, and log-scale histograms.
//!
//! Everything here is lock-free and `Sync`: a recording call is a handful
//! of relaxed atomic operations, cheap enough to sit on the controller's
//! fast path (§4.3.2) without perturbing the latencies it measures.
//!
//! The [`Histogram`] uses 64 fixed power-of-two buckets over `u64`
//! values (bucket 0 holds exactly `0`, bucket *i* holds
//! `[2^(i-1), 2^i)`, the last bucket saturates to `u64::MAX`). Log-scale
//! buckets give a bounded relative error (< 2×) on quantile readout at
//! any magnitude — nanoseconds to minutes — with a fixed 512-byte
//! footprint and no allocation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::json::Json;

/// Number of histogram buckets (covers the whole `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale histogram of `u64` observations with
/// quantile readout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Saturating sum of all observations.
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket an observation lands in: 0 for 0, else `floor(log2(v)) + 1`,
/// saturating at the last bucket.
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (used as the quantile
/// representative, clamped to the observed min/max).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add via CAS-free best effort: fetch_add wraps, so
        // clamp by fetch_update (rare contention, cold path anyway).
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        let _ = self
            .min
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |m| {
                (v < m).then_some(v)
            });
        let _ = self
            .max
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |m| {
                (v > m).then_some(v)
            });
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Nearest-rank quantile (`0.0..=1.0`), `None` while empty.
    ///
    /// The returned value is the upper bound of the bucket containing the
    /// rank, clamped to the observed `[min, max]` — so a one-sample
    /// histogram reports that exact sample at every quantile, and the
    /// relative error is bounded by the bucket width (< 2×) otherwise.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let lo = self.min.load(Ordering::Relaxed);
                let hi = self.max.load(Ordering::Relaxed);
                return Some(bucket_upper(i).clamp(lo, hi));
            }
        }
        // Unreachable: bucket totals always sum to `count`.
        self.max()
    }

    /// A serializable point-in-time image.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// A point-in-time image of a [`Histogram`] (zeros while empty).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 if empty).
    pub min: u64,
    /// Largest observation (0 if empty).
    pub max: u64,
    /// Median (nearest-rank over log buckets).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The image as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count".to_string(), Json::from(self.count)),
            ("sum".to_string(), Json::from(self.sum)),
            ("min".to_string(), Json::from(self.min)),
            ("max".to_string(), Json::from(self.max)),
            ("p50".to_string(), Json::from(self.p50)),
            ("p90".to_string(), Json::from(self.p90)),
            ("p99".to_string(), Json::from(self.p99)),
        ])
    }

    /// Reads an image back from [`to_json`](Self::to_json) output
    /// (missing members default to zero).
    pub fn from_json(v: &Json) -> HistogramSnapshot {
        let field = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        HistogramSnapshot {
            count: field("count"),
            sum: field("sum"),
            min: field("min"),
            max: field("max"),
            p50: field("p50"),
            p90: field("p90"),
            p99: field("p99"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn one_sample_is_exact_at_every_quantile() {
        let h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(12_345), "q={q}");
        }
        assert_eq!(h.min(), Some(12_345));
        assert_eq!(h.max(), Some(12_345));
        assert_eq!(h.mean(), Some(12_345.0));
    }

    #[test]
    fn zero_sample_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn saturated_top_bucket_reports_observed_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        // Both land in the last bucket; quantiles clamp to observed range.
        assert_eq!(h.quantile(0.99), Some(u64::MAX));
        assert_eq!(h.quantile(0.25), Some(u64::MAX));
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // Log-bucket relative error is bounded by 2x.
        assert!((256..=1023).contains(&p50), "p50={p50}");
        assert!((512..=1023).contains(&p90), "p90={p90}");
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.quantile(0.0), Some(1));
    }
}
