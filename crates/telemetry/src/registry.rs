//! The keyed metrics registry and span-style stage timers.
//!
//! A [`Registry`] owns named [`Counter`]s, [`Gauge`]s, [`Histogram`]s and
//! one [`Journal`]. Lookup is a read-locked map probe; the primitives
//! themselves are lock-free, so recording through a registry is cheap
//! enough for the controller's hot stages. Call sites that record in a
//! tight loop should hoist the `Arc` handle out
//! (`let c = reg.counter("x"); loop { c.inc() }`).
//!
//! [`SharedRegistry`] is the clonable handle the controller threads
//! through the stack (compiler, route server, supervisor, fabric). It
//! compares equal to every other handle on purpose: telemetry is
//! *observability*, not data-plane state, so two fabrics with identical
//! installed state stay `==` regardless of where they report metrics
//! (the transactional snapshot/rollback machinery relies on this).

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::journal::{Event, Journal};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;

/// A keyed registry of metrics plus a bounded event journal.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    journal: Journal,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, key: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("registry lock").get(key) {
        return v.clone();
    }
    map.write()
        .expect("registry lock")
        .entry(key.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// An empty registry with the default journal capacity.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry whose journal retains at most `cap` events.
    pub fn with_journal_capacity(cap: usize) -> Self {
        Registry {
            journal: Journal::new(cap),
            ..Registry::default()
        }
    }

    /// The named counter (created at zero on first use).
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        get_or_create(&self.counters, key)
    }

    /// Adds one to the named counter.
    pub fn inc(&self, key: &str) {
        self.counter(key).inc();
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, key: &str, n: u64) {
        self.counter(key).add(n);
    }

    /// The named gauge (created at zero on first use).
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, key)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, key: &str, v: i64) {
        self.gauge(key).set(v);
    }

    /// The named histogram (created empty on first use).
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, key)
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, key: &str, v: u64) {
        self.histogram(key).record(v);
    }

    /// Records a duration (as nanoseconds) into the named histogram.
    pub fn observe_duration(&self, key: &str, d: Duration) {
        self.observe(key, d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Runs `f` and records its wall-clock (nanoseconds) into the named
    /// histogram — the span-style stage timer.
    pub fn time<T>(&self, key: &str, f: impl FnOnce() -> T) -> T {
        self.timed(key, f).0
    }

    /// Like [`time`](Self::time) but also hands the elapsed duration back
    /// to the caller (for call sites that account it twice, e.g.
    /// `CompileStats`).
    pub fn timed<T>(&self, key: &str, f: impl FnOnce() -> T) -> (T, Duration) {
        let t0 = Instant::now();
        let out = f();
        let elapsed = t0.elapsed();
        self.observe_duration(key, elapsed);
        (out, elapsed)
    }

    /// A guard-style timer: records into the named histogram when dropped.
    pub fn start_timer(&self, key: &str) -> Timer<'_> {
        Timer {
            registry: self,
            key: key.to_string(),
            start: Instant::now(),
        }
    }

    /// Appends an event to the journal.
    pub fn record_event(&self, event: Event) {
        self.journal.record(event);
    }

    /// The event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// A serializable point-in-time image of every metric and the
    /// retained journal.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events: self.journal.entries(),
            dropped_events: self.journal.dropped(),
        }
    }
}

/// Records the elapsed time into its histogram on drop (see
/// [`Registry::start_timer`]).
#[derive(Debug)]
pub struct Timer<'a> {
    registry: &'a Registry,
    key: String,
    start: Instant,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.registry
            .observe_duration(&self.key, self.start.elapsed());
    }
}

/// A clonable, shareable handle to a [`Registry`].
///
/// `Default` creates a *fresh* registry; clone an existing handle to
/// share one sink across subsystems (the controller does this for its
/// compiler, route server, and deployed fabric). Handles always compare
/// equal — see the module docs for why.
#[derive(Clone, Debug, Default)]
pub struct SharedRegistry(Arc<Registry>);

impl SharedRegistry {
    /// A handle to a fresh registry.
    pub fn new() -> Self {
        SharedRegistry::default()
    }

    /// A handle whose journal retains at most `cap` events.
    pub fn with_journal_capacity(cap: usize) -> Self {
        SharedRegistry(Arc::new(Registry::with_journal_capacity(cap)))
    }

    /// Whether two handles point at the same underlying registry.
    pub fn same_sink(&self, other: &SharedRegistry) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for SharedRegistry {
    type Target = Registry;
    fn deref(&self) -> &Registry {
        &self.0
    }
}

impl PartialEq for SharedRegistry {
    /// Always equal: telemetry sinks are observability, not state.
    fn eq(&self, _other: &SharedRegistry) -> bool {
        true
    }
}

impl Eq for SharedRegistry {}

/// The process-wide default registry, for call sites with no handle to
/// thread (e.g. the policy compiler's invocation counters).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_by_key() {
        let r = Registry::new();
        r.inc("a.count");
        r.add("a.count", 2);
        r.set_gauge("b.level", -4);
        r.observe("c.size", 10);
        r.observe("c.size", 20);
        assert_eq!(r.counter("a.count").get(), 3);
        assert_eq!(r.gauge("b.level").get(), -4);
        assert_eq!(r.histogram("c.size").count(), 2);
        // Same key returns the same underlying metric.
        assert_eq!(r.counter("a.count").get(), 3);
    }

    #[test]
    fn time_records_and_returns() {
        let r = Registry::new();
        let out = r.time("stage.x", || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(r.histogram("stage.x").count(), 1);
        let (out, elapsed) = r.timed("stage.x", || "y");
        assert_eq!(out, "y");
        assert_eq!(r.histogram("stage.x").count(), 2);
        assert!(elapsed.as_nanos() > 0 || elapsed.is_zero());
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let r = Registry::new();
        {
            let _t = r.start_timer("stage.guard");
        }
        assert_eq!(r.histogram("stage.guard").count(), 1);
    }

    #[test]
    fn snapshot_captures_everything() {
        let r = Registry::with_journal_capacity(2);
        r.inc("x.count");
        r.set_gauge("y", 9);
        r.observe("z", 5);
        r.record_event(Event::OverlaysRetired { layers: 3 });
        let s = r.snapshot();
        assert_eq!(s.counters["x.count"], 1);
        assert_eq!(s.gauges["y"], 9);
        assert_eq!(s.histograms["z"].count, 1);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.dropped_events, 0);
    }

    #[test]
    fn shared_handles_compare_equal_but_track_identity() {
        let a = SharedRegistry::new();
        let b = SharedRegistry::new();
        let a2 = a.clone();
        assert_eq!(a, b, "telemetry is not state");
        assert!(a.same_sink(&a2));
        assert!(!a.same_sink(&b));
        a2.inc("shared.count");
        assert_eq!(a.counter("shared.count").get(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let before = global().counter("global.test.count").get();
        global().inc("global.test.count");
        assert_eq!(global().counter("global.test.count").get(), before + 1);
    }
}
