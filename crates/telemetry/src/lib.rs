//! # sdx-telemetry — the measurement substrate
//!
//! The paper's scalability story (§5, Figures 5–10) is entirely about
//! *measured* compile time, rule counts, and update latency; a production
//! exchange additionally lives or dies on observing its own pipeline.
//! This crate is the workspace-wide substrate every other crate emits
//! into:
//!
//! * [`metrics`] — cheap, dependency-light primitives: monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s
//!   with quantile readout (p50/p90/p99). All lock-free atomics; a
//!   counter increment is one relaxed atomic add.
//! * [`registry`] — a keyed [`Registry`] of those primitives plus
//!   span-style stage timers (`registry.time("compile.fec", || ...)`).
//!   Usable behind a `&Registry` handle (the controller threads a
//!   [`SharedRegistry`] through the whole stack) or via the process-wide
//!   [`global()`] default.
//! * [`journal`] — a bounded structured [`Journal`] (ring buffer) of
//!   controller lifecycle [`Event`]s — update received, fast-path delta
//!   applied, reoptimize completed, transaction rolled back, fault
//!   injected, session flap/suppress/release — so churn replays and
//!   failure-injection tests can assert on *sequences*, not just end
//!   states.
//! * [`snapshot`] — [`MetricsSnapshot`], a JSON-serializable point-in-
//!   time image of a registry (metrics + journal), the payload behind
//!   every `repro_*` binary's `--json` output.
//! * [`json`] — a dependency-free JSON document model ([`Json`]) with an
//!   emitter and strict parser, so this crate (which sits below every
//!   other workspace crate, fabric included) stays free of external
//!   dependencies while snapshots remain machine-readable.
//!
//! ## Metric key naming convention
//!
//! Keys are dotted lowercase paths, `<subsystem>.<object>[.<stat>]`:
//! `compile.total`, `compile.fec`, `compile.compose`, `fastpath.total`,
//! `txn.validate`, `txn.rollback`, `rs.decision`, `fabric.tx.count`.
//! Timer histograms record **nanoseconds**; counters end in `.count`.
//! The full key inventory lives in DESIGN.md §10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use journal::{Event, Journal, JournalEntry};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{global, Registry, SharedRegistry, Timer};
pub use snapshot::MetricsSnapshot;
