//! Serializable point-in-time images of a registry.
//!
//! [`MetricsSnapshot`] is the machine-readable contract between the
//! runtime and everything downstream of it: the `repro_*` bench binaries
//! write one (under the `metrics` key of their `--json` output), CI
//! validates one, and `CompileReport::metrics_snapshot()` derives one
//! from a single pipeline run. It is plain data — `BTreeMap`s and the
//! journal's retained entries — so it serializes deterministically
//! (sorted keys) through [`to_json`](MetricsSnapshot::to_json).

use std::collections::BTreeMap;

use crate::journal::JournalEntry;
use crate::json::Json;
use crate::metrics::HistogramSnapshot;

/// Everything a [`Registry`](crate::Registry) held at snapshot time.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by key.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram images by key (timer histograms are in nanoseconds).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The journal's retained entries, oldest first.
    pub events: Vec<JournalEntry>,
    /// Journal entries evicted before this snapshot was taken.
    pub dropped_events: u64,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value, histogram images are kept from whichever side has more
    /// samples (bucket-accurate merging would need the raw buckets), and
    /// events concatenate. Used by bench binaries that aggregate several
    /// registries into one report.
    pub fn absorb(&mut self, other: MetricsSnapshot) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            self.gauges.insert(k, v);
        }
        for (k, v) in other.histograms {
            match self.histograms.get(&k) {
                Some(mine) if mine.count >= v.count => {}
                _ => {
                    self.histograms.insert(k, v);
                }
            }
        }
        self.events.extend(other.events);
        self.dropped_events += other.dropped_events;
    }

    /// The retained events' kinds, oldest first.
    pub fn event_kinds(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.event.kind()).collect()
    }

    /// The snapshot as a JSON object with `counters`, `gauges`,
    /// `histograms`, `events`, and `dropped_events` members, keys sorted.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters".to_string(),
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v))),
                ),
            ),
            (
                "gauges".to_string(),
                Json::obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::from(*v)))),
            ),
            (
                "histograms".to_string(),
                Json::obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json())),
                ),
            ),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(JournalEntry::to_json).collect()),
            ),
            (
                "dropped_events".to_string(),
                Json::from(self.dropped_events),
            ),
        ])
    }

    /// Compact single-line JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Indented JSON (what `--json <path>` files embed).
    pub fn to_json_pretty(&self) -> String {
        self.to_json().pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;
    use crate::registry::Registry;

    #[test]
    fn snapshot_serializes_and_reparses() {
        let r = Registry::new();
        r.inc("compile.count");
        r.observe_duration("compile.total", std::time::Duration::from_micros(1500));
        r.set_gauge("fabric.rules", 321);
        r.record_event(Event::ReoptimizeCompleted {
            rules: 321,
            groups: 12,
            latency_ns: 1_500_000,
        });
        let snap = r.snapshot();
        let parsed = Json::parse(&snap.to_json_string()).expect("well-formed");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("compile.count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("compile.total"))
            .expect("histogram present");
        assert_eq!(HistogramSnapshot::from_json(hist).count, 1);
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("fabric.rules"))
                .and_then(Json::as_i64),
            Some(321)
        );
        let events = parsed.get("events").and_then(Json::as_arr).expect("events");
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(Json::as_str),
            Some("reoptimize_completed")
        );
        assert_eq!(snap.event_kinds(), vec!["reoptimize_completed"]);
        // Pretty form parses to the same document.
        assert_eq!(Json::parse(&snap.to_json_pretty()).expect("pretty"), parsed);
    }

    #[test]
    fn absorb_merges_counters_and_keeps_fuller_histograms() {
        let a = Registry::new();
        a.add("x.count", 2);
        a.observe("h", 1);
        let b = Registry::new();
        b.add("x.count", 3);
        b.observe("h", 1);
        b.observe("h", 2);
        b.record_event(Event::OverlaysRetired { layers: 1 });
        let mut snap = a.snapshot();
        snap.absorb(b.snapshot());
        assert_eq!(snap.counters["x.count"], 5);
        assert_eq!(snap.histograms["h"].count, 2, "fuller side wins");
        assert_eq!(snap.events.len(), 1);
    }
}
