//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses (the BGP wire codec and its tests).
//!
//! [`Bytes`] here is a plain owned buffer with a read cursor rather than a
//! refcounted slice — the codec only ever walks a buffer front to back, so
//! cheap cloning of views is not worth the machinery. Big-endian (network
//! order) integer accessors match upstream.

use std::ops::{Deref, DerefMut};

/// Read-side cursor operations over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread portion.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side operations over a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Unread length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer holding `range` of the unread bytes (by copy).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let chunk = self.chunk();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => chunk.len(),
        };
        Bytes {
            data: chunk[start..end].to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `at` unread bytes, advancing self
    /// past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(0..at);
        self.advance(at);
        head
    }

    /// The unread bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_bytes(0xFF, 3);
        w.extend_from_slice(&[1, 2]);
        assert_eq!(w.len(), 12);

        let mut r = w.freeze();
        assert_eq!(r.len(), 12);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(&r[..3], &[0xFF, 0xFF, 0xFF]);
        let head = r.split_to(3);
        assert_eq!(head.to_vec(), vec![0xFF, 0xFF, 0xFF]);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2]);
        assert!(r.is_empty() && !r.has_remaining());
    }

    #[test]
    fn slice_and_advance() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(b.slice(1..3).to_vec(), vec![3, 4]);
        assert_eq!(b[0], 2);
        assert_eq!(b.remaining(), 4);
    }
}
