//! Offline stand-in for the subset of Criterion 0.5 this workspace uses.
//!
//! Benchmarks keep their exact source shape (`criterion_group!` /
//! `criterion_main!`, groups, `bench_function`, `bench_with_input`,
//! `Bencher::iter`) but run as a plain timing loop: warm-up once, then a
//! configurable number of timed samples with a median report to stdout.
//! There is no statistics engine, HTML report, or CLI filter — the point
//! is that `cargo bench` compiles and produces a sane wall-clock signal
//! without network access to crates.io.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(&name.into_benchmark_name(), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: IntoBenchmarkName, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        name: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into_benchmark_name(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A function + parameter benchmark label.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A label of the form `function/parameter`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion of the two accepted label types (`&str`, [`BenchmarkId`]).
pub trait IntoBenchmarkName {
    /// The display label.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

/// The per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per call over the configured
    /// sample count (handled by the caller loop in [`run_one`]).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
        self.iters += 1;
    }

    /// Times `iters` iterations with caller-measured durations: `f` runs
    /// the loop itself and returns the total elapsed time, letting the
    /// bench exclude setup or time a sub-stage (upstream semantics).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.samples.push(black_box(f(1)));
        self.iters += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples + 1),
        iters: 0,
    };
    // One warm-up, then the timed samples.
    for _ in 0..=samples {
        f(&mut b);
    }
    if b.samples.len() > 1 {
        b.samples.remove(0);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {name}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| ()));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, i| {
            b.iter(|| {
                runs += 1;
                i + 1
            })
        });
        g.finish();
        assert!(runs >= 3);
    }
}
