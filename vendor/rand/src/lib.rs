//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! `rand` dependency is replaced by this vendored shim with the same call
//! surface: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is a splitmix64-seeded xoshiro256** — deterministic,
//! seed-stable, and statistically solid for workload synthesis. Streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`, which only
//! matters to code asserting exact values from a given seed; this
//! workspace asserts semantic invariants, not streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types `gen_range` can sample over.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `u64` preserving order within the sampled range.
    fn to_u64(self) -> u64;
    /// Inverse of [`to_u64`](Self::to_u64).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling kills the modulo bias; the zone is the largest
    // multiple of `n` that fits in a u64.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    /// Small-footprint generator; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honest() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v != orig, "32 elements almost surely move");

        let mut seen = [false; 8];
        let pool: Vec<usize> = (0..8).collect();
        for _ in 0..1000 {
            seen[*pool.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
