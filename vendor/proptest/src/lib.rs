//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no crates.io access, so the property-test
//! suites run against this vendored shim instead of upstream proptest.
//! What is preserved:
//!
//! * the `proptest!` macro shape (config attribute, `ident in strategy`
//!   arguments, `prop_assert*` in bodies),
//! * the [`Strategy`] combinators the suites call (`prop_map`,
//!   `prop_recursive`, `prop_oneof!`, `Just`, `any`, ranges, tuples,
//!   `collection::{vec, btree_set, btree_map}`, `option::of`),
//! * **regression-seed files**: `cc <hex>` lines are replayed before any
//!   novel cases, and new failures append a seed line, so committed
//!   `proptest-regressions` files keep working as pinned counterexamples.
//!
//! What is dropped: shrinking. A failing case reports the seed that
//! produced it (enough to replay deterministically) instead of a
//! minimized value. Case generation is a pure function of
//! `(source file, test name, case index)`, so runs are reproducible
//! without any persisted state.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// The generator handed to strategies; deterministic per test case.
pub type TestRng = StdRng;

/// Core strategy abstraction: a recipe for generating values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `recurse`
    /// produces one more level of structure from the strategy so far.
    /// `depth` bounds nesting; the size/branch hints are accepted for
    /// API compatibility but unused (each level mixes leaves back in,
    /// which bounds expected size on its own).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union {
                arms: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        level
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// The constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, bool, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Per-type `ANY` constants (`proptest::num::u16::ANY` style).
pub mod num {
    /// `u16` strategies.
    pub mod u16 {
        /// Any `u16`.
        pub const ANY: super::super::Any<u16> = super::super::Any(std::marker::PhantomData);
    }
    /// `u32` strategies.
    pub mod u32 {
        /// Any `u32`.
        pub const ANY: super::super::Any<u32> = super::super::Any(std::marker::PhantomData);
    }
}

// Integer and float ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection size specification accepted by [`collection`] strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets; duplicates are retried a bounded
    /// number of times, so the result can be smaller than requested
    /// when the element domain is nearly exhausted.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` of values from `element`, sized within `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < n && tries < n * 8 + 16 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }

    /// Strategy for ordered maps, with the same bounded-retry caveat as
    /// [`BTreeSetStrategy`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A `BTreeMap` from `key`/`value` strategies, sized within `size`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            let mut tries = 0;
            while out.len() < n && tries < n * 8 + 16 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the
    /// time (matching upstream's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` from `inner` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Runner knobs; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of novel cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` novel cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Support machinery used by the expansion of [`proptest!`]; not part of
/// the public proptest API but necessarily `pub`.
pub mod runtime {
    use std::fs;
    use std::io::Write;
    use std::path::PathBuf;

    use rand::SeedableRng;

    /// Builds the deterministic per-case generator. Lives here so the
    /// `proptest!` expansion does not require the consuming crate to
    /// depend on `rand` itself.
    pub fn rng_from_seed(seed: u64) -> crate::TestRng {
        crate::TestRng::seed_from_u64(seed)
    }

    /// Deterministic per-test base seed from source location + name.
    pub fn base_seed(file: &str, name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain([0u8]).chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Candidate regression-file locations for a `file!()` path, in
    /// upstream's two layouts: a sibling `<stem>.proptest-regressions`
    /// file and `proptest-regressions/<stem>.txt` under the crate root.
    /// Paths are tried both as given and stripped of leading directories,
    /// because `file!()` is workspace-relative while tests run from the
    /// package root.
    fn candidates(file: &str) -> Vec<PathBuf> {
        let stem = file.strip_suffix(".rs").unwrap_or(file);
        let base = PathBuf::from(stem);
        let mut out = vec![base.with_extension("proptest-regressions")];
        if let Some(name) = base.file_name().map(|s| s.to_string_lossy().into_owned()) {
            out.push(PathBuf::from("proptest-regressions").join(format!("{name}.txt")));
            // file!() may carry workspace-relative prefixes; retry on the
            // bare file name next to a local tests/ dir.
            out.push(PathBuf::from("tests").join(format!("{name}.proptest-regressions")));
        }
        out.dedup();
        out
    }

    /// Parses `cc <hex>` lines into replay seeds (first 16 hex chars).
    pub fn regression_seeds(file: &str) -> Vec<u64> {
        for path in candidates(file) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let seeds: Vec<u64> = text
                .lines()
                .filter_map(|l| l.trim().strip_prefix("cc "))
                .filter_map(|rest| {
                    let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
                    u64::from_str_radix(hex.get(..16)?, 16).ok()
                })
                .collect();
            if !seeds.is_empty() {
                return seeds;
            }
        }
        Vec::new()
    }

    /// Appends a failing seed to the regression file (best effort): the
    /// first existing candidate, else a fresh `proptest-regressions/`
    /// entry under the current directory.
    pub fn record_failure(file: &str, seed: u64, detail: &str) {
        let cands = candidates(file);
        let path = cands
            .iter()
            .find(|p| p.exists())
            .cloned()
            .or_else(|| cands.last().cloned());
        let Some(path) = path else { return };
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let fresh = !path.exists();
        let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(&path) else {
            return;
        };
        if fresh {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated."
            );
        }
        let one_line = detail.replace('\n', " ");
        let _ = writeln!(f, "cc {seed:016x}{:048} # shrinks to {one_line}", 0);
    }
}

/// Strategy re-export path compatibility (`proptest::strategy::Strategy`).
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion: fails the current case without panicking the
/// runner, so the seed gets reported and recorded.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` == `{}`: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(
                format!($($fmt)*) + &format!(" ({a:?} vs {b:?})"),
            );
        }
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{}` != `{}`: both {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err(
                format!($($fmt)*) + &format!(" (both {a:?})"),
            );
        }
    }};
}

/// The property-test declaration macro. Accepts an optional
/// `#![proptest_config(...)]` header and `fn name(arg in strategy, ...)`
/// items, exactly like upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __file = file!();
            let __name = stringify!($name);
            let __base = $crate::runtime::base_seed(__file, __name);
            let __replay = $crate::runtime::regression_seeds(__file);
            let __total = __replay.len() + __cfg.cases as usize;
            let __seeds = __replay
                .into_iter()
                .chain((0..__cfg.cases as u64).map(|i| __base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))));
            for (__case, __seed) in __seeds.enumerate() {
                let mut __rng: $crate::TestRng = $crate::runtime::rng_from_seed(__seed);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __run = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __run {
                    Ok(Ok(())) => {}
                    Ok(Err(__msg)) => {
                        $crate::runtime::record_failure(__file, __seed, &__msg);
                        panic!(
                            "proptest case {}/{} failed (replay seed {:#018x}): {}",
                            __case + 1, __total, __seed, __msg
                        );
                    }
                    Err(__payload) => {
                        $crate::runtime::record_failure(__file, __seed, "panic in case body");
                        eprintln!(
                            "proptest case {}/{} panicked (replay seed {:#018x})",
                            __case + 1, __total, __seed
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    fn rng() -> crate::TestRng {
        crate::TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut r = rng();
        let s = (0u32..8, 1u8..=3).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 8 && (1..=3).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collections_respect_size() {
        let mut r = rng();
        let v = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let got = v.generate(&mut r);
            assert!((2..5).contains(&got.len()));
        }
        let s = crate::collection::btree_set(0u32..64, 1..32);
        for _ in 0..50 {
            assert!(!s.generate(&mut r).is_empty());
        }
        let m = crate::collection::btree_map(0u32..32, 0u8..4, 0..32);
        for _ in 0..50 {
            assert!(m.generate(&mut r).len() < 32);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..16)
            .prop_map(T::Leaf)
            .prop_recursive(3, 12, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut r)) <= 4);
        }
    }

    #[test]
    fn seed_parsing_takes_leading_hex() {
        // base_seed is deterministic and distinct across names.
        let a = crate::runtime::base_seed("tests/x.rs", "p1");
        let b = crate::runtime::base_seed("tests/x.rs", "p2");
        assert_ne!(a, b);
        assert_eq!(a, crate::runtime::base_seed("tests/x.rs", "p1"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_smoke(x in 0u32..100, v in crate::collection::vec(0u8..4, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4, "len was {}", v.len());
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
