//! Application-specific peering, live: the Figure 4a/5a deployment.
//!
//! An ISP (AS C) hosts a client whose flows reach an AWS prefix via two
//! upstreams. Watch the traffic move as (1) C installs a port-80 policy at
//! t=565 s and (2) upstream B withdraws its route at t=1253 s — the SDX
//! keeps forwarding consistent with BGP, so the withdrawn path stops
//! carrying traffic within one control-plane event.
//!
//! Run: `cargo run --release --example application_specific_peering`

use sdx::bgp::msg::UpdateMessage;
use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::ixp::traffic::{udp_flow, Event, SeriesKey, TrafficSim};
use sdx::net::{ip, prefix, FieldMatch, ParticipantId, PortId};
use sdx::policy::Policy as P;

fn main() {
    let pid = ParticipantId;
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1);
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c, ExportPolicy::allow_all());
    ctl.rs.process_update(
        pid(1),
        &a.announce([prefix("54.198.0.0/16")], &[65001, 14618]),
    );
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("54.198.0.0/16")], &[65002, 7018, 14618]),
    );
    let fabric = ctl.deploy().expect("deploy");

    let client = PortId::Phys(pid(3), 1);
    let sim = TrafficSim {
        controller: ctl,
        fabric,
        flows: vec![
            udp_flow(
                "web",
                client,
                ip("99.0.0.10"),
                ip("54.198.0.50"),
                80,
                1.0,
                (0.0, 1800.0),
            ),
            udp_flow(
                "https",
                client,
                ip("99.0.0.11"),
                ip("54.198.0.50"),
                443,
                1.0,
                (0.0, 1800.0),
            ),
            udp_flow(
                "dns",
                client,
                ip("99.0.0.12"),
                ip("54.198.0.50"),
                53,
                1.0,
                (0.0, 1800.0),
            ),
        ],
        events: vec![
            Event::SetOutbound {
                at: 565.0,
                participant: pid(3),
                policy: Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
            },
            Event::Bgp {
                at: 1253.0,
                from: pid(2),
                update: UpdateMessage::withdraw([prefix("54.198.0.0/16")]),
            },
        ],
        series_key: SeriesKey::EgressParticipant,
    };
    let series = sim.run(1800.0);

    println!("time   via-AS-A  via-AS-B   (1 Mbps per flow, 3 flows)");
    for (t, rates) in series
        .points
        .iter()
        .filter(|(t, _)| (*t as u64).is_multiple_of(120))
    {
        let get = |key: &str| {
            series
                .keys
                .iter()
                .position(|k| k == key)
                .map(|i| rates[i])
                .unwrap_or(0.0)
        };
        let bar = |v: f64| "#".repeat(v.round() as usize);
        println!(
            "{t:5.0}s  {:8.1}  {:8.1}   A:{:3} B:{}",
            get("via-P1"),
            get("via-P2"),
            bar(get("via-P1")),
            bar(get("via-P2")),
        );
    }
    println!("\nevents: t=565s application-specific peering policy (port 80 via B)");
    println!("        t=1253s AS B withdraws its route (traffic must return to A)");
}
