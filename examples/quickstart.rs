//! Quickstart: the paper's Figure 1 scenario, end to end.
//!
//! Three participants at the exchange:
//! * **AS A** writes the application-specific peering policy of §3.1 —
//!   web traffic via B, HTTPS via C — in the paper's own text syntax;
//! * **AS B** (two ports) runs inbound traffic engineering, splitting
//!   arriving traffic across its routers by source address;
//! * **AS C** has no policies and relies on plain BGP.
//!
//! Run: `cargo run --example quickstart`

use std::collections::BTreeMap;

use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::vswitch;
use sdx::net::{ip, prefix, Packet, ParticipantId, PortId};
use sdx::policy::parse_policy;

fn main() {
    let pid = ParticipantId;

    // --- Participants -----------------------------------------------------
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);

    // Each participant writes policies against its own virtual switch; the
    // name tables give the paper's names (A1, B, B1, B2, C …).
    let port_book: BTreeMap<ParticipantId, Vec<u8>> =
        [(pid(1), vec![1]), (pid(2), vec![1, 2]), (pid(3), vec![1])].into();

    // AS A's outbound policy, exactly as printed in §3.1 of the paper.
    let a_policy = parse_policy(
        "(match(dstport = 80) >> fwd(B)) + (match(dstport = 443) >> fwd(C))",
        &vswitch::resolver_for(pid(1), &port_book),
    )
    .expect("A's policy parses");

    // AS B's inbound traffic engineering, also from §3.1.
    let b_policy = parse_policy(
        "(match(srcip = {0.0.0.0/1}) >> fwd(B1)) + (match(srcip = {128.0.0.0/1}) >> fwd(B2))",
        &vswitch::resolver_for(pid(2), &port_book),
    )
    .expect("B's policy parses");

    // --- Controller + BGP -------------------------------------------------
    let mut ctl = SdxController::new();
    ctl.add_participant(a.clone().with_outbound(a_policy), ExportPolicy::allow_all());
    ctl.add_participant(b.clone().with_inbound(b_policy), ExportPolicy::allow_all());
    ctl.add_participant(c.clone(), ExportPolicy::allow_all());

    // B and C both announce p1 = 10.0.0.0/8; C's AS path is shorter, so
    // plain BGP would send everything via C.
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("10.0.0.0/8")], &[65002, 100, 200]),
    );
    ctl.rs
        .process_update(pid(3), &c.announce([prefix("10.0.0.0/8")], &[65003, 200]));

    // Compile the policies, build the fabric, sync FIBs and ARP.
    let mut fabric = ctl.deploy().expect("deploy");
    let report = ctl.report.as_ref().expect("compiled");
    println!(
        "compiled {} flow rules over {} prefix groups in {:?}",
        report.stats.forwarding_rules, report.stats.group_count, report.stats.total
    );

    // --- Send traffic -----------------------------------------------------
    let from_a = PortId::Phys(pid(1), 1);
    let probes = [
        (
            "web from low-half source",
            Packet::tcp(ip("9.9.9.9"), ip("10.0.0.1"), 5000, 80),
        ),
        (
            "web from high-half source",
            Packet::tcp(ip("200.1.1.1"), ip("10.0.0.1"), 5000, 80),
        ),
        (
            "https",
            Packet::tcp(ip("9.9.9.9"), ip("10.0.0.1"), 5000, 443),
        ),
        (
            "ssh (no policy: default BGP)",
            Packet::tcp(ip("9.9.9.9"), ip("10.0.0.1"), 5000, 22),
        ),
    ];
    for (label, pkt) in probes {
        let out = fabric.send(from_a, pkt);
        match out.as_slice() {
            [d] => println!("{label:32} -> delivered at {}", d.loc),
            [] => println!("{label:32} -> dropped"),
            many => println!("{label:32} -> multicast to {} ports", many.len()),
        }
    }

    // Expected:
    //   web/low-half  -> P2.1  (A's policy via B; B's inbound TE picks B1)
    //   web/high-half -> P2.2  (B's inbound TE picks B2)
    //   https         -> P3.1  (A's policy via C)
    //   ssh           -> P3.1  (default: C has the best BGP route)
}
