//! Redirection through middleboxes, with BGP-attribute grouping (§2, §3.2).
//!
//! The paper's example: *"an AS could specify that all traffic sent by
//! YouTube servers traverses a video-transcoding middlebox hosted at a
//! particular port (E1) at the SDX"*, selecting YouTube's prefixes with an
//! AS-path regular expression over the RIB:
//!
//! ```text
//! YouTubePrefixes = RIB.filter('as_path', '.*43515$')
//! match(srcip = {YouTubePrefixes}) >> fwd(E1)
//! ```
//!
//! Run: `cargo run --release --example middlebox_redirection`

use sdx::bgp::aspath_re::AsPathRegex;
use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{ip, prefix, Packet, ParticipantId, PortId};
use sdx::policy::{Policy, Pred};

fn main() {
    let pid = ParticipantId;
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1); // the AS wanting transcoding
    let b = ParticipantConfig::new(2, 65002, 1); // transit carrying YouTube
    let e = ParticipantConfig::new(5, 65005, 1); // hosts the middlebox at E1
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(e.clone(), ExportPolicy::allow_all());

    // B carries a YouTube prefix (origin AS 43515) and an unrelated one.
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("208.65.152.0/22")], &[65002, 3356, 43515]),
    );
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("151.101.0.0/16")], &[65002, 54113]),
    );
    // A announces its own eyeball prefix so return traffic routes.
    ctl.rs
        .process_update(pid(1), &a.announce([prefix("99.0.0.0/8")], &[65001]));

    // ---- RIB.filter('as_path', '.*43515$') --------------------------------
    let re = AsPathRegex::compile(".*43515$").expect("pattern compiles");
    let youtube_prefixes = ctl.rs.filter_as_path(pid(1), &re);
    println!("RIB.filter('as_path', '.*43515$') = {youtube_prefixes:?}");

    // ---- match(srcip = {YouTubePrefixes}) >> fwd(E1) ----------------------
    // A's *inbound* policy: video traffic arriving for A's eyeballs is
    // steered to the transcoding middlebox at port E1 instead of A's own
    // router. (The middlebox re-injects transcoded traffic itself —
    // "service chaining", §8.)
    let policy = Policy::filter(Pred::src_in(youtube_prefixes.iter().copied()))
        >> Policy::fwd(PortId::Phys(pid(5), 1));
    ctl.set_inbound(pid(1), Some(policy));
    let mut fabric = ctl.deploy().expect("deploy");

    // Transit B carries YouTube-sourced video traffic toward A's eyeball
    // prefix: it detours through the middlebox port E1.
    let from_youtube = fabric.send(
        PortId::Phys(pid(2), 1),
        Packet::udp(ip("208.65.153.9"), ip("99.0.0.1"), 1935, 40000),
    );
    println!(
        "video flow from 208.65.153.9 -> {}",
        from_youtube
            .first()
            .map(|d| d.loc.to_string())
            .unwrap_or_else(|| "dropped".into())
    );
    assert_eq!(
        from_youtube[0].loc,
        PortId::Phys(pid(5), 1),
        "via middlebox E1"
    );

    // Unrelated traffic toward A is delivered to A's router untouched.
    let other = fabric.send(
        PortId::Phys(pid(2), 1),
        Packet::udp(ip("151.101.1.1"), ip("99.0.0.1"), 443, 40000),
    );
    println!(
        "non-YouTube flow from 151.101.1.1 -> {}",
        other
            .first()
            .map(|d| d.loc.to_string())
            .unwrap_or_else(|| "dropped".into())
    );
    assert_eq!(other[0].loc, PortId::Phys(pid(1), 1), "direct to A");
}
