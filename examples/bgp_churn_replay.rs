//! Replay a calibrated BGP churn trace through a live SDX and watch the
//! two-stage compilation (§4.3.2) at work: the fast path overlays delta
//! rules per burst, and background re-optimization periodically coalesces
//! the table back to its minimal size.
//!
//! Run: `cargo run --release --example bgp_churn_replay`

use std::time::Instant;

use sdx::core::controller::SdxController;
use sdx::ixp::policy_workload::{assign_policies, PolicyWorkloadParams};
use sdx::ixp::topology::{build, TopologyParams};
use sdx::ixp::updates::{generate, TraceParams};

fn main() {
    // A mid-sized exchange with the §6.1 policy workload.
    let mut ixp = build(&TopologyParams {
        participants: 100,
        prefixes: 10_000,
        seed: 2024,
        ..Default::default()
    });
    assign_policies(
        &mut ixp,
        &PolicyWorkloadParams {
            policy_prefixes: 4_800,
            ..Default::default()
        },
    );

    let mut ctl = SdxController::new();
    for cfg in &ixp.participants {
        ctl.add_participant(
            cfg.clone(),
            sdx::bgp::route_server::ExportPolicy::allow_all(),
        );
    }
    // Feed the initial table through the controller's own route server.
    let seeded = ixp.route_server();
    ctl.rs = seeded;
    let t0 = Instant::now();
    let mut fabric = ctl.deploy().expect("deploy");
    let report = ctl.report.as_ref().expect("compiled");
    println!(
        "initial compile: {} rules / {} groups in {:?}",
        report.stats.forwarding_rules,
        report.stats.group_count,
        t0.elapsed()
    );
    let base_rules = fabric.switch.table().len();

    // One hour of calibrated churn.
    let trace = generate(
        &ixp,
        &TraceParams {
            duration_secs: 3600,
            session_resets: 0,
            ..Default::default()
        },
    );
    println!(
        "replaying {} bursts / {} updates over a simulated hour…\n",
        trace.stats.bursts, trace.stats.updates
    );

    let mut processed = 0u64;
    let mut reopt_every = 0usize;
    let mut slowest = std::time::Duration::ZERO;
    for burst in &trace.bursts {
        for (from, update) in &burst.updates {
            let t = Instant::now();
            ctl.process_update(*from, update, &mut fabric)
                .expect("fast path");
            slowest = slowest.max(t.elapsed());
            processed += 1;
        }
        reopt_every += 1;
        // Background re-optimization runs in the quiet gaps between
        // bursts; here, after every 50th burst.
        if reopt_every.is_multiple_of(50) {
            let before = fabric.switch.table().len();
            let t = Instant::now();
            ctl.reoptimize(&mut fabric).expect("reoptimize");
            println!(
                "  after burst {reopt_every:4}: {before:5} rules (with overlays) → {:5} (re-optimized) in {:?}",
                fabric.switch.table().len(),
                t.elapsed()
            );
        }
    }
    println!("\nprocessed {processed} updates; slowest single fast-path event: {slowest:?}");
    println!(
        "table: {} rules at start, {} after the final re-optimization",
        base_rules,
        fabric.switch.table().len()
    );
    assert!(
        slowest < std::time::Duration::from_secs(1),
        "sub-second always"
    );
}
