//! Wide-area server load balancing: the Figure 4b/5b deployment.
//!
//! A *remote* participant (an AWS tenant with no physical routers at the
//! exchange) announces an anycast service prefix and asks the SDX to
//! rewrite request destinations per client block — replacing DNS-based
//! load balancing with direct data-plane control (§2, §3.1 of the paper).
//!
//! Run: `cargo run --release --example wide_area_load_balancer`

use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{ip, prefix, Packet, ParticipantId, PortId};

fn main() {
    let pid = ParticipantId;
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1); // client-hosting ISP
    let b = ParticipantConfig::new(2, 65002, 1); // transit toward AWS
    let d = ParticipantConfig::new(4, 65004, 1); // the AWS tenant (remote)
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(d.clone(), ExportPolicy::allow_all());

    // The instances live behind transit B; the tenant originates the
    // anycast prefix at the SDX route server.
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("54.198.0.0/24")], &[65002, 14618]),
    );
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("54.230.0.0/24")], &[65002, 14618]),
    );
    ctl.rs
        .process_update(pid(4), &d.announce([prefix("74.125.1.0/24")], &[65004]));
    let mut fabric = ctl.deploy().expect("deploy");

    let send = |fabric: &mut sdx::openflow::fabric::Fabric, src: &str| {
        let out = fabric.send(
            PortId::Phys(pid(1), 1),
            Packet::udp(ip(src), ip("74.125.1.1"), 40_000, 80),
        );
        match out.as_slice() {
            [d] => format!("exits {} toward {}", d.loc, d.pkt.nw_dst),
            [] => "dropped".to_string(),
            _ => "multicast?!".to_string(),
        }
    };

    println!("before the LB policy (anycast traffic defaults to the tenant's announcement):");
    println!("  204.57.0.67 -> {}", send(&mut fabric, "204.57.0.67"));
    println!("  99.0.0.10   -> {}", send(&mut fabric, "99.0.0.10"));

    // The tenant installs the load-balancing policy remotely. The SDX
    // checks prefix ownership before accepting it.
    ctl.install_wide_area_lb(
        pid(4),
        prefix("74.125.1.0/24"),
        &[
            (prefix("204.57.0.0/16"), ip("54.230.0.10")), // instance #2
            (prefix("0.0.0.0/1"), ip("54.198.0.10")),     // instance #1
            (prefix("128.0.0.0/1"), ip("54.198.0.10")),   // instance #1
        ],
        &mut fabric,
    )
    .expect("tenant owns the prefix");

    println!("\nafter the LB policy (destination rewritten per client block):");
    println!("  204.57.0.67 -> {}", send(&mut fabric, "204.57.0.67"));
    println!("  99.0.0.10   -> {}", send(&mut fabric, "99.0.0.10"));

    // An impostor cannot steer the tenant's traffic.
    let hijack = ctl.install_wide_area_lb(
        pid(2),
        prefix("74.125.1.0/24"),
        &[(prefix("0.0.0.0/0"), ip("54.198.0.99"))],
        &mut fabric,
    );
    println!(
        "\nownership check: B's attempt to steer D's prefix -> {}",
        hijack
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "ACCEPTED (BUG)".into())
    );
}
