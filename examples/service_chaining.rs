//! Service chaining (§8): video traffic traverses a scrubber and then a
//! transcoder before reaching the consumer's network.
//!
//! The chain is synthesized entirely from the SDX's existing policy
//! machinery: the consumer's inbound policy diverts the class to the
//! first middlebox port; each middlebox host's outbound policy (keyed on
//! the middlebox's own in-port) steers re-injected traffic to the next
//! hop; the final hop outputs directly at the consumer's port.
//!
//! Run: `cargo run --release --example service_chaining`

use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::service_chain::ServiceChain;
use sdx::net::{ip, prefix, FieldMatch, Packet, ParticipantId, PortId};
use sdx::openflow::middlebox::{run_through_chain, Middlebox};
use sdx::policy::Pred;

fn main() {
    let pid = ParticipantId;
    let mut ctl = SdxController::new();
    let eyeball = ParticipantConfig::new(1, 65001, 1); // the consumer
    let transit = ParticipantConfig::new(2, 65002, 1); // carries the video
    let scrub_host = ParticipantConfig::new(5, 65005, 1);
    let code_host = ParticipantConfig::new(6, 65006, 1);
    ctl.add_participant(eyeball.clone(), ExportPolicy::allow_all());
    ctl.add_participant(transit, ExportPolicy::allow_all());
    ctl.add_participant(scrub_host, ExportPolicy::allow_all());
    ctl.add_participant(code_host, ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(1), &eyeball.announce([prefix("99.0.0.0/8")], &[65001]));

    // Chain: YouTube-sourced traffic → scrubber (E1) → transcoder (F1) → A.
    let chain = ServiceChain {
        traffic: Pred::Test(FieldMatch::NwSrc(prefix("208.65.152.0/22"))),
        consumer: pid(1),
        hops: vec![PortId::Phys(pid(5), 1), PortId::Phys(pid(6), 1)],
    };
    chain.install(&mut ctl).expect("valid chain");
    let mut fabric = ctl.deploy().expect("deploy");

    let mut middleboxes = vec![
        Middlebox::passthrough(PortId::Phys(pid(5), 1), "scrubber"),
        Middlebox::passthrough(PortId::Phys(pid(6), 1), "transcoder"),
    ];

    // A video flow from YouTube's prefix traverses the whole chain…
    let delivered = run_through_chain(
        &mut fabric,
        &mut middleboxes,
        PortId::Phys(pid(2), 1),
        Packet::udp(ip("208.65.153.9"), ip("99.0.0.50"), 1935, 40_000),
        8,
    )
    .expect("chain terminates");
    println!(
        "video flow:     delivered at {} after scrubber({}) + transcoder({})",
        delivered[0].loc, middleboxes[0].processed, middleboxes[1].processed
    );

    // …while ordinary traffic goes straight to the consumer.
    let direct = run_through_chain(
        &mut fabric,
        &mut middleboxes,
        PortId::Phys(pid(2), 1),
        Packet::udp(ip("151.101.1.1"), ip("99.0.0.50"), 443, 40_000),
        8,
    )
    .expect("terminates");
    println!(
        "regular flow:   delivered at {} untouched (scrubber={}, transcoder={})",
        direct[0].loc, middleboxes[0].processed, middleboxes[1].processed
    );
    assert_eq!(middleboxes[0].processed, 1);
    assert_eq!(middleboxes[1].processed, 1);
}
