//! Inbound traffic engineering (§2, §3.1): an AS with two fabric ports
//! directly controls which of its routers receives which traffic — no AS
//! prepending, no community gymnastics, no selective announcements.
//!
//! Run: `cargo run --release --example inbound_traffic_engineering`

use std::collections::BTreeMap;

use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::vswitch;
use sdx::net::{ip, prefix, Packet, ParticipantId, PortId};
use sdx::policy::parse_policy;

fn main() {
    let pid = ParticipantId;
    // B is the eyeball ISP with two fabric ports; A and C send it traffic.
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);

    let book: BTreeMap<ParticipantId, Vec<u8>> =
        [(pid(1), vec![1]), (pid(2), vec![1, 2]), (pid(3), vec![1])].into();

    // The §3.1 inbound policy, in the paper's own words: split arriving
    // traffic across B1 and B2 by source address halves.
    let te = parse_policy(
        "(match(srcip = {0.0.0.0/1}) >> fwd(B1)) + (match(srcip = {128.0.0.0/1}) >> fwd(B2))",
        &vswitch::resolver_for(pid(2), &book),
    )
    .expect("parses");

    let mut ctl = SdxController::new();
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b.clone().with_inbound(te), ExportPolicy::allow_all());
    ctl.add_participant(c, ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("20.0.0.0/8")], &[65002]));
    let mut fabric = ctl.deploy().expect("deploy");

    println!("traffic toward B's prefix 20.0.0.0/8, split by B's inbound TE policy:\n");
    for (sender, src) in [
        (1u32, "9.0.0.1"), // low half → B1
        (1, "200.0.0.1"),  // high half → B2
        (3, "64.10.0.1"),  // low half → B1, regardless of sender
        (3, "190.3.2.1"),  // high half → B2
    ] {
        let out = fabric.send(
            PortId::Phys(pid(sender), 1),
            Packet::tcp(ip(src), ip("20.1.2.3"), 40_000, 80),
        );
        println!(
            "  from AS {sender} src {src:12} -> {}",
            out.first()
                .map(|d| d.loc.to_string())
                .unwrap_or_else(|| "dropped".into())
        );
    }

    // The paper's contrast: this took one declarative policy; the BGP
    // equivalent is prepending/communities/selective ads with no guarantee.
    let b1 = fabric
        .router(PortId::Phys(pid(2), 1))
        .map(|_| "attached")
        .unwrap_or("missing");
    println!("\nB1 router {b1}; policy enforced in the fabric, invisible to senders.");
}
