//! Integration tests for delta-first reconciliation: the §4.3.2 update
//! path rebuilt as a typed flow-mod protocol with churn-stable VNH
//! identity.
//!
//! What these tests pin down:
//!
//! * re-optimization **patches** the deployed table (flow-mod churn
//!   proportional to the BGP change, not to table size — the 50-party
//!   fixture must stay under 5% on a single-prefix best-route change);
//! * unchanged FEC groups keep their **exact** VNH and VMAC across
//!   recompilations (content-addressed identity);
//! * ARP invalidation is **selective**: an unaffected router's cache
//!   survives a reoptimize, while retired bindings are flushed;
//! * a patched table is **packet-equivalent** to a from-scratch compile
//!   of the same final RIB (checked through the semantic oracle);
//! * `remove_participant` with live fast-path overlays deletes the delta
//!   rules outright and recycles every retired VNH;
//! * an idle reoptimize is a **no-op**: empty batch, no FIB
//!   re-advertisements, identical VNH map.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx::bgp::msg::UpdateMessage;
use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::reconcile::DELTA_BASE;
use sdx::core::VnhAllocator;
use sdx::net::{prefix, FieldMatch, Ipv4Addr, MacAddr, Packet, ParticipantId, PortId, Prefix};
use sdx::policy::Policy as P;
use sdx::Event;
use sdx_oracle::diff::Differential;
use sdx_oracle::fabric::FabricEvaluator;
use sdx_oracle::Outcome;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

struct Rig {
    ctl: SdxController,
    fabric: sdx::openflow::fabric::Fabric,
    configs: Vec<ParticipantConfig>,
    prefixes: Vec<Prefix>,
}

/// Six participants, two /8s each, deterministic routes (origin i
/// announces with a 2-hop path) and a two-clause outbound policy — small
/// enough to reason about exactly which FEC groups a churn event touches.
fn rig() -> Rig {
    let mut ctl = SdxController::new();
    let mut configs = Vec::new();
    for i in 1..=6u32 {
        let cfg = ParticipantConfig::new(i, 65000 + i, 1);
        ctl.add_participant(cfg.clone(), ExportPolicy::allow_all());
        configs.push(cfg);
    }
    let mut prefixes = Vec::new();
    for i in 0..12u32 {
        let p = prefix(&format!("{}.0.0.0/8", 10 + i));
        prefixes.push(p);
        let origin = (i % 6) + 1;
        ctl.rs.process_update(
            pid(origin),
            &configs[(origin - 1) as usize].announce([p], &[65000 + origin, 900 + i]),
        );
    }
    ctl.set_outbound(
        pid(1),
        Some(
            (P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2))))
                + (P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(pid(3)))),
        ),
    );
    let fabric = ctl.deploy().expect("deploy");
    Rig {
        ctl,
        fabric,
        configs,
        prefixes,
    }
}

/// Sum of flow mods in every `FlowModBatchApplied` journal entry.
fn journaled_flowmods(ctl: &SdxController) -> usize {
    ctl.telemetry
        .journal()
        .entries()
        .iter()
        .filter_map(|e| match e.event {
            Event::FlowModBatchApplied {
                adds,
                modifies,
                deletes,
                ..
            } => Some(adds + modifies + deletes),
            _ => None,
        })
        .sum()
}

#[test]
fn idle_reoptimize_is_a_noop_patch() {
    let mut r = rig();
    let old_vnhs: Vec<(ParticipantId, Ipv4Addr, MacAddr)> = r
        .ctl
        .report
        .as_ref()
        .expect("deployed report")
        .groups
        .values()
        .flatten()
        .map(|g| (g.viewer, g.vnh, g.vmac))
        .collect();
    let sent_before = r.ctl.telemetry.counter("fibsync.sent.count").get();
    r.ctl.telemetry.journal().clear();

    r.ctl.reoptimize(&mut r.fabric).expect("idle reoptimize");

    assert_eq!(
        journaled_flowmods(&r.ctl),
        0,
        "recompiling identical state must emit an empty flow-mod batch"
    );
    assert_eq!(
        r.ctl.telemetry.counter("fibsync.sent.count").get(),
        sent_before,
        "no route changed, so no FIB re-advertisement may be sent"
    );
    let new_vnhs: Vec<(ParticipantId, Ipv4Addr, MacAddr)> = r
        .ctl
        .report
        .as_ref()
        .expect("report")
        .groups
        .values()
        .flatten()
        .map(|g| (g.viewer, g.vnh, g.vmac))
        .collect();
    assert_eq!(
        old_vnhs, new_vnhs,
        "keyed identity must hold every VNH still"
    );
}

#[test]
fn arp_cache_of_unaffected_router_survives_reoptimize() {
    let mut r = rig();
    // Viewer 1 carries an outbound policy, so its routes are rewritten to
    // virtual next hops — the ARP entries whose selective invalidation
    // this test pins down.
    let viewer_port = PortId::Phys(pid(1), 1);

    // Warm router 1's ARP cache with two entries: one for a prefix whose
    // route is about to churn (11.0.0.0/8, origin 2) and one stable
    // (12.0.0.0/8, origin 3).
    let churn_dst = Ipv4Addr::new(11, 0, 0, 7);
    let stable_dst = Ipv4Addr::new(12, 0, 0, 7);
    for dst in [churn_dst, stable_dst] {
        r.fabric.send(
            viewer_port,
            Packet::tcp(Ipv4Addr::new(200, 1, 0, 1), dst, 40_000, 22),
        );
    }
    let router = r.fabric.router(viewer_port).expect("router 1");
    let churn_vnh = router.route_for(churn_dst).expect("route").1.next_hop;
    let stable_vnh = router.route_for(stable_dst).expect("route").1.next_hop;
    let stable_vmac = router
        .cached_arp(stable_vnh)
        .expect("stable entry cached by the probe");
    assert!(router.cached_arp(churn_vnh).is_some());
    assert_ne!(churn_vnh, stable_vnh, "fixture: distinct FEC groups");
    assert!(
        r.ctl
            .report
            .as_ref()
            .expect("report")
            .vnh_of
            .contains_key(&(pid(1), r.prefixes[1])),
        "fixture: viewer 1's churn route must be VNH-rewritten"
    );

    // Best route for 11.0.0.0/8 moves from participant 2 to participant 5
    // (a one-hop path beats the two-hop original), then reoptimize.
    let update = r.configs[4].announce([r.prefixes[1]], &[65005]);
    r.ctl
        .process_update(pid(5), &update, &mut r.fabric)
        .expect("fast path");
    r.ctl.reoptimize(&mut r.fabric).expect("reoptimize");

    let router = r.fabric.router(viewer_port).expect("router 1");
    assert_eq!(
        router.cached_arp(stable_vnh),
        Some(stable_vmac),
        "reoptimize must not flush ARP entries of unaffected FEC groups"
    );
    assert_eq!(
        router.cached_arp(churn_vnh),
        None,
        "the churned group's retired binding must be invalidated"
    );
    // And the stable group still routes through the very same VNH.
    assert_eq!(
        router.route_for(stable_dst).expect("route").1.next_hop,
        stable_vnh,
        "stable prefix must keep its virtual next hop"
    );
}

#[test]
fn remove_participant_with_live_overlays_deletes_deltas_and_recycles_vnhs() {
    let mut r = rig();

    // Stack a fast-path overlay: participant 4 steals 11.0.0.0/8 (origin
    // 2's prefix) with a shorter path.
    let update = r.configs[3].announce([r.prefixes[1]], &[65004]);
    r.ctl
        .process_update(pid(4), &update, &mut r.fabric)
        .expect("fast path");
    assert!(r.ctl.delta_layers() > 0, "fixture: an overlay must be live");
    let overlay_rules = r
        .fabric
        .switch
        .table()
        .entries()
        .iter()
        .filter(|e| e.priority >= DELTA_BASE)
        .count();
    assert!(overlay_rules > 0, "fixture: overlay rules installed");

    assert!(r.ctl.remove_participant(pid(2), &mut r.fabric));

    let table = r.fabric.switch.table();
    assert_eq!(
        table
            .entries()
            .iter()
            .filter(|e| e.priority >= DELTA_BASE)
            .count(),
        0,
        "retired delta rules must be deleted, not shadowed"
    );
    // Every retired id — the overlay's and the removed participant's —
    // must be back in the pool: live keyed mappings and pool accounting
    // both reduce to exactly the surviving groups.
    let live_groups: usize = r
        .ctl
        .report
        .as_ref()
        .expect("report")
        .groups
        .values()
        .map(Vec::len)
        .sum();
    let capacity = VnhAllocator::new(VnhAllocator::default_pool()).remaining();
    assert_eq!(r.ctl.vnh.keyed_len(), live_groups);
    assert_eq!(
        r.ctl.vnh.remaining(),
        capacity - live_groups as u64,
        "retired VNHs must be recycled"
    );
}

#[test]
fn churn_trace_patched_table_matches_scratch_compile() {
    let mut r = rig();
    let mut rng = StdRng::seed_from_u64(7);

    // A churn trace: random re-announcements and withdrawals through the
    // fast path, then one background reoptimize patches the base table.
    for _ in 0..15 {
        let p = *r.prefixes.choose(&mut rng).expect("prefixes");
        let who = rng.gen_range(1..=6u32);
        let update = if rng.gen_bool(0.3) {
            UpdateMessage::withdraw([p])
        } else {
            r.configs[(who - 1) as usize].announce([p], &[65000 + who, rng.gen_range(1000..2000)])
        };
        r.ctl
            .process_update(pid(who), &update, &mut r.fabric)
            .expect("fast path");
    }
    r.ctl.reoptimize(&mut r.fabric).expect("reoptimize");

    // From-scratch compilation of the same final RIB state, with a fresh
    // allocator — the all-new-VNHs world the patched fabric must be
    // packet-equivalent to.
    let mut scratch_vnh = VnhAllocator::new(VnhAllocator::default_pool());
    let scratch = r
        .ctl
        .compiler
        .compile_all(&r.ctl.rs, &mut scratch_vnh)
        .expect("scratch compile");

    let report = r.ctl.report.as_ref().expect("committed report");
    let patched =
        Differential::over_table(&r.ctl.compiler, &r.ctl.rs, report, r.fabric.switch.table());
    let scratch_eval = FabricEvaluator::new(&r.ctl.compiler, &r.ctl.rs, &scratch);

    let mut delivered = 0usize;
    for sender in 1..=6u32 {
        let from = PortId::Phys(pid(sender), 1);
        for &p in &r.prefixes {
            for port in [80u16, 443, 22] {
                let pkt = Packet::tcp(
                    Ipv4Addr::new(200, sender as u8, 0, 1),
                    p.addr().saturating_add(7),
                    40_000,
                    port,
                );
                // Spec ≡ deployed (patched) table…
                let agreed = patched
                    .check(from, &pkt)
                    .unwrap_or_else(|m| panic!("patched table diverged from spec:\n{m}"));
                // …and deployed table ≡ from-scratch compile.
                let (scratch_out, _) = scratch_eval.verdict(from, &pkt);
                assert_eq!(
                    agreed, scratch_out,
                    "patched table disagrees with scratch compile at {from}, dst {p}, port {port}"
                );
                if matches!(agreed, Outcome::Deliver { .. }) {
                    delivered += 1;
                }
            }
        }
    }
    assert!(delivered > 0, "probe sweep must not be vacuously all-drops");
}

#[test]
fn single_prefix_churn_on_ixp50_patches_under_five_percent() {
    let (compiler, rs) = sdx::ixp::testkit::ixp50();
    let mut ctl = SdxController::new();
    ctl.compiler = compiler;
    ctl.rs = rs;
    let mut fabric = ctl.deploy().expect("deploy ixp50");
    let before = ctl.report.as_ref().expect("deployed report");
    let total_rules = before.stats.rule_count;
    let old_groups: std::collections::BTreeMap<_, _> = before
        .groups
        .values()
        .flatten()
        .map(|g| {
            (
                (g.viewer, g.prefixes.clone(), g.default_next_hop),
                (g.vnh, g.vmac),
            )
        })
        .collect();

    // One best-route change that matters to the *classifier*: a
    // VNH-rewritten (viewer, prefix) pair whose best route moves to a
    // *different announcer* when that announcer offers the shortest
    // possible AS path. Merely improving the incumbent's attributes
    // would leave every FEC key — and hence the whole table — unchanged
    // (an empty patch would be correct); the best *participant* has to
    // flip for the classifier to depend on the update. Scan rewritten
    // pairs until a 1-hop announce from a non-incumbent wins.
    let rewritten: Vec<_> = before.vnh_of.keys().copied().collect();
    let cfgs: Vec<_> = ctl.compiler.participants().values().cloned().collect();
    let mut changed = false;
    'scan: for (viewer, p) in rewritten {
        let incumbent = ctl.rs.best_for(viewer, p).map(|r| r.source.participant);
        for cfg in &cfgs {
            if Some(cfg.id) == incumbent || cfg.id == viewer {
                continue;
            }
            let update = cfg.announce([p], &[cfg.asn.0]);
            let delta = ctl
                .process_update(cfg.id, &update, &mut fabric)
                .expect("fast path");
            let now = ctl.rs.best_for(viewer, p).map(|r| r.source.participant);
            if now != incumbent && !delta.rules.is_empty() {
                changed = true;
                break 'scan;
            }
        }
    }
    assert!(
        changed,
        "fixture: some 1-hop announce must flip a policy-relevant best route"
    );

    ctl.telemetry.journal().clear();
    ctl.reoptimize(&mut fabric).expect("reoptimize");

    let touched = journaled_flowmods(&ctl);
    assert!(touched > 0, "a best-route change must patch something");
    assert!(
        touched * 20 < total_rules,
        "single-prefix churn cost {touched} flow mods — not under 5% of {total_rules} rules"
    );

    // Unchanged FEC groups keep their exact VNH and VMAC, and they are
    // the overwhelming majority.
    let after = ctl.report.as_ref().expect("report");
    let total_after: usize = after.groups.values().map(Vec::len).sum();
    let mut survivors = 0usize;
    for g in after.groups.values().flatten() {
        if let Some(&(vnh, vmac)) =
            old_groups.get(&(g.viewer, g.prefixes.clone(), g.default_next_hop))
        {
            assert_eq!(
                (g.vnh, g.vmac),
                (vnh, vmac),
                "an unchanged FEC group moved its VNH/VMAC"
            );
            survivors += 1;
        }
    }
    assert!(
        survivors * 10 >= total_after * 9,
        "single-prefix churn should leave ≥90% of groups identical ({survivors}/{total_after})"
    );
}
