//! Shard-invariance property tests: on random exchanges from
//! [`sdx_oracle::synth`], a sharded compile — any shard count, any mode —
//! must produce *the same fabric* as the unsharded pipeline.
//!
//! "The same" is checked rule-for-rule after canonical relabeling
//! ([`canonicalize_report`]): the one observable difference sharding is
//! allowed to introduce is VNH id numbering (fresh ids draw from disjoint
//! per-shard sub-ranges), and the relabeling quotients exactly that away
//! — ids renumbered 1..N in (viewer, group-position) order, VNH addresses
//! and VMACs rewritten to follow, in the classifier's matches and action
//! mods included. Anything else that differs — rule order, group
//! membership, group count, ARP bindings, the route server's VNH rewrite
//! map — is a real divergence and fails the test.
//!
//! Counts (groups, classifier rules) are additionally compared raw,
//! before canonicalization, so a relabeling bug cannot mask a size skew.

use proptest::prelude::*;
use sdx::core::compiler::CompileReport;
use sdx::core::{canonicalize_report, SdxCompiler, Sharding, VnhAllocator};
use sdx_oracle::synth;

/// Compiles the seed's exchange under `sharding` on a fresh allocator.
fn compile_with(seed: u64, sharding: Sharding) -> (SdxCompiler, CompileReport) {
    let mut ex = synth::exchange(seed);
    ex.compiler.options.sharding = sharding;
    let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
    let report = ex
        .compiler
        .compile_all(&ex.rs, &mut vnh)
        .unwrap_or_else(|e| panic!("seed {seed} failed to compile under {sharding:?}: {e:?}"));
    (ex.compiler, report)
}

fn assert_equivalent(seed: u64, sharding: Sharding, base: &CompileReport, sharded: &CompileReport) {
    let what = format!("seed {seed} under {sharding:?}");
    // Raw counts first: sizes must match before any relabeling.
    assert_eq!(
        sharded.classifier.rules().len(),
        base.classifier.rules().len(),
        "{what}: classifier size differs"
    );
    let group_count = |r: &CompileReport| -> usize { r.groups.values().map(Vec::len).sum() };
    assert_eq!(
        group_count(sharded),
        group_count(base),
        "{what}: total group count differs"
    );
    for (viewer, groups) in &base.groups {
        assert_eq!(
            sharded.groups.get(viewer).map_or(0, Vec::len),
            groups.len(),
            "{what}: group count for viewer {viewer} differs"
        );
    }
    // Then full rule-for-rule identity modulo VNH id renumbering.
    let pool = VnhAllocator::default_pool();
    let a = canonicalize_report(sharded, pool);
    let b = canonicalize_report(base, pool);
    assert_eq!(a.classifier, b.classifier, "{what}: classifier differs");
    assert_eq!(a.groups, b.groups, "{what}: FEC groups differ");
    assert_eq!(
        a.arp_bindings, b.arp_bindings,
        "{what}: ARP bindings differ"
    );
    assert_eq!(a.vnh_of, b.vnh_of, "{what}: VNH rewrite map differs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Off ≡ Shards(2) ≡ Shards(8) ≡ Auto on arbitrary exchanges.
    #[test]
    fn sharded_compile_is_invariant_under_shard_count(seed in 0u64..1_000_000) {
        let (_c, base) = compile_with(seed, Sharding::Off);
        for sharding in [Sharding::Shards(2), Sharding::Shards(8), Sharding::Auto] {
            let (_c, sharded) = compile_with(seed, sharding);
            assert_equivalent(seed, sharding, &base, &sharded);
        }
    }

    /// A second sharded compile of the *same* compiler (warm shard cache,
    /// nothing dirty) serves every unit from cache and still matches the
    /// unsharded baseline — the cache cannot go stale silently.
    #[test]
    fn warm_cache_recompile_is_still_invariant(seed in 0u64..1_000_000) {
        let (_c, base) = compile_with(seed, Sharding::Off);
        let mut ex = synth::exchange(seed);
        ex.compiler.options.sharding = Sharding::Shards(4);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        ex.compiler.compile_all(&ex.rs, &mut vnh).expect("cold compile");
        let warm = ex.compiler.compile_all(&ex.rs, &mut vnh).expect("warm compile");
        assert_equivalent(seed, Sharding::Shards(4), &base, &warm);
    }
}
