//! Integration tests for the virtual-switch isolation guarantees (§3.1):
//! "AS A cannot influence how ASes B and C forward packets on their own
//! virtual switches", plus the two BGP invariants of §4.1 that prevent
//! forwarding loops between edge routers.

use sdx::core::controller::SdxController;
use sdx::core::transform::TransformError;
use sdx::ixp::testkit;
use sdx::net::{ip, prefix, FieldMatch, Packet, ParticipantId, PortId};
use sdx::policy::{Policy as P, Pred};
use sdx::SdxError;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// The shared A/B/C exchange (11/8, 22/8, 33/8 — one port each, exports
/// open); each test installs its own adversarial policies on top.
fn base_exchange() -> SdxController {
    testkit::three_party_exchange()
}

#[test]
fn outbound_policy_cannot_touch_other_senders_traffic() {
    // A installs an aggressive catch-all policy; B's traffic must still
    // follow B's own defaults, untouched.
    let mut ctl = base_exchange();
    ctl.set_outbound(
        pid(1),
        Some(P::filter(Pred::Any) >> P::fwd(PortId::Virt(pid(3)))),
    );
    let mut fabric = ctl.deploy().expect("deploy");
    // B sends to A's prefix: must reach A (B's default), NOT C.
    let out = fabric.send(
        PortId::Phys(pid(2), 1),
        Packet::tcp(ip("22.0.0.1"), ip("11.0.0.1"), 40_000, 80),
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].loc.participant(), pid(1));
}

#[test]
fn matching_on_foreign_ports_is_rejected_at_install() {
    let mut ctl = base_exchange();
    // A tries to write a policy that matches traffic at B's physical port.
    ctl.set_outbound(
        pid(1),
        Some(
            P::match_(FieldMatch::InPort(PortId::Phys(pid(2), 1))) >> P::fwd(PortId::Virt(pid(3))),
        ),
    );
    let err = ctl.deploy().expect_err("isolation violation");
    assert!(
        matches!(err, SdxError::Transform(TransformError::MatchOutsideSwitch(p, _)) if p == pid(1))
    );
}

#[test]
fn inbound_policy_cannot_hijack_to_peer_switch() {
    let mut ctl = base_exchange();
    // B tries to bounce its inbound traffic to C's virtual switch.
    ctl.set_inbound(pid(2), Some(P::fwd(PortId::Virt(pid(3)))));
    let err = ctl.deploy().expect_err("isolation violation");
    assert!(
        matches!(err, SdxError::Transform(TransformError::InboundEscapesSwitch(p, _)) if p == pid(2))
    );
}

#[test]
fn never_forward_to_a_nonexporting_neighbor() {
    // §4.1 invariant 1: "a participant router can only receive traffic
    // destined to an IP prefix for which it has announced a corresponding
    // BGP route."
    let mut ctl = base_exchange();
    // A's policy explicitly tries to shove 33/8 traffic at B — but B never
    // announced 33/8, so the consistency filter erases the clause.
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::NwDst(prefix("33.0.0.0/8"))) >> P::fwd(PortId::Virt(pid(2)))),
    );
    let mut fabric = ctl.deploy().expect("deploy");
    let out = fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("11.0.0.1"), ip("33.0.0.1"), 40_000, 80),
    );
    assert_eq!(out.len(), 1);
    assert_eq!(
        out[0].loc.participant(),
        pid(3),
        "traffic must go to the real announcer, not B"
    );
}

#[test]
fn announcers_own_traffic_never_returns_to_fabric() {
    // §4.1 invariant 2: a router announcing p never forwards p's traffic
    // back into the fabric — the route server never reflects a
    // participant's own route back to it, so its FIB has no SDX entry.
    let mut ctl = base_exchange();
    let mut fabric = ctl.deploy().expect("deploy");
    let out = fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip("11.0.0.5"), 40_000, 80),
    );
    assert!(
        out.is_empty(),
        "A's own prefix has no route at A's router: {out:?}"
    );
    assert_eq!(
        fabric
            .router(PortId::Phys(pid(1), 1))
            .expect("router")
            .no_route_drops,
        1
    );
}

#[test]
fn policy_bearing_exchange_stays_loop_free() {
    // Every policy combination in a small exchange: probe the full
    // (src, dst, port) product and assert single delivery at a physical
    // port, never back to the sender.
    let mut ctl = base_exchange();
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
    );
    ctl.set_outbound(
        pid(2),
        Some(P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(pid(3)))),
    );
    ctl.set_inbound(
        pid(3),
        Some(P::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1"))) >> P::fwd(PortId::Phys(pid(3), 1))),
    );
    let mut fabric = ctl.deploy().expect("deploy");
    for (sender, dst) in [
        (1u32, "22.0.0.1"),
        (1, "33.0.0.1"),
        (2, "11.0.0.1"),
        (2, "33.0.0.1"),
        (3, "11.0.0.1"),
        (3, "22.0.0.1"),
    ] {
        for port in [80u16, 443, 22] {
            let out = fabric.send(
                PortId::Phys(pid(sender), 1),
                Packet::tcp(ip("9.9.9.9"), ip(dst), 40_000, port),
            );
            assert!(out.len() <= 1, "unicast only");
            for d in &out {
                assert!(d.loc.is_physical());
                assert_ne!(d.loc.participant(), pid(sender), "loop to sender");
            }
        }
    }
    assert_eq!(fabric.stuck_at_virtual, 0);
}
