//! Determinism tests for the parallel compile pipeline (DESIGN.md §11):
//! `Parallelism::Threads(4)` — and the index-acceleration ablation — must
//! produce a **byte-identical** `CompileReport` to `Parallelism::Serial`:
//! same classifier rules in the same order, same FEC groups, same VNH map,
//! same ARP bindings. Checked on the paper's Figure 1 exchange and on a
//! 50-participant `sdx-ixp` workload.

use std::collections::BTreeMap;

use sdx::bgp::route_server::{ExportPolicy, RouteServer};
use sdx::core::compiler::{CompileReport, Parallelism, SdxCompiler};
use sdx::core::participant::ParticipantConfig;
use sdx::core::vnh::VnhAllocator;
use sdx::core::vswitch;
use sdx::ixp::policy_workload::{assign_policies, PolicyWorkloadParams};
use sdx::ixp::topology::{build, TopologyParams};
use sdx::net::{prefix, ParticipantId};
use sdx::policy::parse_policy;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

fn compile_with(
    compiler: &mut SdxCompiler,
    rs: &RouteServer,
    parallelism: Parallelism,
    index_acceleration: bool,
) -> CompileReport {
    compiler.options.parallelism = parallelism;
    compiler.options.index_acceleration = index_acceleration;
    // Cold memo per run so every variant does identical work.
    compiler.clear_memo();
    let mut vnh = VnhAllocator::default();
    compiler.compile_all(rs, &mut vnh).expect("compiles")
}

/// Full structural equality, field by field. `stats` carries wall-clock
/// timings and is deliberately excluded.
fn assert_reports_identical(a: &CompileReport, b: &CompileReport, what: &str) {
    assert_eq!(
        a.classifier.rules(),
        b.classifier.rules(),
        "{what}: classifier rules differ"
    );
    assert_eq!(a.groups, b.groups, "{what}: FEC groups differ");
    assert_eq!(
        a.arp_bindings, b.arp_bindings,
        "{what}: ARP bindings differ"
    );
    assert_eq!(a.vnh_of, b.vnh_of, "{what}: VNH map differs");
    assert_eq!(
        a.stats.group_count, b.stats.group_count,
        "{what}: group counts differ"
    );
    assert_eq!(
        a.stats.rule_count, b.stats.rule_count,
        "{what}: rule counts differ"
    );
}

fn check_all_variants(compiler: &mut SdxCompiler, rs: &RouteServer, scale: &str) {
    let serial = compile_with(compiler, rs, Parallelism::Serial, true);
    for threads in [2usize, 4, 8] {
        let parallel = compile_with(compiler, rs, Parallelism::Threads(threads), true);
        assert_reports_identical(
            &parallel,
            &serial,
            &format!("{scale}: threads({threads}) vs serial"),
        );
    }
    let auto = compile_with(compiler, rs, Parallelism::Auto, true);
    assert_reports_identical(&auto, &serial, &format!("{scale}: auto vs serial"));
    // The scan ablation (no inverted index, no decision cache) must also
    // reproduce the exact same report — it only changes *how* the BGP
    // joins are answered, never the answers.
    let scanned = compile_with(compiler, rs, Parallelism::Serial, false);
    assert_reports_identical(&scanned, &serial, &format!("{scale}: scan vs indexed"));
    let parallel_scanned = compile_with(compiler, rs, Parallelism::Threads(4), false);
    assert_reports_identical(
        &parallel_scanned,
        &serial,
        &format!("{scale}: threads(4)+scan vs serial"),
    );
}

/// The Figure 1 exchange from the paper: small, but exercises outbound +
/// inbound policies, hidden exports, and policy-free participants.
fn figure1() -> (SdxCompiler, RouteServer) {
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);

    let book: BTreeMap<ParticipantId, Vec<u8>> = [
        (pid(1), vec![1]),
        (pid(2), vec![1, 2]),
        (pid(3), vec![1]),
        (pid(4), vec![1]),
    ]
    .into();
    let a_pol = parse_policy(
        "(match(dstport = 80) >> fwd(B)) + (match(dstport = 443) >> fwd(C))",
        &vswitch::resolver_for(pid(1), &book),
    )
    .expect("A's policy");
    let b_pol = parse_policy(
        "(match(srcip = {0.0.0.0/1}) >> fwd(B1)) + (match(srcip = {128.0.0.0/1}) >> fwd(B2))",
        &vswitch::resolver_for(pid(2), &book),
    )
    .expect("B's policy");

    let mut rs = RouteServer::new();
    rs.add_peer(a.route_source(), ExportPolicy::allow_all());
    let mut b_export = ExportPolicy::allow_all();
    b_export.deny(pid(1), prefix("40.0.0.0/8"));
    rs.add_peer(b.route_source(), b_export);
    rs.add_peer(c.route_source(), ExportPolicy::allow_all());
    rs.add_peer(d.route_source(), ExportPolicy::allow_all());
    for (pfx, path) in [
        ("10.0.0.0/8", vec![65002, 100, 200]),
        ("20.0.0.0/8", vec![65002, 100, 200]),
        ("30.0.0.0/8", vec![65002, 300]),
        ("40.0.0.0/8", vec![65002, 400]),
    ] {
        rs.process_update(pid(2), &b.announce([prefix(pfx)], &path));
    }
    for (pfx, path) in [
        ("10.0.0.0/8", vec![65003, 200]),
        ("20.0.0.0/8", vec![65003, 200]),
        ("40.0.0.0/8", vec![65003, 400]),
    ] {
        rs.process_update(pid(3), &c.announce([prefix(pfx)], &path));
    }
    rs.process_update(pid(4), &d.announce([prefix("50.0.0.0/8")], &[65004, 500]));

    let mut compiler = SdxCompiler::new();
    compiler.upsert_participant(a.with_outbound(a_pol));
    compiler.upsert_participant(b.with_inbound(b_pol));
    compiler.upsert_participant(c);
    compiler.upsert_participant(d);
    (compiler, rs)
}

#[test]
fn figure1_parallel_report_is_byte_identical_to_serial() {
    let (mut compiler, rs) = figure1();
    check_all_variants(&mut compiler, &rs, "figure1");
}

#[test]
fn fifty_participant_workload_parallel_report_is_byte_identical_to_serial() {
    let mut ixp = build(&TopologyParams {
        participants: 50,
        prefixes: 3000,
        seed: 17,
        ..Default::default()
    });
    assign_policies(
        &mut ixp,
        &PolicyWorkloadParams {
            policy_prefixes: 800,
            seed: 18,
            ..Default::default()
        },
    );
    let rs = ixp.route_server();
    let mut compiler = SdxCompiler::new();
    for p in &ixp.participants {
        compiler.upsert_participant(p.clone());
    }
    check_all_variants(&mut compiler, &rs, "ixp-50");
}
