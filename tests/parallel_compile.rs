//! Determinism tests for the parallel compile pipeline (DESIGN.md §11):
//! `Parallelism::Threads(4)` — and the index-acceleration ablation — must
//! produce a **byte-identical** `CompileReport` to `Parallelism::Serial`:
//! same classifier rules in the same order, same FEC groups, same VNH map,
//! same ARP bindings. Checked on the paper's Figure 1 exchange and on a
//! 50-participant `sdx-ixp` workload.

use sdx::bgp::route_server::RouteServer;
use sdx::core::compiler::{CompileReport, Parallelism, SdxCompiler};
use sdx::core::vnh::VnhAllocator;
use sdx::ixp::testkit;

fn compile_with(
    compiler: &mut SdxCompiler,
    rs: &RouteServer,
    parallelism: Parallelism,
    index_acceleration: bool,
) -> CompileReport {
    compiler.options.parallelism = parallelism;
    compiler.options.index_acceleration = index_acceleration;
    // Cold memo per run so every variant does identical work.
    compiler.clear_memo();
    let mut vnh = VnhAllocator::default();
    compiler.compile_all(rs, &mut vnh).expect("compiles")
}

/// Full structural equality, field by field. `stats` carries wall-clock
/// timings and is deliberately excluded.
fn assert_reports_identical(a: &CompileReport, b: &CompileReport, what: &str) {
    assert_eq!(
        a.classifier.rules(),
        b.classifier.rules(),
        "{what}: classifier rules differ"
    );
    assert_eq!(a.groups, b.groups, "{what}: FEC groups differ");
    assert_eq!(
        a.arp_bindings, b.arp_bindings,
        "{what}: ARP bindings differ"
    );
    assert_eq!(a.vnh_of, b.vnh_of, "{what}: VNH map differs");
    assert_eq!(
        a.stats.group_count, b.stats.group_count,
        "{what}: group counts differ"
    );
    assert_eq!(
        a.stats.rule_count, b.stats.rule_count,
        "{what}: rule counts differ"
    );
}

fn check_all_variants(compiler: &mut SdxCompiler, rs: &RouteServer, scale: &str) {
    let serial = compile_with(compiler, rs, Parallelism::Serial, true);
    for threads in [2usize, 4, 8] {
        let parallel = compile_with(compiler, rs, Parallelism::Threads(threads), true);
        assert_reports_identical(
            &parallel,
            &serial,
            &format!("{scale}: threads({threads}) vs serial"),
        );
    }
    let auto = compile_with(compiler, rs, Parallelism::Auto, true);
    assert_reports_identical(&auto, &serial, &format!("{scale}: auto vs serial"));
    // The scan ablation (no inverted index, no decision cache) must also
    // reproduce the exact same report — it only changes *how* the BGP
    // joins are answered, never the answers.
    let scanned = compile_with(compiler, rs, Parallelism::Serial, false);
    assert_reports_identical(&scanned, &serial, &format!("{scale}: scan vs indexed"));
    let parallel_scanned = compile_with(compiler, rs, Parallelism::Threads(4), false);
    assert_reports_identical(
        &parallel_scanned,
        &serial,
        &format!("{scale}: threads(4)+scan vs serial"),
    );
}

#[test]
fn figure1_parallel_report_is_byte_identical_to_serial() {
    // The Figure 1 exchange from the paper: small, but exercises outbound
    // + inbound policies, hidden exports, and policy-free participants.
    let (mut compiler, rs) = testkit::figure1_compiler();
    check_all_variants(&mut compiler, &rs, "figure1");
}

#[test]
fn fifty_participant_workload_parallel_report_is_byte_identical_to_serial() {
    let (mut compiler, rs) = testkit::ixp50();
    check_all_variants(&mut compiler, &rs, "ixp-50");
}
