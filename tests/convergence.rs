//! Integration test: fast-path (§4.3.2) vs. full recompilation.
//!
//! The two-stage scheme is only sound if the fast path's overlay produces
//! the *same forwarding behaviour* the background re-optimization later
//! installs. This test replays randomized BGP churn against a policy-
//! bearing exchange and differentially probes the data plane after every
//! event: overlay state vs. freshly re-optimized state must agree packet
//! for packet.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx::bgp::msg::UpdateMessage;
use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{prefix, FieldMatch, Ipv4Addr, Packet, ParticipantId, PortId, Prefix};
use sdx::policy::Policy as P;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

struct Rig {
    ctl: SdxController,
    fabric: sdx::openflow::fabric::Fabric,
    prefixes: Vec<Prefix>,
    configs: Vec<ParticipantConfig>,
}

fn build_rig(seed: u64) -> Rig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctl = SdxController::new();
    let n = 6u32;
    let mut configs = Vec::new();
    for i in 1..=n {
        let cfg = ParticipantConfig::new(i, 65000 + i, 1);
        ctl.add_participant(cfg.clone(), ExportPolicy::allow_all());
        configs.push(cfg);
    }
    // Everyone announces a few prefixes; some prefixes multi-announced.
    let mut prefixes = Vec::new();
    for i in 0..18u32 {
        let p = prefix(&format!("{}.0.0.0/8", 10 + i));
        prefixes.push(p);
        let origin = (i % n) + 1;
        ctl.rs.process_update(
            pid(origin),
            &configs[origin as usize - 1].announce([p], &[65000 + origin, 900 + i]),
        );
        if rng.gen_bool(0.5) {
            let second = (origin % n) + 1;
            ctl.rs.process_update(
                pid(second),
                &configs[second as usize - 1].announce([p], &[65000 + second, 777, 900 + i]),
            );
        }
    }
    // A couple of policies.
    ctl.set_outbound(
        pid(1),
        Some(
            (P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2))))
                + (P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(pid(3)))),
        ),
    );
    ctl.set_outbound(
        pid(4),
        Some(P::match_(FieldMatch::TpDst(53)) >> P::fwd(PortId::Virt(pid(5)))),
    );
    ctl.set_inbound(
        pid(2),
        Some(P::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1"))) >> P::fwd(PortId::Phys(pid(2), 1))),
    );
    let fabric = ctl.deploy().expect("deploy");
    Rig {
        ctl,
        fabric,
        prefixes,
        configs,
    }
}

/// Probes every (sender, dst prefix, port) combination; returns a
/// canonical behaviour fingerprint.
fn fingerprint(rig: &mut Rig) -> Vec<String> {
    let mut out = Vec::new();
    for sender in 1..=6u32 {
        for p in rig.prefixes.clone() {
            for port in [80u16, 443, 53, 22] {
                let delivered = rig.fabric.send(
                    PortId::Phys(pid(sender), 1),
                    Packet::tcp(
                        Ipv4Addr::new(200, sender as u8, 0, 1),
                        p.addr().saturating_add(7),
                        40_000,
                        port,
                    ),
                );
                let mut locs: Vec<String> =
                    delivered.iter().map(|d| format!("{}", d.loc)).collect();
                locs.sort();
                out.push(format!("{sender}|{p}|{port}=>{}", locs.join(",")));
            }
        }
    }
    out
}

#[test]
fn fast_path_agrees_with_full_recompilation() {
    let mut rig = build_rig(1);
    let mut rng = StdRng::seed_from_u64(2);

    for round in 0..12 {
        // A random churn event: withdraw or (re-)announce a random prefix.
        let p = *rig.prefixes.choose(&mut rng).expect("prefixes");
        let who = rng.gen_range(1..=6u32);
        let update = if rng.gen_bool(0.4) {
            UpdateMessage::withdraw([p])
        } else {
            rig.configs[who as usize - 1].announce([p], &[65000 + who, rng.gen_range(1000..2000)])
        };
        rig.ctl
            .process_update(pid(who), &update, &mut rig.fabric)
            .expect("fast path");
        let overlay_view = fingerprint(&mut rig);

        // Background re-optimization must not change behaviour.
        rig.ctl.reoptimize(&mut rig.fabric).expect("reoptimize");
        let optimized_view = fingerprint(&mut rig);
        assert_eq!(
            overlay_view, optimized_view,
            "fast path diverged from recompilation at round {round}"
        );
        assert_eq!(rig.fabric.stuck_at_virtual, 0);
    }
}

#[test]
fn overlays_accumulate_then_retire() {
    let mut rig = build_rig(3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut had_delta = false;
    for _ in 0..6 {
        let p = *rig.prefixes.choose(&mut rng).expect("prefixes");
        let who = rng.gen_range(1..=6u32);
        let delta = rig
            .ctl
            .process_update(
                pid(who),
                &rig.configs[who as usize - 1].announce([p], &[65000 + who, 1234]),
                &mut rig.fabric,
            )
            .expect("fast path");
        had_delta |= !delta.rules.is_empty();
    }
    assert!(had_delta, "some event must produce delta rules");
    assert!(rig.ctl.delta_layers() > 0);
    rig.ctl.reoptimize(&mut rig.fabric).expect("reoptimize");
    assert_eq!(rig.ctl.delta_layers(), 0, "overlays retired");
}

#[test]
fn churn_replay_journals_update_delta_reoptimize_retire() {
    let mut rig = build_rig(3);
    let mut rng = StdRng::seed_from_u64(4);
    rig.ctl.telemetry.journal().clear();
    for _ in 0..6 {
        let p = *rig.prefixes.choose(&mut rng).expect("prefixes");
        let who = rng.gen_range(1..=6u32);
        rig.ctl
            .process_update(
                pid(who),
                &rig.configs[who as usize - 1].announce([p], &[65000 + who, 1234]),
                &mut rig.fabric,
            )
            .expect("fast path");
    }
    assert!(rig.ctl.delta_layers() > 0, "churn must stack overlays");
    rig.ctl.reoptimize(&mut rig.fabric).expect("reoptimize");

    // The journal must tell the §4.3.2 story in order: updates arrive,
    // deltas overlay the fabric, re-optimization retires the overlays and
    // completes.
    let kinds = rig.ctl.telemetry.journal().kinds();
    let mut expect = vec![
        "update_received",
        "delta_applied",
        "overlays_retired",
        "reoptimize_completed",
    ]
    .into_iter();
    let mut next = expect.next();
    for k in &kinds {
        if Some(*k) == next {
            next = expect.next();
        }
    }
    assert!(
        next.is_none(),
        "journal {kinds:?} missing expected subsequence (stopped at {next:?})"
    );
    // The retire event precedes completion and the layer gauge is back
    // to zero.
    assert_eq!(
        rig.ctl.telemetry.snapshot().gauges["controller.delta_layers"],
        0
    );
}

#[test]
fn session_reset_churn_recovers() {
    let mut rig = build_rig(5);
    // Reset participant 2's session: all its routes vanish; the fabric
    // must converge (no stuck traffic) and recover on re-announcement.
    let events = rig.ctl.rs.reset_session(pid(2));
    assert!(!events.is_empty());
    rig.ctl.reoptimize(&mut rig.fabric).expect("recompile");
    let view_without = fingerprint(&mut rig);
    assert!(
        view_without.iter().all(|s| !s.contains("=>P2")),
        "no traffic may reach the reset participant"
    );
    // Re-announce and verify traffic can return.
    for (i, p) in rig.prefixes.clone().iter().enumerate() {
        if i % 6 == 1 {
            let cfg = rig.configs[1].clone();
            rig.ctl
                .process_update(pid(2), &cfg.announce([*p], &[65002, 900]), &mut rig.fabric)
                .expect("fast path");
        }
    }
    let view_after = fingerprint(&mut rig);
    assert!(
        view_after.iter().any(|s| s.contains("=>P2")),
        "traffic flows to participant 2 again"
    );
}
