//! End-to-end session supervision: a supervised peer that flaps repeatedly
//! is damped — the controller recompiles O(1) times, not once per flap —
//! and its routes are reinstated automatically once the penalty decays.

use sdx::bgp::msg::{BgpMessage, NotificationCode, OpenMessage};
use sdx::bgp::route_server::ExportPolicy;
use sdx::bgp::session::SessionState;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{ip, prefix, Asn, Packet, ParticipantId, PortId, RouterId};
use sdx::openflow::fabric::Fabric;
use sdx::{Supervisor, SupervisorConfig, SupervisorOutput};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

fn open(asn: u32, hold: u16) -> OpenMessage {
    OpenMessage {
        version: 4,
        asn: Asn(asn),
        hold_time: hold,
        router_id: RouterId(asn),
    }
}

/// Applies a supervision step to the fabric; returns 1 if it cost a
/// recompilation (the fast path ran), 0 if it was absorbed.
fn apply(ctl: &mut SdxController, fabric: &mut Fabric, out: &SupervisorOutput) -> u32 {
    if out.changed_prefixes.is_empty() {
        return 0;
    }
    ctl.apply_changed_prefixes(&out.changed_prefixes, fabric)
        .expect("replay");
    1
}

fn probe(fabric: &mut Fabric, dst: &str) -> Vec<sdx::openflow::fabric::Delivery> {
    fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip(dst), 40_000, 80),
    )
}

/// Walks B's supervised session to Established by playing B's half.
fn establish_b(sup: &mut Supervisor, ctl: &mut SdxController, now: u64) {
    let mut t = sup.tick(now, &mut ctl.rs);
    while !t.send.iter().any(|(_, m)| matches!(m, BgpMessage::Open(_))) {
        t = sup.tick(now, &mut ctl.rs);
    }
    sup.handle_message(now, pid(2), BgpMessage::Open(open(65002, 90)), &mut ctl.rs);
    sup.handle_message(now, pid(2), BgpMessage::Keepalive, &mut ctl.rs);
    assert_eq!(
        sup.session(pid(2)).unwrap().state(),
        SessionState::Established
    );
}

#[test]
fn flapping_peer_costs_constant_recompilations_and_routes_return() {
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    let mut fabric = ctl.deploy().expect("deploy");

    let cfg = SupervisorConfig {
        reconnect_base_ms: 10,
        reconnect_max_ms: 200,
        flap_penalty: 1_000.0,
        suppress_threshold: 1_500.0,
        reuse_threshold: 750.0,
        half_life_ms: 10_000,
    };
    let mut sup = Supervisor::new(cfg, 42);
    sup.add_peer(pid(2), open(64999, 90), 0);
    establish_b(&mut sup, &mut ctl, 0);

    // B announces 20/8 through its supervised session; the change flows
    // through the fast path and traffic starts forwarding.
    let announce = BgpMessage::Update(b.announce([prefix("20.0.0.0/8")], &[65002]));
    let out = sup.handle_message(5, pid(2), announce.clone(), &mut ctl.rs);
    assert_eq!(apply(&mut ctl, &mut fabric, &out), 1);
    assert_eq!(probe(&mut fabric, "20.0.0.1")[0].loc.participant(), pid(2));

    // Now B flaps 8 times well inside the penalty half-life: notification,
    // backoff, reconnect, re-announce — a recompilation storm if undamped.
    let mut recompiles = 0;
    let mut now = 10;
    for _ in 0..8 {
        let out = sup.handle_message(
            now,
            pid(2),
            BgpMessage::Notification {
                code: NotificationCode::Cease,
                subcode: 0,
            },
            &mut ctl.rs,
        );
        recompiles += apply(&mut ctl, &mut fabric, &out);
        now += 300; // past the (capped, jittered) backoff
        let mut t = sup.tick(now, &mut ctl.rs);
        recompiles += apply(&mut ctl, &mut fabric, &t);
        while !t.send.iter().any(|(_, m)| matches!(m, BgpMessage::Open(_))) {
            now += 300;
            t = sup.tick(now, &mut ctl.rs);
            recompiles += apply(&mut ctl, &mut fabric, &t);
        }
        sup.handle_message(now, pid(2), BgpMessage::Open(open(65002, 90)), &mut ctl.rs);
        sup.handle_message(now, pid(2), BgpMessage::Keepalive, &mut ctl.rs);
        let out = sup.handle_message(now, pid(2), announce.clone(), &mut ctl.rs);
        recompiles += apply(&mut ctl, &mut fabric, &out);
        now += 10;
    }

    assert!(sup.is_suppressed(pid(2)), "rapid flapping must suppress B");
    assert!(
        recompiles <= 3,
        "8 flaps must cost O(1) recompilations, got {recompiles}"
    );
    // While suppressed the fabric holds B's routes out: withdrawn.
    assert!(
        probe(&mut fabric, "20.0.0.1").is_empty(),
        "suppressed peer's routes must not be installed"
    );

    // Long after the last flap the penalty has halved below the reuse
    // threshold: one batched recompilation reinstates the route.
    now += 60_000;
    let out = sup.tick(now, &mut ctl.rs);
    assert!(!sup.is_suppressed(pid(2)));
    assert_eq!(out.changed_prefixes, vec![prefix("20.0.0.0/8")]);
    assert_eq!(apply(&mut ctl, &mut fabric, &out), 1);
    assert_eq!(
        probe(&mut fabric, "20.0.0.1")[0].loc.participant(),
        pid(2),
        "damped route must be reinstated after the penalty decays"
    );
}
