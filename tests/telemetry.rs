//! Integration tests for the `sdx-telemetry` subsystem as wired through
//! the controller stack: stage timers on the hot paths, lifecycle events
//! in the journal, traffic counters in the fabric, and machine-readable
//! snapshots.

use sdx::bgp::msg::{BgpMessage, NotificationCode, OpenMessage};
use sdx::bgp::rib::RouteSource;
use sdx::bgp::route_server::{ExportPolicy, RouteServer};
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{ip, prefix, Asn, FieldMatch, ParticipantId, PortId, RouterId};
use sdx::policy::Policy as P;
use sdx::telemetry::Json;
use sdx::{FaultPlan, InjectionPoint, Supervisor, SupervisorConfig};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// A three-participant exchange: A and B announce the same prefix, C
/// hosts the client and carries an outbound policy.
fn small_exchange() -> (SdxController, sdx::openflow::fabric::Fabric) {
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1)
        .with_outbound(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2))));
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c, ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(1), &a.announce([prefix("54.0.0.0/8")], &[65001, 7]));
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("54.0.0.0/8")], &[65002, 9, 7]));
    let fabric = ctl.deploy().expect("deploy");
    (ctl, fabric)
}

/// Asserts `want` appears as an in-order subsequence of `got`.
fn assert_subsequence(got: &[&'static str], want: &[&str]) {
    let mut it = got.iter();
    for w in want {
        assert!(
            it.any(|g| g == w),
            "journal {got:?} is missing \"{w}\" (in order {want:?})"
        );
    }
}

#[test]
fn deploy_and_fast_path_record_stage_timings() {
    let (mut ctl, mut fabric) = small_exchange();
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.process_update(
        pid(2),
        &b.announce([prefix("74.125.0.0/16")], &[65002, 15169]),
        &mut fabric,
    )
    .expect("fast path");
    ctl.reoptimize(&mut fabric).expect("reoptimize");

    let snap = ctl.telemetry.snapshot();
    // Every hot stage observed at least once, in nanosecond histograms.
    for key in [
        "compile.total",
        "compile.fec",
        "compile.compose",
        "compile.classifiers",
        "fastpath.total",
        "fastpath.apply",
        "fastpath.update",
        "reoptimize.total",
        "txn.validate",
    ] {
        let h = snap
            .histograms
            .get(key)
            .unwrap_or_else(|| panic!("missing stage histogram {key}"));
        assert!(h.count > 0, "{key} never observed");
        assert!(h.p50 <= h.p99, "{key} quantiles out of order");
    }
    assert!(snap.counters["controller.update.count"] >= 1);
    assert!(snap.counters["compile.count"] >= 2, "deploy + reoptimize");
    assert!(snap.counters["vnh.alloc.count"] >= 1);
    // After reoptimize all overlays are retired.
    assert_eq!(snap.gauges["controller.delta_layers"], 0);
    assert!(snap.gauges["fabric.rules"] > 0);
}

#[test]
fn controller_journal_orders_lifecycle_events() {
    let (mut ctl, mut fabric) = small_exchange();
    ctl.telemetry.journal().clear();
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.process_update(
        pid(2),
        &b.announce([prefix("74.125.0.0/16")], &[65002, 15169]),
        &mut fabric,
    )
    .expect("fast path");
    ctl.reoptimize(&mut fabric).expect("reoptimize");
    assert_subsequence(
        &ctl.telemetry.journal().kinds(),
        &[
            "update_received",
            "delta_applied",
            "overlays_retired",
            "reoptimize_completed",
        ],
    );
}

#[test]
fn injected_fault_journals_rollback() {
    let (mut ctl, mut fabric) = small_exchange();
    ctl.telemetry.journal().clear();
    ctl.faults = FaultPlan::seeded(7).fail_nth(InjectionPoint::FabricCommit, 1);
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(pid(2)))),
    );
    let err = ctl.reoptimize(&mut fabric);
    assert!(err.is_err(), "armed fault must fail the commit");
    let snap = ctl.telemetry.snapshot();
    assert_subsequence(
        &ctl.telemetry.journal().kinds(),
        &["fault_injected", "txn_rolled_back"],
    );
    assert!(snap.counters["txn.rollback.count"] >= 1);
    assert!(snap.histograms["txn.rollback"].count >= 1);
}

#[test]
fn fabric_counts_traffic() {
    let (_ctl, mut fabric) = small_exchange();
    let before = fabric.telemetry().snapshot();
    let out = fabric.send(
        PortId::Phys(pid(3), 1),
        sdx::net::Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
    );
    assert!(!out.is_empty());
    let after = fabric.telemetry().snapshot();
    assert_eq!(
        after.counters["fabric.tx.count"],
        before.counters.get("fabric.tx.count").copied().unwrap_or(0) + 1
    );
    assert!(after.counters["fabric.delivered.count"] >= 1);
}

#[test]
fn route_server_times_decision_and_export() {
    let (ctl, _fabric) = small_exchange();
    let snap = ctl.rs.telemetry().snapshot();
    assert!(snap.counters["rs.update.count"] >= 2);
    assert!(snap.histograms["rs.decision"].count >= 2);
}

#[test]
fn supervisor_journals_session_lifecycle() {
    let reg = sdx::SharedRegistry::new();
    let mut rs = RouteServer::default();
    rs.add_peer(
        RouteSource {
            participant: pid(1),
            asn: Asn(65001),
            router_id: RouterId(1),
            peer_addr: ip("172.16.0.1"),
        },
        ExportPolicy::allow_all(),
    );
    let mut sup = Supervisor::new(SupervisorConfig::default(), 7).with_telemetry(reg.clone());
    let local = OpenMessage {
        version: 4,
        asn: Asn(65000),
        hold_time: 90,
        router_id: RouterId(99),
    };
    sup.add_peer(pid(1), local, 0);
    sup.tick(0, &mut rs);
    sup.handle_message(
        0,
        pid(1),
        BgpMessage::Open(OpenMessage {
            version: 4,
            asn: Asn(65001),
            hold_time: 90,
            router_id: RouterId(1),
        }),
        &mut rs,
    );
    sup.handle_message(0, pid(1), BgpMessage::Keepalive, &mut rs);
    sup.handle_message(
        10,
        pid(1),
        BgpMessage::Notification {
            code: NotificationCode::Cease,
            subcode: 0,
        },
        &mut rs,
    );
    assert_subsequence(
        &reg.journal().kinds(),
        &["session_established", "session_reset"],
    );
    let snap = reg.snapshot();
    assert_eq!(snap.counters["session.established.count"], 1);
    assert_eq!(snap.counters["session.reset.count"], 1);
}

#[test]
fn snapshot_serializes_to_parseable_json() {
    let (mut ctl, mut fabric) = small_exchange();
    ctl.reoptimize(&mut fabric).expect("reoptimize");
    let text = ctl.telemetry.snapshot().to_json_string();
    let doc = Json::parse(&text).expect("snapshot JSON parses");
    for section in ["counters", "gauges", "histograms", "events"] {
        assert!(doc.get(section).is_some(), "missing {section}");
    }
    let reparsed = sdx::MetricsSnapshot::default();
    // Sanity: the default snapshot also serializes and parses.
    Json::parse(&reparsed.to_json_string()).expect("default snapshot parses");
}

#[test]
fn compile_report_metrics_snapshot_agrees_with_stats() {
    let (mut ctl, _fabric) = small_exchange();
    let mut vnh = sdx::core::vnh::VnhAllocator::default();
    let report = ctl
        .compiler
        .compile_all(&ctl.rs, &mut vnh)
        .expect("compile");
    let snap = report.metrics_snapshot();
    assert_eq!(
        snap.counters["compile.rules.count"],
        report.stats.rule_count as u64
    );
    assert_eq!(
        snap.counters["compile.forwarding_rules.count"],
        report.stats.forwarding_rules as u64
    );
    assert_eq!(
        snap.counters["compile.groups.count"],
        report.stats.group_count as u64
    );
    assert_eq!(
        snap.histograms["compile.total"].max,
        u64::try_from(report.stats.total.as_nanos()).expect("fits")
    );
}
