//! Churn-replay equivalence through the sharded delta path.
//!
//! Two controllers receive the *identical* randomized event stream —
//! announces, withdrawals, export flips — burst by burst: one compiles
//! with [`Sharding::Shards`]`(8)` (so each reoptimize recompiles only the
//! shards the burst dirtied, against the warm shard cache), the other
//! stays unsharded and rebuilds from scratch every time. After every
//! burst the sharded controller's *patched* table must be
//!
//! 1. canonically report-identical to the from-scratch unsharded
//!    compile of the same world, and
//! 2. oracle-equivalent to the spec interpreter over its deployed flow
//!    table (patch history and all).
//!
//! A final idle reoptimize must touch zero shards: every unit served
//! from cache (`compile.shard.skipped.count` advances by the full shard
//! count, `compile.shard.recompiled.count` by none).

use sdx::bgp::msg::UpdateMessage;
use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::{canonicalize_report, Sharding, VnhAllocator};
use sdx::net::{Ipv4Addr, ParticipantId, Prefix};
use sdx::openflow::fabric::Fabric;
use sdx_oracle::synth::{probe_grid, Rng};
use sdx_oracle::Differential;

const PARTICIPANTS: u32 = 6;
const SHARDS: usize = 8;
const BURSTS: usize = 8;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

fn p8(octet: u8) -> Prefix {
    Prefix::new(Ipv4Addr::new(octet, 0, 0, 0), 8)
}

fn build(sharding: Sharding) -> (SdxController, Fabric, Vec<ParticipantConfig>) {
    let mut ctl = SdxController::new();
    ctl.set_sharding(sharding);
    let cfgs: Vec<ParticipantConfig> = (1..=PARTICIPANTS)
        .map(|i| ParticipantConfig::new(i, 65000 + i, 1))
        .collect();
    for cfg in &cfgs {
        ctl.add_participant(cfg.clone(), ExportPolicy::allow_all());
    }
    // Seed RIB: each participant announces two /8s, overlapping so best
    // routes are contested from the start.
    for (i, cfg) in cfgs.iter().enumerate() {
        let o = 10 + (i as u8 % 8) * 2;
        let msg = cfg.announce([p8(o), p8(o + 1)], &[65001 + i as u32, 900 + i as u32, 77]);
        ctl.rs.process_update(pid(i as u32 + 1), &msg);
    }
    let fabric = ctl.deploy().expect("deploy");
    (ctl, fabric, cfgs)
}

/// One churn event, applied identically to both controllers.
enum Ev {
    Announce(u32, u8, Vec<u32>),
    Withdraw(u32, u8),
    ExportFlip(u32, u32, u8),
}

fn counter(ctl: &SdxController, key: &str) -> u64 {
    ctl.telemetry
        .snapshot()
        .counters
        .get(key)
        .copied()
        .unwrap_or(0)
}

#[test]
fn sharded_delta_path_stays_equivalent_under_churn() {
    let (mut sharded, mut sharded_fab, cfgs) = build(Sharding::Shards(SHARDS));
    let (mut flat, mut flat_fab, _) = build(Sharding::Off);
    let mut rng = Rng::new(0xC4A8_0001);
    // Per-announcer export denials, so flips are reproducible toggles.
    let mut denials: std::collections::BTreeSet<(u32, u32, u8)> = Default::default();

    for burst in 0..BURSTS {
        let events: Vec<Ev> = (0..1 + rng.below(5))
            .map(|_| {
                let actor = 1 + rng.below(PARTICIPANTS as u64) as u32;
                let octet = 10 + rng.below(20) as u8;
                match rng.below(4) {
                    0 | 1 => {
                        let path: Vec<u32> = (0..1 + rng.below(3))
                            .map(|_| 100 + rng.below(900) as u32)
                            .collect();
                        Ev::Announce(actor, octet, path)
                    }
                    2 => Ev::Withdraw(actor, octet),
                    _ => {
                        let peer = 1 + rng.below(PARTICIPANTS as u64) as u32;
                        Ev::ExportFlip(actor, peer, octet)
                    }
                }
            })
            .collect();
        for ev in &events {
            match ev {
                Ev::Announce(actor, octet, path) => {
                    let mut full = vec![65000 + actor];
                    full.extend_from_slice(path);
                    let msg = cfgs[*actor as usize - 1].announce([p8(*octet)], &full);
                    sharded
                        .process_update(pid(*actor), &msg, &mut sharded_fab)
                        .expect("sharded fast path");
                    flat.process_update(pid(*actor), &msg, &mut flat_fab)
                        .expect("flat fast path");
                }
                Ev::Withdraw(actor, octet) => {
                    let msg = UpdateMessage::withdraw([p8(*octet)]);
                    sharded
                        .process_update(pid(*actor), &msg, &mut sharded_fab)
                        .expect("sharded fast path");
                    flat.process_update(pid(*actor), &msg, &mut flat_fab)
                        .expect("flat fast path");
                }
                Ev::ExportFlip(actor, peer, octet) => {
                    if actor == peer {
                        continue;
                    }
                    let key = (*actor, *peer, *octet);
                    if !denials.remove(&key) {
                        denials.insert(key);
                    }
                    let mut export = ExportPolicy::allow_all();
                    for &(a, peer, octet) in denials.iter().filter(|d| d.0 == *actor) {
                        let _ = a;
                        export.deny(pid(peer), p8(octet));
                    }
                    sharded.rs.set_export_policy(pid(*actor), export.clone());
                    flat.rs.set_export_policy(pid(*actor), export);
                }
            }
        }
        sharded
            .reoptimize(&mut sharded_fab)
            .expect("sharded reoptimize");
        flat.reoptimize(&mut flat_fab).expect("flat reoptimize");

        // (1) The sharded incremental compile equals the from-scratch
        // unsharded one, modulo VNH renumbering.
        let pool = VnhAllocator::default_pool();
        let a = canonicalize_report(sharded.report.as_ref().expect("report"), pool);
        let b = canonicalize_report(flat.report.as_ref().expect("report"), pool);
        assert_eq!(
            a.classifier, b.classifier,
            "burst {burst}: classifier diverged"
        );
        assert_eq!(a.groups, b.groups, "burst {burst}: groups diverged");
        assert_eq!(
            a.arp_bindings, b.arp_bindings,
            "burst {burst}: ARP diverged"
        );
        assert_eq!(a.vnh_of, b.vnh_of, "burst {burst}: VNH map diverged");

        // (2) The *deployed table* (every patch applied) matches the spec.
        let cr = sharded.report.as_ref().expect("report");
        let diff = Differential::over_table(
            &sharded.compiler,
            &sharded.rs,
            cr,
            sharded_fab.switch.table(),
        );
        let probes = probe_grid(&sharded.compiler, &sharded.rs);
        diff.check_all(&probes)
            .unwrap_or_else(|m| panic!("burst {burst}: patched table mismatch:\n{m}"));
    }

    // Idle reoptimize: nothing dirty, every shard served from cache.
    let skipped0 = counter(&sharded, "compile.shard.skipped.count");
    let recompiled0 = counter(&sharded, "compile.shard.recompiled.count");
    sharded
        .reoptimize(&mut sharded_fab)
        .expect("idle reoptimize");
    assert_eq!(
        counter(&sharded, "compile.shard.skipped.count") - skipped0,
        SHARDS as u64,
        "idle reoptimize must skip every shard"
    );
    assert_eq!(
        counter(&sharded, "compile.shard.recompiled.count") - recompiled0,
        0,
        "idle reoptimize must recompile nothing"
    );
}
