//! Cross-shard oracle differentials: the spec interpreter knows nothing
//! about shards, so any seam a sharded compile could introduce — a
//! prefix classified into the wrong slice, a wide-match policy clipped
//! at a range boundary, a merge that reorders rules across slices —
//! shows up as a per-probe verdict mismatch.
//!
//! Two layers:
//!
//! * a fuzz sweep ([`sdx_oracle::run_smoke_sharded`]) over randomly
//!   generated exchanges, with extra probes aimed at every shard
//!   boundary (first address above / last address below each cut);
//! * a hand-built exchange whose outbound policy's `NwDst` match
//!   *straddles* a shard boundary — the adversarial case for the merge,
//!   since one policy clause must compile identically in two shards.

use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::{Sharding, VnhAllocator};
use sdx::net::{ip, prefix, FieldMatch, Ipv4Addr, Packet, ParticipantId, PortId};
use sdx::policy::Policy as P;
use sdx_oracle::diff::{boundary_probes, run_smoke_sharded};
use sdx_oracle::Differential;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

#[test]
fn sharded_fuzz_sweep_agrees_with_spec_at_every_probe() {
    for shards in [2, 8] {
        let stats = run_smoke_sharded(0xD1FF, 12, 40, shards)
            .unwrap_or_else(|m| panic!("sharded ({shards}) differential mismatch:\n{m}"));
        assert!(
            stats.delivers > 0,
            "sharded ({shards}) sweep was vacuous: {stats}"
        );
        assert!(
            stats.packets > 12 * 40,
            "boundary probes missing from the sweep: {stats}"
        );
    }
}

/// Four participants, adjacent /8s, and a wide `/7` outbound match that
/// covers both — compiled with enough shards that the two /8s land in
/// different slices, so the wide clause must survive the cut.
fn straddling_exchange() -> SdxController {
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);
    for cfg in [&a, &b, &c, &d] {
        ctl.add_participant(cfg.clone(), ExportPolicy::allow_all());
    }
    // B and C both announce both halves of 10.0.0.0/7; C's paths win.
    ctl.rs.process_update(
        pid(2),
        &b.announce([prefix("10.0.0.0/8"), prefix("11.0.0.0/8")], &[65002, 7, 9]),
    );
    ctl.rs.process_update(
        pid(3),
        &c.announce([prefix("10.0.0.0/8"), prefix("11.0.0.0/8")], &[65003, 9]),
    );
    ctl.rs
        .process_update(pid(4), &d.announce([prefix("40.0.0.0/8")], &[65004, 4]));
    // A's policy: port-80 traffic for the whole /7 goes to B, overriding
    // the best route (C) on both sides of any shard cut through the /7.
    ctl.set_outbound(
        pid(1),
        Some(
            P::match_(FieldMatch::NwDst(prefix("10.0.0.0/7")))
                >> P::match_(FieldMatch::TpDst(80))
                >> P::fwd(PortId::Virt(pid(2))),
        ),
    );
    ctl
}

#[test]
fn wide_match_straddling_a_shard_boundary_keeps_spec_verdicts() {
    for sharding in [Sharding::Shards(4), Sharding::Shards(16)] {
        let mut ctl = straddling_exchange();
        ctl.set_sharding(sharding);
        let mut vnh = VnhAllocator::new(VnhAllocator::default_pool());
        let report = ctl
            .compiler
            .compile_all(&ctl.rs, &mut vnh)
            .expect("sharded compile");
        let plan = ctl
            .compiler
            .shard_plan()
            .expect("sharded compile leaves a plan")
            .clone();
        // The announced space genuinely splits: 10/8 and 11/8 must not
        // share a shard, or the straddle never happens.
        assert_ne!(
            plan.shard_of(prefix("10.0.0.0/8")),
            plan.shard_of(prefix("11.0.0.0/8")),
            "{sharding:?}: plan failed to cut the /7 — test vacuous"
        );
        let diff = Differential::new(&ctl.compiler, &ctl.rs, &report);
        // Probe the policy's match space densely around every boundary,
        // plus the far corners of both /8s, at the policy port and off it.
        let mut dsts: Vec<Ipv4Addr> = vec![
            ip("10.0.0.1"),
            ip("10.255.255.254"),
            ip("11.0.0.1"),
            ip("11.255.255.254"),
            ip("40.1.2.3"),
        ];
        for b in plan.boundaries() {
            dsts.push(b);
            dsts.push(Ipv4Addr(b.0.wrapping_sub(1)));
            dsts.push(Ipv4Addr(b.0.wrapping_add(1)));
        }
        let mut delivered = 0;
        for &dst in &dsts {
            for dport in [80u16, 443] {
                for from in 1..=4u32 {
                    let pkt = Packet::tcp(ip("9.0.0.9"), dst, 4096, dport);
                    let outcome = diff
                        .check(PortId::Phys(pid(from), 1), &pkt)
                        .unwrap_or_else(|m| panic!("{sharding:?}: cross-shard mismatch:\n{m}"));
                    if matches!(outcome, sdx_oracle::Outcome::Deliver { .. }) {
                        delivered += 1;
                    }
                }
            }
        }
        assert!(delivered > 0, "{sharding:?}: straddle probes all dropped");
        // And the generic boundary sweep agrees too.
        for (from, pkt) in boundary_probes(&ctl.compiler, &plan) {
            diff.check(from, &pkt)
                .unwrap_or_else(|m| panic!("{sharding:?}: boundary probe mismatch:\n{m}"));
        }
    }
}
