//! Failure injection across the stack: malformed wire input, session
//! resets mid-stream, ARP failures, VNH exhaustion, and conflicting
//! policies. A credible IXP controller must degrade loudly and locally,
//! never silently corrupt forwarding state.

use sdx::bgp::msg::{BgpMessage, NotificationCode, OpenMessage, UpdateMessage};
use sdx::bgp::route_server::ExportPolicy;
use sdx::bgp::session::{establish_pair, Session, SessionEvent, SessionState};
use sdx::bgp::wire;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::core::vnh::VnhAllocator;
use sdx::ixp::testkit;
use sdx::net::{ip, prefix, Asn, FieldMatch, Packet, ParticipantId, PortId, RouterId};
use sdx::openflow::fabric::Fabric;
use sdx::policy::Policy as P;
use sdx::{FaultPlan, InjectionPoint, SdxError};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// Two participants, B announcing 20/8, A steering web traffic through an
/// outbound policy (so fast-path updates exercise VNH allocation),
/// compiled and deployed.
fn two_party_deployment() -> (SdxController, Fabric) {
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
    );
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("20.0.0.0/8")], &[65002]));
    let fabric = ctl.deploy().expect("deploy");
    (ctl, fabric)
}

fn announce_30_8() -> UpdateMessage {
    ParticipantConfig::new(2, 65002, 1).announce([prefix("30.0.0.0/8")], &[65002, 5])
}

fn probe(fabric: &mut Fabric, dst: &str) -> Vec<sdx::openflow::fabric::Delivery> {
    fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip(dst), 40_000, 80),
    )
}

#[test]
fn corrupted_frames_never_parse_as_something_else() {
    // Flip every single byte of a valid UPDATE frame; the decoder must
    // either reject the frame or produce *a* message — never panic, and
    // never mistake an UPDATE body for a different message type.
    let cfg = ParticipantConfig::new(1, 65001, 1);
    let update = cfg.announce([prefix("10.0.0.0/8"), prefix("20.0.0.0/16")], &[65001, 7]);
    let frame = wire::encode(&BgpMessage::Update(update));
    for i in 0..frame.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut corrupted = frame.to_vec();
            corrupted[i] ^= flip;
            let mut buf = bytes::Bytes::from(corrupted);
            match wire::decode(&mut buf) {
                Ok(BgpMessage::Update(_)) | Err(_) => {}
                Ok(other) => {
                    // Only the type byte can legitimately change the
                    // message kind, and then the body must still parse.
                    assert_eq!(i, 18, "byte {i} turned an UPDATE into {other:?}");
                }
            }
        }
    }
}

#[test]
fn session_reset_mid_stream_discards_peer_state() {
    let mut rs = sdx::bgp::route_server::RouteServer::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    rs.add_peer(a.route_source(), ExportPolicy::allow_all());
    rs.add_peer(b.route_source(), ExportPolicy::allow_all());
    rs.process_update(pid(1), &a.announce([prefix("10.0.0.0/8")], &[65001]));

    // Drive a real FSM pair; kill it with a hold-timer expiry.
    let mut left = Session::new(OpenMessage {
        version: 4,
        asn: Asn(65001),
        hold_time: 90,
        router_id: RouterId(1),
    });
    let mut right = Session::new(OpenMessage {
        version: 4,
        asn: Asn(65099),
        hold_time: 90,
        router_id: RouterId(99),
    });
    establish_pair(&mut left, &mut right).expect("up");
    let out = left.handle(SessionEvent::HoldTimerExpired);
    assert!(out.reset);
    assert_eq!(left.state(), SessionState::Idle);
    // The route server reacts to the reset by flushing the peer.
    let events = rs.reset_session(pid(1));
    assert!(!events.is_empty());
    assert!(rs.best_for(pid(2), prefix("10.0.0.0/8")).is_none());
}

#[test]
fn update_after_notification_is_not_processed() {
    let mut s = Session::new(OpenMessage {
        version: 4,
        asn: Asn(65001),
        hold_time: 90,
        router_id: RouterId(1),
    });
    let mut peer = Session::new(OpenMessage {
        version: 4,
        asn: Asn(65002),
        hold_time: 90,
        router_id: RouterId(2),
    });
    establish_pair(&mut s, &mut peer).expect("up");
    s.handle(SessionEvent::Received(BgpMessage::Notification {
        code: NotificationCode::Cease,
        subcode: 0,
    }));
    // A straggler update after the reset must not be delivered.
    let out = s.handle(SessionEvent::Received(BgpMessage::Update(
        UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
    )));
    assert!(out.updates.is_empty());
}

#[test]
fn unresolvable_vnh_drops_locally_and_counts() {
    // A router whose FIB points at a VNH nobody answers for: traffic is
    // dropped at the first stage, counted, and nothing reaches the fabric.
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("20.0.0.0/8")], &[65002]));
    let mut fabric = ctl.deploy().expect("deploy");
    // Sabotage: unbind B's peering address from the ARP responder.
    fabric.arp.unbind(b.primary_port().addr);
    // Also flush A's ARP cache so the miss is observed.
    fabric
        .router_mut(PortId::Phys(pid(1), 1))
        .expect("router")
        .flush_arp();
    let out = fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 40_000, 80),
    );
    assert!(out.is_empty());
    assert_eq!(
        fabric
            .router(PortId::Phys(pid(1), 1))
            .expect("router")
            .no_arp_drops,
        1
    );
    assert_eq!(fabric.arp.unanswered, 1);
}

#[test]
fn conflicting_policies_resolve_by_isolation_not_interference() {
    // A and B both claim port-80 traffic toward the same prefix — A
    // outbound (its own traffic only) and B outbound (its own traffic
    // only). Conflicts cannot arise across participants by construction.
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b, ExportPolicy::allow_all());
    ctl.add_participant(c.clone(), ExportPolicy::allow_all());
    ctl.add_participant(d.clone(), ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(3), &c.announce([prefix("30.0.0.0/8")], &[65003, 9]));
    ctl.rs
        .process_update(pid(4), &d.announce([prefix("30.0.0.0/8")], &[65004, 9, 9]));
    // A sends web traffic for 30/8 via C; B sends it via D.
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(3)))),
    );
    ctl.set_outbound(
        pid(2),
        Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(4)))),
    );
    let mut fabric = ctl.deploy().expect("deploy");
    let from_a = fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip("30.0.0.1"), 40_000, 80),
    );
    assert_eq!(from_a[0].loc.participant(), pid(3));
    let from_b = fabric.send(
        PortId::Phys(pid(2), 1),
        Packet::tcp(ip("9.9.9.9"), ip("30.0.0.1"), 40_000, 80),
    );
    assert_eq!(from_b[0].loc.participant(), pid(4));
}

#[test]
fn injected_compile_fault_rolls_back_reoptimize() {
    let (mut ctl, mut fabric) = two_party_deployment();
    let snap = fabric.snapshot();
    ctl.faults = FaultPlan::seeded(7).fail_nth(InjectionPoint::Compile, 1);
    let err = ctl.reoptimize(&mut fabric).unwrap_err();
    assert_eq!(err, SdxError::Injected(InjectionPoint::Compile));
    assert_eq!(
        &fabric,
        snap.view(),
        "failed compile must not touch the fabric"
    );
    // The one-shot fault has fired; the very next reoptimize succeeds and
    // the fabric still forwards.
    ctl.reoptimize(&mut fabric).expect("recovers");
    assert_eq!(probe(&mut fabric, "20.0.0.1")[0].loc.participant(), pid(2));
}

#[test]
fn injected_vnh_fault_leaves_fast_path_atomic() {
    let (mut ctl, mut fabric) = two_party_deployment();
    let snap = fabric.snapshot();
    ctl.faults = FaultPlan::seeded(7).fail_nth(InjectionPoint::VnhAlloc, 1);
    let err = ctl
        .process_update(pid(2), &announce_30_8(), &mut fabric)
        .unwrap_err();
    assert_eq!(err, SdxError::Injected(InjectionPoint::VnhAlloc));
    // Flow tables, ARP responder, and every border-router FIB are exactly
    // the pre-failure image.
    assert_eq!(fabric.switch, snap.view().switch);
    assert_eq!(fabric.arp, snap.view().arp);
    assert_eq!(&fabric, snap.view());
    // The RIB kept the route (BGP state is not fabric state); a background
    // reoptimize reconverges the data plane.
    ctl.reoptimize(&mut fabric).expect("reconverge");
    assert_eq!(probe(&mut fabric, "30.0.0.1")[0].loc.participant(), pid(2));
}

#[test]
fn injected_vnh_fault_mid_compile_never_consumes_pool_ids() {
    // The full pipeline reserves its whole VNH batch up front and commits
    // only after every per-group fault check passes. An abort between
    // `reserve` and `commit` — here on the *second* group, so the first
    // reserved triple was already handed to a FEC group — must leave the
    // allocator byte-identical: no consumed ids, no leaked free-list
    // entries.
    let (mut compiler, rs) = testkit::figure1_compiler();
    let mut vnh = VnhAllocator::default();
    let before = vnh.remaining();
    let mut faults = FaultPlan::seeded(7).fail_nth(InjectionPoint::VnhAlloc, 2);
    let err = compiler
        .compile_all_with_faults(&rs, &mut vnh, &mut faults)
        .unwrap_err();
    assert_eq!(err, SdxError::Injected(InjectionPoint::VnhAlloc));
    assert_eq!(
        vnh.remaining(),
        before,
        "aborted compile must not consume VNH ids"
    );
    // The spent one-shot fault lets the retry through — and because the
    // abort consumed nothing, the retry allocates exactly what a clean
    // compile from a fresh allocator would.
    let report = compiler
        .compile_all_with_faults(&rs, &mut vnh, &mut faults)
        .expect("retry succeeds once the fault is spent");
    let (mut clean_compiler, clean_rs) = testkit::figure1_compiler();
    let clean = clean_compiler
        .compile_all(&clean_rs, &mut VnhAllocator::default())
        .expect("clean compile");
    assert_eq!(
        report.vnh_of, clean.vnh_of,
        "retry must reuse exactly the ids the abort returned"
    );
    assert_eq!(report.arp_bindings, clean.arp_bindings);
}

#[test]
fn injected_commit_fault_rolls_back_torn_fast_path() {
    let (mut ctl, mut fabric) = two_party_deployment();
    let snap = fabric.snapshot();
    // FabricCommit fires *mid-commit*: delta rules are already staged in
    // the flow table when the fault hits, so this exercises rollback of a
    // genuinely torn fabric.
    ctl.faults = FaultPlan::seeded(3).fail_nth(InjectionPoint::FabricCommit, 1);
    let err = ctl
        .process_update(pid(2), &announce_30_8(), &mut fabric)
        .unwrap_err();
    assert_eq!(err, SdxError::Injected(InjectionPoint::FabricCommit));
    assert_eq!(
        &fabric,
        snap.view(),
        "torn commit must be rolled back whole"
    );
    // Replay the already-ingested prefix through the fast path (the same
    // hook supervised session resets use) once the fault is spent.
    ctl.apply_changed_prefixes(&[prefix("30.0.0.0/8")], &mut fabric)
        .expect("replay");
    assert_eq!(probe(&mut fabric, "30.0.0.1")[0].loc.participant(), pid(2));
}

#[test]
fn injected_commit_fault_rolls_back_torn_reoptimize() {
    let (mut ctl, mut fabric) = two_party_deployment();
    ctl.process_update(pid(2), &announce_30_8(), &mut fabric)
        .expect("fast path");
    let snap = fabric.snapshot();
    // Mid-reoptimize the base table has already been swapped when the
    // fault fires (ARP/FIB sync still pending): the worst possible tear.
    ctl.faults = FaultPlan::seeded(3).fail_nth(InjectionPoint::FabricCommit, 1);
    let err = ctl.reoptimize(&mut fabric).unwrap_err();
    assert_eq!(err, SdxError::Injected(InjectionPoint::FabricCommit));
    assert_eq!(&fabric, snap.view(), "reoptimize tear must be invisible");
    ctl.reoptimize(&mut fabric).expect("recovers");
    assert_eq!(probe(&mut fabric, "20.0.0.1")[0].loc.participant(), pid(2));
    assert_eq!(probe(&mut fabric, "30.0.0.1")[0].loc.participant(), pid(2));
}

#[test]
fn vnh_exhaustion_is_typed_contained_and_recoverable() {
    // A deliberately tiny pool: /29 leaves 7 allocatable VNHs (offset 0 is
    // reserved). Announce/withdraw churn burns one delta VNH per
    // re-announce — retired ids are only recycled by reoptimize.
    let mut ctl = SdxController::new();
    ctl.vnh = VnhAllocator::new(prefix("172.16.128.0/29"));
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    // A's policy makes every announced prefix policy-affected, so each
    // fast-path re-announce burns a fresh delta VNH.
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
    );
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("20.0.0.0/8")], &[65002]));
    let mut fabric = ctl.deploy().expect("deploy");

    let mut exhausted = None;
    for _ in 0..20 {
        ctl.process_update(
            pid(2),
            &UpdateMessage::withdraw([prefix("30.0.0.0/8")]),
            &mut fabric,
        )
        .expect("withdraw never allocates");
        let snap = fabric.snapshot();
        match ctl.process_update(pid(2), &announce_30_8(), &mut fabric) {
            Ok(_) => {}
            Err(e) => {
                assert!(
                    matches!(e, SdxError::VnhExhausted { .. }),
                    "expected typed exhaustion, got {e}"
                );
                assert_eq!(
                    &fabric,
                    snap.view(),
                    "exhaustion must keep last-good fabric"
                );
                exhausted = Some(e);
                break;
            }
        }
    }
    assert!(
        exhausted.is_some(),
        "churn must eventually exhaust a /29 pool"
    );
    // 20/8 still forwards on the last-known-good tables.
    assert_eq!(probe(&mut fabric, "20.0.0.1")[0].loc.participant(), pid(2));

    // Reoptimize releases every retired delta id *before* compiling, so
    // the drained pool recovers...
    ctl.reoptimize(&mut fabric).expect("recycles delta ids");
    // ...and both routes forward again, with fresh fast-path allocations
    // working too.
    assert_eq!(probe(&mut fabric, "30.0.0.1")[0].loc.participant(), pid(2));
    ctl.process_update(
        pid(2),
        &ParticipantConfig::new(2, 65002, 1).announce([prefix("40.0.0.0/8")], &[65002]),
        &mut fabric,
    )
    .expect("post-recycle allocation");
    assert_eq!(probe(&mut fabric, "40.0.0.1")[0].loc.participant(), pid(2));
}

#[test]
fn vnh_pool_exhaustion_panics_loudly() {
    // Deliberately tiny pool: allocation must fail fast with a clear
    // message, not wrap around into colliding tags.
    let result = std::panic::catch_unwind(|| {
        let mut alloc = sdx::core::vnh::VnhAllocator::new(prefix("10.0.0.0/30")); // 4 addrs
        for _ in 0..10 {
            alloc.allocate();
        }
    });
    assert!(result.is_err());
}

#[test]
fn withdrawn_only_route_blackholes_cleanly() {
    // All routes for a prefix disappear while a policy still references
    // it: traffic is dropped at the sender's FIB (withdrawn), the fabric
    // sees nothing, and no rule forwards to the vanished participant.
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 1);
    ctl.add_participant(a, ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("20.0.0.0/8")], &[65002]));
    ctl.set_outbound(
        pid(1),
        Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2)))),
    );
    let mut fabric = ctl.deploy().expect("deploy");
    ctl.process_update(
        pid(2),
        &UpdateMessage::withdraw([prefix("20.0.0.0/8")]),
        &mut fabric,
    )
    .expect("fast path");
    let out = fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 40_000, 80),
    );
    assert!(
        out.is_empty(),
        "withdrawn destination must not be reachable"
    );
    assert_eq!(
        fabric
            .router(PortId::Phys(pid(1), 1))
            .expect("router")
            .no_route_drops,
        1,
        "dropped at the sender's own FIB"
    );
}
