//! Property-based testing of whole exchanges: random participant
//! populations, announcements, export policies, and participant policies
//! — and on every generated exchange, the SDX's core guarantees:
//!
//! 1. **BGP consistency** — a participant only ever receives traffic for
//!    prefixes it exported to the sender (§4.1 invariant 1);
//! 2. **unicast delivery** — outbound policies are unicast and the fabric
//!    never duplicates;
//! 3. **no hairpins, no virtual leaks** — deliveries land on physical
//!    ports of *other* participants;
//! 4. **policy-or-default** — traffic either matches the sender's policy
//!    toward an exporting target or follows the sender's best BGP route;
//! 5. **tags stay inside** — delivered frames never carry VMACs.

use proptest::prelude::*;
use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{FieldMatch, Ipv4Addr, Packet, ParticipantId, PortId, Prefix};
use sdx::policy::Policy as P;

#[derive(Clone, Debug)]
struct ExchangeSpec {
    /// Per participant: announced /8 octets (disjointness by first octet).
    announcements: Vec<Vec<u8>>,
    /// (announcer idx, denied-peer idx, octet) export denials.
    denials: Vec<(usize, usize, u8)>,
    /// (sender idx, dst-port classifier, target idx) outbound clauses.
    outbound: Vec<(usize, u16, usize)>,
}

fn arb_spec() -> impl Strategy<Value = ExchangeSpec> {
    let n = 4usize;
    (
        proptest::collection::vec(proptest::collection::vec(10u8..40, 1..4), n..=n),
        proptest::collection::vec((0usize..n, 0usize..n, 10u8..40), 0..4),
        proptest::collection::vec(
            (
                0usize..n,
                prop_oneof![Just(80u16), Just(443), Just(53)],
                0usize..n,
            ),
            0..5,
        ),
    )
        .prop_map(|(announcements, denials, outbound)| ExchangeSpec {
            announcements,
            denials,
            outbound,
        })
}

/// The clauses that actually get installed: the first clause per
/// `(sender, port)` pair wins (later duplicates are dropped to keep each
/// policy unicast). The oracle below uses the same view.
fn effective_clauses(spec: &ExchangeSpec) -> Vec<(usize, u16, usize)> {
    let mut seen: std::collections::BTreeSet<(usize, u16)> = Default::default();
    spec.outbound
        .iter()
        .copied()
        .filter(|&(sender, port, target)| sender != target && seen.insert((sender, port)))
        .collect()
}

fn build(spec: &ExchangeSpec) -> Option<(SdxController, sdx::openflow::fabric::Fabric)> {
    let n = spec.announcements.len();
    let mut ctl = SdxController::new();
    let cfgs: Vec<ParticipantConfig> = (1..=n as u32)
        .map(|i| ParticipantConfig::new(i, 65000 + i, 1))
        .collect();
    for (i, cfg) in cfgs.iter().enumerate() {
        let mut export = ExportPolicy::allow_all();
        for &(announcer, denied, octet) in &spec.denials {
            if announcer == i && denied != i {
                export.deny(
                    ParticipantId(denied as u32 + 1),
                    Prefix::new(Ipv4Addr::new(octet, 0, 0, 0), 8),
                );
            }
        }
        ctl.add_participant(cfg.clone(), export);
    }
    for (i, octets) in spec.announcements.iter().enumerate() {
        let prefixes: Vec<Prefix> = octets
            .iter()
            .map(|&o| Prefix::new(Ipv4Addr::new(o, 0, 0, 0), 8))
            .collect();
        let path: Vec<u32> = vec![65001 + i as u32, 900 + i as u32];
        ctl.rs.process_update(
            ParticipantId(i as u32 + 1),
            &cfgs[i].announce(prefixes, &path),
        );
    }
    // Distinct dst ports per sender keep each policy unicast.
    for (sender, port, target) in effective_clauses(spec) {
        let clause = P::match_(FieldMatch::TpDst(port))
            >> P::fwd(PortId::Virt(ParticipantId(target as u32 + 1)));
        let slot = &mut ctl
            .compiler
            .participants()
            .get(&ParticipantId(sender as u32 + 1))
            .cloned();
        let merged = match slot.as_ref().and_then(|c| c.outbound.clone()) {
            Some(p) => p + clause,
            None => clause,
        };
        ctl.set_outbound(ParticipantId(sender as u32 + 1), Some(merged));
    }
    let fabric = ctl.deploy().ok()?;
    Some((ctl, fabric))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exchange_invariants(spec in arb_spec(), probe_port in prop_oneof![Just(80u16), Just(443), Just(53), Just(22)]) {
        let Some((ctl, mut fabric)) = build(&spec) else {
            // Some random specs are rejected at install time (fine).
            return Ok(());
        };
        let n = spec.announcements.len();
        // Probe every sender × every announced /8.
        let mut dsts: Vec<u8> = spec.announcements.concat();
        dsts.sort();
        dsts.dedup();
        for sender in 1..=n as u32 {
            for &octet in &dsts {
                let dst = Ipv4Addr::new(octet, 1, 2, 3);
                let p = Prefix::new(Ipv4Addr::new(octet, 0, 0, 0), 8);
                let out = fabric.send(
                    PortId::Phys(ParticipantId(sender), 1),
                    Packet::tcp(Ipv4Addr::new(200, sender as u8, 0, 1), dst, 40000, probe_port),
                );
                // (2) unicast.
                prop_assert!(out.len() <= 1, "duplicate delivery: {out:?}");
                if let Some(d) = out.first() {
                    let receiver = d.loc.participant();
                    // (3) physical, non-hairpin.
                    prop_assert!(d.loc.is_physical());
                    prop_assert_ne!(receiver, ParticipantId(sender));
                    // (5) no VMAC leaks.
                    prop_assert!(!d.pkt.dl_dst.is_vmac());
                    // (1) BGP consistency: the receiver exported p to sender.
                    let reach = ctl.rs.reachable_via(ParticipantId(sender), p);
                    prop_assert!(
                        reach.contains(&receiver),
                        "{receiver} never exported {p} to P{sender}"
                    );
                    // (4) policy-or-default.
                    let best = ctl
                        .rs
                        .best_for(ParticipantId(sender), p)
                        .map(|r| r.source.participant);
                    let policy_target = effective_clauses(&spec).into_iter().find_map(|(s, port, t)| {
                        (s + 1 == sender as usize
                            && port == probe_port
                            && reach.contains(&ParticipantId(t as u32 + 1)))
                        .then_some(ParticipantId(t as u32 + 1))
                    });
                    match policy_target {
                        Some(t) => prop_assert_eq!(receiver, t, "policy must win"),
                        None => prop_assert_eq!(Some(receiver), best, "default must be best route"),
                    }
                }
                prop_assert_eq!(fabric.stuck_at_virtual, 0);
            }
        }
    }
}
