//! Integration test: the paper's Figure 1 scenario, driven through the
//! public API only (controller + DSL + fabric), cross-checking every claim
//! §3 and §4.1 make about it.

use sdx::core::controller::SdxController;
use sdx::ixp::testkit;
use sdx::net::{ip, prefix, Packet, ParticipantId, PortId};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// The Figure 1 exchange (A's policy, B's two ports + inbound TE + hidden
/// p4, the Figure 1b RIB), deployed. The exchange itself lives in
/// [`testkit::figure1_controller`], shared with the isolation, FIB, and
/// oracle suites.
fn figure1() -> (SdxController, sdx::openflow::fabric::Fabric) {
    let mut ctl = testkit::figure1_controller();
    let fabric = ctl.deploy().expect("deploy");
    (ctl, fabric)
}

fn send_from_a(
    fabric: &mut sdx::openflow::fabric::Fabric,
    src: &str,
    dst: &str,
    dport: u16,
) -> Vec<sdx::net::LocatedPacket> {
    fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip(src), ip(dst), 40_000, dport),
    )
}

#[test]
fn application_specific_peering_applies() {
    let (_ctl, mut fabric) = figure1();
    // Web traffic to p1 goes via B even though C is A's best BGP route.
    let out = send_from_a(&mut fabric, "9.0.0.1", "10.0.0.1", 80);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].loc.participant(), pid(2));
    // HTTPS to p1 goes via C.
    let out = send_from_a(&mut fabric, "9.0.0.1", "10.0.0.1", 443);
    assert_eq!(out[0].loc.participant(), pid(3));
}

#[test]
fn inbound_te_picks_the_port() {
    let (_ctl, mut fabric) = figure1();
    let low = send_from_a(&mut fabric, "9.0.0.1", "10.0.0.1", 80);
    assert_eq!(low[0].loc, PortId::Phys(pid(2), 1), "low-half source → B1");
    let high = send_from_a(&mut fabric, "200.0.0.1", "10.0.0.1", 80);
    assert_eq!(
        high[0].loc,
        PortId::Phys(pid(2), 2),
        "high-half source → B2"
    );
}

#[test]
fn default_traffic_follows_best_bgp_route() {
    let (ctl, mut fabric) = figure1();
    // A's best route for p1 is via C (shorter AS path).
    assert_eq!(
        ctl.rs
            .best_for(pid(1), prefix("10.0.0.0/8"))
            .expect("has route")
            .source
            .participant,
        pid(3)
    );
    let out = send_from_a(&mut fabric, "9.0.0.1", "10.0.0.1", 22);
    assert_eq!(out[0].loc.participant(), pid(3));
    // p3 is only reachable via B.
    let out = send_from_a(&mut fabric, "9.0.0.1", "30.0.0.1", 22);
    assert_eq!(out[0].loc.participant(), pid(2));
}

#[test]
fn bgp_consistency_blocks_unexported_prefixes() {
    let (_ctl, mut fabric) = figure1();
    // B does not export p4 to A: A's web policy must NOT send p4 via B;
    // the traffic follows the only exported route (via C).
    let out = send_from_a(&mut fabric, "9.0.0.1", "40.0.0.1", 80);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].loc.participant(), pid(3));
}

#[test]
fn untouched_prefixes_use_plain_route_server_path() {
    let (ctl, mut fabric) = figure1();
    // p5 has no VNH for any viewer: the SDX behaves as a plain route
    // server for it (§4.2's "we do not need to consider BGP prefixes that
    // retain their default behavior").
    let report = ctl.report.as_ref().expect("compiled");
    assert!(!report
        .vnh_of
        .keys()
        .any(|(_, p)| *p == prefix("50.0.0.0/8")));
    let out = send_from_a(&mut fabric, "9.0.0.1", "50.0.0.1", 80);
    assert_eq!(out[0].loc, PortId::Phys(pid(4), 1));
}

#[test]
fn paper_grouping_p1_p2_share_a_fec() {
    let (ctl, _fabric) = figure1();
    let report = ctl.report.as_ref().expect("compiled");
    let ga = &report.groups[&pid(1)];
    let group_of = |pfx: &str| {
        ga.iter()
            .position(|g| g.prefixes.contains(&prefix(pfx)))
            .unwrap_or_else(|| panic!("{pfx} has no group"))
    };
    // §4.2's worked example: C' = {{p1,p2},{p3},{p4}}.
    assert_eq!(group_of("10.0.0.0/8"), group_of("20.0.0.0/8"));
    assert_ne!(group_of("10.0.0.0/8"), group_of("30.0.0.0/8"));
    assert_ne!(group_of("10.0.0.0/8"), group_of("40.0.0.0/8"));
    assert_ne!(group_of("30.0.0.0/8"), group_of("40.0.0.0/8"));
}

#[test]
fn no_forwarding_loops_or_virtual_leaks() {
    let (_ctl, mut fabric) = figure1();
    // A battery of probes: every delivery is at a physical port, nothing
    // gets stuck mid-fabric, and nothing hairpins to the sender.
    for dst in ["10.0.0.1", "20.0.0.1", "30.0.0.1", "40.0.0.1", "50.0.0.1"] {
        for dport in [80u16, 443, 22] {
            for src in ["9.0.0.1", "200.0.0.1"] {
                let out = send_from_a(&mut fabric, src, dst, dport);
                for d in &out {
                    assert!(d.loc.is_physical());
                    assert_ne!(d.loc.participant(), pid(1), "hairpin to sender");
                }
            }
        }
    }
    assert_eq!(fabric.stuck_at_virtual, 0);
}

#[test]
fn vmac_tags_stay_inside_the_fabric() {
    let (_ctl, mut fabric) = figure1();
    // Delivered frames must carry the *receiver's physical MAC*, never a
    // VMAC — otherwise the receiving router would drop them (§4.1's
    // destination-MAC rewrite).
    for dst in ["10.0.0.1", "30.0.0.1", "40.0.0.1", "50.0.0.1"] {
        let out = send_from_a(&mut fabric, "9.0.0.1", dst, 80);
        for d in &out {
            assert!(!d.pkt.dl_dst.is_vmac(), "VMAC leaked to {}", d.loc);
        }
    }
}
