//! Integration test: the §4.1 topology abstraction — the controller's
//! compiled classifier distributed over multiple physical switches must
//! behave exactly like the single-big-switch it abstracts.

use sdx::bgp::route_server::ExportPolicy;
use sdx::core::controller::SdxController;
use sdx::core::participant::ParticipantConfig;
use sdx::net::{ip, prefix, FieldMatch, Packet, ParticipantId, PortId};
use sdx::openflow::border_router::BorderRouter;
use sdx::openflow::multiswitch::{MultiFabric, SwitchId};
use sdx::policy::Policy as P;

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// Builds the controller, deploys a single-switch fabric (the reference),
/// and mirrors the same compiled state onto a two-switch MultiFabric.
fn dual_deployment() -> (SdxController, sdx::openflow::fabric::Fabric, MultiFabric) {
    let mut ctl = SdxController::new();
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1)
        .with_outbound(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2))));
    let b_inbound = (P::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1")))
        >> P::fwd(PortId::Phys(pid(2), 1)))
        + (P::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1"))) >> P::fwd(PortId::Phys(pid(2), 2)));
    let b = b.with_inbound(b_inbound);
    ctl.add_participant(a.clone(), ExportPolicy::allow_all());
    ctl.add_participant(b.clone(), ExportPolicy::allow_all());
    ctl.add_participant(c, ExportPolicy::allow_all());
    ctl.rs
        .process_update(pid(1), &a.announce([prefix("54.0.0.0/8")], &[65001, 7]));
    ctl.rs
        .process_update(pid(2), &b.announce([prefix("54.0.0.0/8")], &[65002, 9, 7]));

    let single = ctl.deploy().expect("single-switch deploy");

    // Mirror onto two physical switches: C alone on switch 1, A and B on
    // switch 0 — so policy traffic crosses the trunk.
    let mut multi = MultiFabric::new();
    multi.add_switch(SwitchId(0));
    multi.add_switch(SwitchId(1));
    for (sw, port_owner) in [(0u32, 1u32), (0, 2), (1, 3)] {
        let cfg = ctl
            .compiler
            .participant(pid(port_owner))
            .expect("known")
            .clone();
        for p in &cfg.ports {
            let mut r = BorderRouter::new(PortId::Phys(cfg.id, p.index), p.mac);
            // Copy the reference router's FIB state by re-applying the
            // controller's advertisements (clone from the single fabric).
            if let Some(reference) = single.router(PortId::Phys(cfg.id, p.index)) {
                r = reference.clone();
            }
            multi.attach(SwitchId(sw), r);
        }
    }
    multi.arp = single.arp.clone();
    let report = ctl.report.as_ref().expect("compiled");
    multi.load_classifier(&report.classifier);
    (ctl, single, multi)
}

#[test]
fn multiswitch_agrees_with_single_switch() {
    let (_ctl, mut single, mut multi) = dual_deployment();
    for (sender, src, dport) in [
        (3u32, "9.0.0.1", 80u16), // policy: via B, inbound TE → B1
        (3, "200.0.0.1", 80),     // policy: via B, inbound TE → B2
        (3, "9.0.0.1", 443),      // default: best route via A
        (2, "9.0.0.1", 80),       // B's own traffic toward A's route
    ] {
        let pkt = Packet::tcp(ip(src), ip("54.1.2.3"), 40_000, dport);
        let from = PortId::Phys(pid(sender), 1);
        let s = single.send(from, pkt);
        let m = multi.send(from, pkt);
        assert_eq!(s, m, "sender {sender} src {src} dport {dport}");
    }
    assert_eq!(multi.stuck_at_virtual, 0);
}

#[test]
fn trunk_carries_only_cross_switch_traffic() {
    let (_ctl, _single, mut multi) = dual_deployment();
    // C (switch 1) → B (switch 0): one trunk frame.
    multi.send(
        PortId::Phys(pid(3), 1),
        Packet::tcp(ip("9.0.0.1"), ip("54.1.2.3"), 40_000, 80),
    );
    assert_eq!(multi.trunk_frames, 1);
    // B (switch 0) → A (switch 0): local, no trunk.
    multi.send(
        PortId::Phys(pid(2), 1),
        Packet::tcp(ip("9.0.0.1"), ip("54.1.2.3"), 40_000, 443),
    );
    assert_eq!(multi.trunk_frames, 1);
}

#[test]
fn rule_state_replicates_per_switch() {
    let (ctl, single, multi) = dual_deployment();
    let logical = ctl
        .report
        .as_ref()
        .expect("compiled")
        .classifier
        .rules()
        .len();
    assert_eq!(single.switch.table().len(), logical);
    assert_eq!(multi.total_rules(), 2 * logical);
}
