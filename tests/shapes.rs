//! Shape-regression tests: small-scale versions of the paper's evaluation
//! sweeps, with the *trends* asserted programmatically. If a code change
//! breaks linearity of Figure 7 or sub-linearity of Figure 6, these fail
//! long before anyone re-reads the experiment output.

use sdx::core::vnh::VnhAllocator;
use sdx::ixp::policy_workload::{assign_policies, PolicyWorkloadParams};
use sdx::ixp::topology::{build, TopologyParams};
use sdx::net::Prefix;

fn compile_at(participants: usize, policy_prefixes: usize) -> (usize, usize, f64) {
    let mut ixp = build(&TopologyParams {
        participants,
        prefixes: 6000,
        seed: 11,
        ..Default::default()
    });
    assign_policies(
        &mut ixp,
        &PolicyWorkloadParams {
            policy_prefixes,
            seed: 12,
            ..Default::default()
        },
    );
    let rs = ixp.route_server();
    let mut compiler = sdx::core::compiler::SdxCompiler::new();
    for p in &ixp.participants {
        compiler.upsert_participant(p.clone());
    }
    let mut vnh = VnhAllocator::default();
    let t = std::time::Instant::now();
    let report = compiler.compile_all(&rs, &mut vnh).expect("compiles");
    (
        report.stats.group_count,
        report.stats.forwarding_rules,
        t.elapsed().as_secs_f64(),
    )
}

#[test]
fn fig6_shape_groups_sublinear_in_prefixes() {
    // Figure 6's y-axis is the number of FEC groups the *compiler*
    // creates — next-hop partitions of the policy-affected prefixes —
    // not a raw minimum-disjoint-subsets decomposition of the full
    // announcement sets (that quantity tracks announcement diversity,
    // grows near-linearly by construction of the synthetic workload, and
    // is not what the paper plots; the differential oracle's Figure 6
    // re-derivation in EXPERIMENTS.md has the numbers). So: sweep the
    // policy-prefix count and read `stats.group_count` off the compile
    // report, exactly as the figure's pipeline does.
    let mut counts = Vec::new();
    for px in [800usize, 1600, 3200] {
        let (groups, _, _) = compile_at(60, px);
        counts.push((px, groups));
    }
    // Monotone non-decreasing…
    assert!(counts.windows(2).all(|w| w[0].1 <= w[1].1), "{counts:?}");
    // …and sub-linear: quadrupling the prefixes must not quadruple groups.
    let (x0, g0) = counts[0];
    let (x1, g1) = counts[2];
    let prefix_ratio = x1 as f64 / x0 as f64;
    let group_ratio = g1 as f64 / g0.max(1) as f64;
    assert!(
        group_ratio < prefix_ratio * 0.8,
        "groups grew {group_ratio:.2}x for {prefix_ratio:.2}x prefixes: {counts:?}"
    );
    // Groups ≪ policy prefixes at the top end.
    assert!(counts[2].1 * 2 < counts[2].0, "{counts:?}");
}

#[test]
fn fig7_shape_rules_linear_in_groups() {
    // Rules per group stays roughly constant across the sweep.
    let mut ratios = Vec::new();
    for px in [800usize, 1600, 3200] {
        let (groups, rules, _) = compile_at(60, px);
        assert!(groups > 0);
        ratios.push(rules as f64 / groups as f64);
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 2.0,
        "rules/group must stay near-constant (linear Fig 7): {ratios:?}"
    );
}

#[test]
fn fig7_shape_more_participants_more_rules() {
    let (_, rules_small, _) = compile_at(40, 1600);
    let (_, rules_large, _) = compile_at(80, 1600);
    assert!(
        rules_large > rules_small,
        "more participants must mean more rules ({rules_small} vs {rules_large})"
    );
}

#[test]
fn fig9_shape_delta_rules_linear_in_burst() {
    let mut ixp = build(&TopologyParams {
        participants: 60,
        prefixes: 6000,
        seed: 13,
        ..Default::default()
    });
    assign_policies(
        &mut ixp,
        &PolicyWorkloadParams {
            policy_prefixes: 3200,
            seed: 14,
            ..Default::default()
        },
    );
    let rs = ixp.route_server();
    let mut compiler = sdx::core::compiler::SdxCompiler::new();
    for p in &ixp.participants {
        compiler.upsert_participant(p.clone());
    }
    let mut vnh = VnhAllocator::default();
    let base = compiler.compile_all(&rs, &mut vnh).expect("compiles");
    let mut affected: Vec<Prefix> = base.vnh_of.keys().map(|(_, p)| *p).collect();
    affected.sort();
    affected.dedup();
    assert!(affected.len() >= 40);

    let small: Vec<Prefix> = affected.iter().copied().take(10).collect();
    let large: Vec<Prefix> = affected.iter().copied().take(40).collect();
    let d_small = compiler
        .fast_update_burst(&rs, &mut vnh, &small)
        .expect("delta")
        .additional_rules();
    let d_large = compiler
        .fast_update_burst(&rs, &mut vnh, &large)
        .expect("delta")
        .additional_rules();
    let ratio = d_large as f64 / d_small.max(1) as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x burst should cost ≈4x rules, got {ratio:.1}x ({d_small} → {d_large})"
    );
}

#[test]
fn fig10_shape_fast_path_stays_sub_second() {
    let mut ixp = build(&TopologyParams {
        participants: 60,
        prefixes: 6000,
        seed: 15,
        ..Default::default()
    });
    assign_policies(
        &mut ixp,
        &PolicyWorkloadParams {
            policy_prefixes: 3200,
            seed: 16,
            ..Default::default()
        },
    );
    let rs = ixp.route_server();
    let mut compiler = sdx::core::compiler::SdxCompiler::new();
    for p in &ixp.participants {
        compiler.upsert_participant(p.clone());
    }
    let mut vnh = VnhAllocator::default();
    let base = compiler.compile_all(&rs, &mut vnh).expect("compiles");
    let affected: Vec<Prefix> = base.vnh_of.keys().map(|(_, p)| *p).take(16).collect();
    for p in affected {
        let d = compiler.fast_update(&rs, &mut vnh, p).expect("delta");
        assert!(
            d.elapsed < std::time::Duration::from_secs(1),
            "fast path took {:?} for {p}",
            d.elapsed
        );
    }
}
