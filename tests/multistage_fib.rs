//! Integration test: the multi-stage FIB of §4.2 / Figure 2.
//!
//! Stage 1 (prefix → tag) lives in the participant's own border router,
//! realized purely through standard BGP mechanics: the route server
//! re-advertises routes with a virtual next hop, the router ARPs for it,
//! and the SDX ARP responder answers with the VMAC. Stage 2 (tag →
//! action) is the fabric flow table. These tests pin the division of
//! labour and the table-size claims.

use sdx::core::controller::SdxController;
use sdx::ixp::testkit;
use sdx::net::{ip, Packet, ParticipantId, PortId};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// A viewer with a port-80 policy toward B; B and C announce 64 prefixes
/// each with identical behaviour (see [`testkit::multistage_exchange`]).
fn setup() -> (
    SdxController,
    sdx::openflow::fabric::Fabric,
    Vec<sdx::net::Prefix>,
) {
    let (mut ctl, prefixes) = testkit::multistage_exchange();
    let fabric = ctl.deploy().expect("deploy");
    (ctl, fabric, prefixes)
}

#[test]
fn stage1_lives_in_the_border_router() {
    let (ctl, fabric, prefixes) = setup();
    let router = fabric.router(PortId::Phys(pid(1), 1)).expect("A's router");
    // The router holds one FIB entry per prefix — state it needs anyway —
    // and every entry points at a VNH in the controller's pool.
    assert_eq!(router.fib_len(), prefixes.len());
    for p in &prefixes {
        let (_, entry) = router.route_for(p.addr()).expect("route");
        assert!(
            ctl.vnh.contains(entry.next_hop),
            "{p} must resolve through a virtual next hop"
        );
    }
}

#[test]
fn equivalence_classes_compress_the_switch_table() {
    let (ctl, fabric, prefixes) = setup();
    // All 64 prefixes share one forwarding behaviour → one FEC for A.
    let report = ctl.report.as_ref().expect("compiled");
    assert_eq!(report.groups[&pid(1)].len(), 1);
    // The switch table is far smaller than the prefix count (the whole
    // point of Figure 2's split): a handful of VMAC + MAC + policy rules.
    let table = fabric.switch.table();
    assert!(
        table.len() < prefixes.len() / 2,
        "{} rules for {} prefixes",
        table.len(),
        prefixes.len()
    );
}

#[test]
fn tag_is_applied_by_bgp_plus_arp_only() {
    let (_ctl, mut fabric, _) = setup();
    // Forward a packet: the router's output already carries the FEC tag in
    // dl_dst, before the switch ever sees it.
    let mut router = fabric
        .router(PortId::Phys(pid(1), 1))
        .expect("router")
        .clone();
    let tagged = router
        .forward(
            Packet::tcp(ip("9.9.9.9"), ip("10.3.0.1"), 40_000, 80),
            &mut fabric.arp,
        )
        .expect("has route + ARP");
    assert!(
        tagged.pkt.dl_dst.is_vmac(),
        "stage-1 output carries the tag"
    );
}

#[test]
fn per_viewer_tags_imply_the_sender() {
    let (ctl, _fabric, prefixes) = setup();
    let report = ctl.report.as_ref().expect("compiled");
    // Every VMAC rule in the final classifier omits the in-port match —
    // §4.2's offloading means the tag itself implies the sender.
    let mut vmac_rules = 0;
    for r in report.classifier.rules() {
        if r.matches.dl_dst.is_some_and(|m| m.is_vmac()) {
            assert_eq!(r.matches.in_port, None, "VMAC rule must not re-isolate");
            vmac_rules += 1;
        }
    }
    assert!(vmac_rules >= 2, "policy + default rules for the FEC");
    let _ = prefixes;
}

#[test]
fn withdrawing_one_prefix_splits_the_group() {
    let (mut ctl, mut fabric, prefixes) = setup();
    // C withdraws one member prefix: its best route flips to B, so it can
    // no longer share a group with the rest. The fast path gives it a
    // fresh tag without touching the other 63 prefixes' FIB entries.
    let victim = prefixes[5];
    let before: Vec<_> = prefixes
        .iter()
        .filter(|p| **p != victim)
        .map(|p| {
            fabric
                .router(PortId::Phys(pid(1), 1))
                .expect("router")
                .route_for(p.addr())
                .expect("route")
                .1
                .next_hop
        })
        .collect();
    ctl.process_update(
        pid(3),
        &sdx::bgp::msg::UpdateMessage::withdraw([victim]),
        &mut fabric,
    )
    .expect("fast path");
    let router = fabric.router(PortId::Phys(pid(1), 1)).expect("router");
    let after: Vec<_> = prefixes
        .iter()
        .filter(|p| **p != victim)
        .map(|p| router.route_for(p.addr()).expect("route").1.next_hop)
        .collect();
    assert_eq!(before, after, "unaffected prefixes keep their VNH");
    // And traffic to the victim still flows (now via B).
    let out = fabric.send(
        PortId::Phys(pid(1), 1),
        Packet::tcp(ip("9.9.9.9"), victim.addr().saturating_add(1), 40_000, 80),
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].loc.participant(), pid(2));
}
