//! Offline typecheck stub for the `bytes` crate (subset used by sdx-bgp).

use std::ops::{Deref, RangeBounds};

#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.as_slice()[start..end].to_vec(),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.pos += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: v.to_vec(),
            pos: 0,
        }
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl core::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_slice(&mut self, s: &[u8]);

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}
