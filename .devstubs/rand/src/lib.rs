//! Offline typecheck stub for the `rand` crate (subset used by sdx-ixp).

fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait SampleUniform: Copy {
    fn sample_in(lo: Self, hi_exclusive: Self, r: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, r: u64) -> Self {
                let span = (hi as i128 - lo as i128).max(1) as u128;
                (lo as i128 + (r as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait RangeLike<T> {
    fn bounds(self) -> (T, T, bool);
}

impl<T: Copy> RangeLike<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Copy> RangeLike<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

pub trait Sampleable {
    fn from_u64(r: u64) -> Self;
}

impl Sampleable for f64 {
    fn from_u64(r: u64) -> Self {
        (r >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sampleable for u64 {
    fn from_u64(r: u64) -> Self {
        r
    }
}

impl Sampleable for u32 {
    fn from_u64(r: u64) -> Self {
        r as u32
    }
}

pub trait Rng {
    fn next(&mut self) -> u64;

    fn gen<T: Sampleable>(&mut self) -> T {
        T::from_u64(self.next())
    }

    fn gen_range<T: SampleUniform, R: RangeLike<T>>(&mut self, range: R) -> T {
        let (lo, hi, inclusive) = range.bounds();
        let _ = inclusive;
        T::sample_in(lo, hi, self.next())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

pub mod rngs {
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed | 1,
            }
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed | 1,
            }
        }
    }

    impl super::Rng for StdRng {
        fn next(&mut self) -> u64 {
            super::next_u64(&mut self.state)
        }
    }

    impl super::Rng for SmallRng {
        fn next(&mut self) -> u64 {
            super::next_u64(&mut self.state)
        }
    }
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next() as usize % self.len())
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.next() as usize % (i + 1));
            }
        }
    }
}

pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng { state: 0x9e3779b9 }
}
