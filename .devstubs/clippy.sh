#!/bin/sh
# Offline typecheck harness (verification scaffolding only — never commit .devstubs/).
# Usage: sh .devstubs/check.sh [extra cargo-check args...]
exec cargo clippy --offline \
  --config 'patch.crates-io.bytes.path=".devstubs/bytes"' \
  --config 'patch.crates-io.rand.path=".devstubs/rand"' \
  --config 'patch.crates-io.proptest.path=".devstubs/proptest"' \
  --config 'patch.crates-io.criterion.path=".devstubs/criterion"' \
  --config 'patch.crates-io.parking_lot.path=".devstubs/parking_lot"' \
  --config 'patch.crates-io.crossbeam.path=".devstubs/crossbeam"' \
  --config 'patch.crates-io.serde.path=".devstubs/serde"' \
  --config 'patch.crates-io.serde_json.path=".devstubs/serde_json"' \
  "$@"
