//! Offline typecheck stub.
