//! Offline typecheck stub for `serde_json` (subset used by sdx-bench lib).

use std::collections::BTreeMap;
use std::fmt;

pub type Map<K = String, V = Value> = BTreeMap<K, V>;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[macro_export]
macro_rules! json {
    ($($tt:tt)*) => {
        $crate::Value::Null
    };
}
