//! # sdx — a Software Defined Internet Exchange, in Rust
//!
//! A from-scratch reproduction of *SDX: A Software Defined Internet
//! Exchange* (Gupta et al., SIGCOMM 2014): an SDN controller for an
//! Internet exchange point that gives every participant AS the illusion of
//! its own virtual switch, lets it write Pyretic-style policies over
//! multiple header fields, keeps the data plane consistent with BGP, and
//! scales through forwarding-equivalence-class (VNH/VMAC) compression and
//! incremental compilation.
//!
//! This crate is the façade: it re-exports the workspace's subsystems and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use sdx::core::controller::SdxController;
//! use sdx::core::participant::ParticipantConfig;
//! use sdx::bgp::route_server::ExportPolicy;
//! use sdx::net::{ip, prefix, FieldMatch, Packet, ParticipantId, PortId};
//! use sdx::policy::Policy;
//!
//! // Three participants; A and B announce the same prefix.
//! let mut ctl = SdxController::new();
//! let a = ParticipantConfig::new(1, 65001, 1);
//! let b = ParticipantConfig::new(2, 65002, 1);
//! let c = ParticipantConfig::new(3, 65003, 1).with_outbound(
//!     // Application-specific peering: web traffic via B.
//!     Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(PortId::Virt(ParticipantId(2))),
//! );
//! ctl.add_participant(a.clone(), ExportPolicy::allow_all());
//! ctl.add_participant(b.clone(), ExportPolicy::allow_all());
//! ctl.add_participant(c, ExportPolicy::allow_all());
//! ctl.rs.process_update(ParticipantId(1), &a.announce([prefix("54.0.0.0/8")], &[65001, 7]));
//! ctl.rs.process_update(ParticipantId(2), &b.announce([prefix("54.0.0.0/8")], &[65002, 9, 7]));
//!
//! // Compile + deploy, then send a packet through the data plane.
//! let mut fabric = ctl.deploy().expect("deploy");
//! let out = fabric.send(
//!     PortId::Phys(ParticipantId(3), 1),
//!     Packet::tcp(ip("99.0.0.1"), ip("54.1.2.3"), 5000, 80),
//! );
//! assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 1)); // via B
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Foundational network types: addresses, prefixes, tries, packets,
/// header-space matches.
pub use sdx_net as net;

/// The BGP substrate: messages, wire codec, RIBs, decision process, route
/// server, AS-path regular expressions, session FSM.
pub use sdx_bgp as bgp;

/// The Pyretic-equivalent policy language: predicates, policies,
/// evaluation semantics, classifier compiler, text DSL.
pub use sdx_policy as policy;

/// The SDN data plane: flow tables, switch pipeline, ARP responder,
/// border-router model, IXP fabric.
pub use sdx_openflow as openflow;

/// The SDX controller: virtual switches, FEC/VNH computation, the policy
/// transformation pipeline, incremental compilation.
pub use sdx_core as core;

/// IXP emulation: Table-1-calibrated datasets, §6.1 policy workloads,
/// bursty BGP update traces, deployment traffic simulation.
pub use sdx_ixp as ixp;

/// Telemetry: metrics registry, stage timers, structured event journal,
/// JSON snapshots.
pub use sdx_telemetry as telemetry;

pub use sdx_bgp::supervisor::{Supervisor, SupervisorConfig, SupervisorOutput};
pub use sdx_core::error::SdxError;
pub use sdx_core::faults::{FaultPlan, InjectionPoint};
pub use sdx_core::txn::{DeltaTxn, FabricTxn};
pub use sdx_telemetry::{Event, MetricsSnapshot, Registry, SharedRegistry};
